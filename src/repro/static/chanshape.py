"""Channel-shape and misuse-of-primitive checks.

The paper's core finding is that message passing causes as many
blocking bugs as shared memory (Section 5, Table 5): sends with no
reachable receiver, receives with no reachable sender, close/send
races, the Figure 1 unbuffered-send-abandoned leak, and misuse of the
primitives that travel with channels — WaitGroup deltas, Cond signals,
context cancel handles, pipes and timers.  Each rule here is a query
over the :class:`~repro.static.ir.ProgramModel` counting *potential*
partner operations (paths that may execute count; unbounded loops count
as infinity).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .ir import MANY, AbstractObj, Op, Path, ProgramModel, ThreadModel
from .model import StaticFinding

_CHECKER = "chanshape"

_RECV_KINDS = ("recv", "recv_ok", "range", "try_recv")
_SEND_KINDS = ("send", "try_send")

INF = float("inf")


def _finding(rule: str, message: str, obj: Optional[AbstractObj],
             line: int, function: str = "") -> StaticFinding:
    return StaticFinding(checker=_CHECKER, rule=rule, message=message,
                         obj=obj.name if obj is not None else "",
                         function=function, line=line)


def check(model: ProgramModel) -> List[StaticFinding]:
    findings: List[StaticFinding] = []
    findings += _nil_chan_ops(model)
    findings += _chan_partner_rules(model)
    findings += _close_rules(model)
    findings += _select_rules(model)
    findings += _wg_rules(model)
    findings += _cond_rules(model)
    findings += _ctx_rules(model)
    findings += _pipe_rules(model)
    findings += _timer_rules(model)
    return findings


# -- helpers -----------------------------------------------------------

def _plain_chans(model: ProgramModel) -> List[AbstractObj]:
    return [c for c in model.objects_of_kind("chan")
            if not (c.nil or c.is_timer or c.is_ticker or c.is_done)]


def _owner(model: ProgramModel, op_needle: Op) -> Optional[ThreadModel]:
    for t, _pi, _oi, op in model.all_ops():
        if op is op_needle:
            return t
    return None


def _ancestors(model: ProgramModel, t: ThreadModel) -> List[str]:
    chain = []
    cur = t
    while cur is not None and cur.parent_key is not None:
        chain.append(cur.parent_key)
        cur = model.thread(cur.parent_key)
    return chain


def _done_chan_live(model: ProgramModel, chan: AbstractObj) -> bool:
    """Can this ctx.done() channel ever fire?"""
    for ctx in model.objects_of_kind("ctx"):
        if ctx.attrs.get("done") is chan:
            cancel = ctx.attrs.get("cancel")
            if isinstance(cancel, AbstractObj):
                return cancel.cancel_called or cancel.auto_cancel
            return False  # background context: done never closes
    return True  # unknown provenance: assume live


# -- nil channels ------------------------------------------------------

def _nil_chan_ops(model: ProgramModel) -> List[StaticFinding]:
    out = []
    for chan in model.objects_of_kind("chan"):
        if not chan.nil:
            continue
        for t, _pi, _oi, op in model.ops_on(
                chan, "send", "recv", "recv_ok", "range"):
            out.append(_finding(
                "nil-chan-op",
                f"blocking {op.kind} on nil channel {chan.name} "
                "blocks forever",
                chan, op.line, t.name))
    return out


# -- partner-count rules -----------------------------------------------

def _chan_partner_rules(model: ProgramModel) -> List[StaticFinding]:
    out: List[StaticFinding] = []
    for chan in _plain_chans(model):
        out += _recv_rules(model, chan)
        out += _send_rules(model, chan)
        out += _count_rules(model, chan)
    return out


def _recv_rules(model: ProgramModel, chan: AbstractObj
                ) -> List[StaticFinding]:
    out = []
    flagged_no_sender = False
    for t, pi, oi, op in model.ops_on(chan, "recv", "recv_ok", "range"):
        if not op.blocking:
            continue
        senders = model.potential_count(
            chan, ("send", "try_send", "close"), exclude=t)
        # a buffered channel the same goroutine fed earlier still feeds
        # this recv
        prior_self = 0
        path = t.paths[pi]
        if (chan.capacity or 0) > 0:
            prior_self = sum(1 for p in path.ops[:oi]
                             if p.obj is chan and p.kind in _SEND_KINDS)
        if senders + prior_self == 0 and not flagged_no_sender:
            flagged_no_sender = True
            what = "range over" if op.kind == "range" else op.kind
            out.append(_finding(
                "recv-no-sender",
                f"blocking {what} {chan.name} but no other goroutine "
                "can ever send or close it",
                chan, op.line, t.name))
        if op.kind == "range" and senders > 0:
            closes = model.potential_count(chan, ("close",))
            sends = model.potential_count(chan, _SEND_KINDS)
            if closes == 0 and sends != INF:
                out.append(_finding(
                    "range-no-close",
                    f"range over {chan.name} but the channel is never "
                    "closed: the loop blocks after the last send",
                    chan, op.line, t.name))
        if op.kind == "recv" and op.mult == MANY:
            closes_elsewhere = model.potential_count(
                chan, ("close",), exclude=t)
            if closes_elsewhere > 0:
                out.append(_finding(
                    "recv-ignores-close",
                    f"looping plain recv on {chan.name} which another "
                    "goroutine closes: zero values after close are "
                    "indistinguishable from real messages (use "
                    "recv_ok or range)",
                    chan, op.line, t.name))
    return out


def _send_rules(model: ProgramModel, chan: AbstractObj
                ) -> List[StaticFinding]:
    out = []
    cap = chan.capacity or 0
    sends_total = model.potential_count(chan, _SEND_KINDS)
    done_no_recv = False
    done_abandoned = False
    for t, _pi, _oi, op in model.ops_on(chan, "send"):
        if not op.blocking:
            continue
        if sends_total <= cap:
            continue  # buffer absorbs every send: never blocks
        recvs = model.potential_count(chan, _RECV_KINDS, exclude=t)
        if recvs == 0:
            if not done_no_recv:
                done_no_recv = True
                out.append(_finding(
                    "send-no-recv",
                    f"blocking send on {chan.name} but no other "
                    "goroutine can ever receive from it",
                    chan, op.line, t.name))
            continue
        # Figure 1: every potential receiver sits in a select with a
        # live alternative, so the sender can be abandoned forever
        partners = _recv_positions(model, chan, exclude=t)
        if partners and all(
                _is_escapable_select(model, p_op, chan)
                for (_t2, _path, _i, p_op) in partners):
            if not done_abandoned:
                done_abandoned = True
                out.append(_finding(
                    "unbuffered-send-abandoned",
                    f"send on {chan.name} (capacity {cap}) can be "
                    "abandoned: every receiver is a select with a "
                    "live alternative arm",
                    chan, op.line, t.name))
    return out


def _recv_positions(model: ProgramModel, chan: AbstractObj,
                    exclude: ThreadModel
                    ) -> List[Tuple[ThreadModel, Path, int, Op]]:
    positions = []
    for t in model.threads:
        if t is exclude:
            continue
        for path in t.paths:
            for i, op in enumerate(path.ops):
                if op.obj is chan and op.kind in _RECV_KINDS:
                    positions.append((t, path, i, op))
                elif op.kind == "select" and any(
                        ak == "recv" and ac is chan for ak, ac in op.arms):
                    positions.append((t, path, i, op))
    return positions


def _is_escapable_select(model: ProgramModel, op: Op,
                         chan: AbstractObj) -> bool:
    """Can this receiver take a different arm and abandon the sender?"""
    if op.kind != "select":
        return False
    if op.has_default:
        return True
    for ak, ac in op.arms:
        if ac is chan:
            continue
        if _arm_live(model, ak, ac):
            return True
    return False


def _arm_live(model: ProgramModel, arm_kind: str,
              chan: AbstractObj) -> bool:
    if chan.nil:
        return False
    if chan.is_timer or chan.is_ticker:
        return True
    if chan.is_done:
        return _done_chan_live(model, chan)
    if arm_kind == "recv":
        return model.potential_count(chan, ("send", "try_send",
                                            "close")) > 0
    sends = model.potential_count(chan, _SEND_KINDS)
    if (chan.capacity or 0) >= sends and sends != INF:
        return True
    return model.potential_count(chan, _RECV_KINDS) > 0


def _count_rules(model: ProgramModel, chan: AbstractObj
                 ) -> List[StaticFinding]:
    """More blocking receives than messages that can ever arrive."""
    closes = model.potential_count(chan, ("close",))
    if closes > 0:
        return []
    sends = model.potential_count(chan, _SEND_KINDS)
    if sends == 0 or sends == INF:
        return []
    recvs = 0.0
    where: Optional[Tuple[str, int]] = None
    for t in model.threads:
        best = 0.0
        for path in t.paths:
            here = 0.0
            for op in path.ops:
                if op.obj is chan and op.kind in ("recv", "recv_ok") \
                        and op.blocking:
                    here = INF if (op.mult == MANY or t.mult == MANY) \
                        else here + 1
                    if where is None:
                        where = (t.name, op.line)
        # max over paths: a path that may execute sets the demand
            best = max(best, here)
        recvs += best
    if recvs != INF and recvs > sends and where is not None:
        return [_finding(
            "insufficient-senders",
            f"{int(recvs)} blocking receives on {chan.name} but at most "
            f"{int(sends)} sends and no close: the surplus recv blocks "
            "forever",
            chan, where[1], where[0])]
    return []


# -- close discipline --------------------------------------------------

def _close_rules(model: ProgramModel) -> List[StaticFinding]:
    out: List[StaticFinding] = []
    for chan in _plain_chans(model):
        closes = model.ops_on(chan, "close")
        if not closes:
            continue
        # double / racy close: more than one close can actually execute
        effective = 0.0
        for t, _pi, _oi, op in closes:
            if op.in_once:
                continue
            effective = INF if (op.mult == MANY or t.mult == MANY) \
                else effective + 1
        close_threads = {t.key for t, _pi, _oi, op in closes
                         if not op.in_once}
        if effective > 1 and len(close_threads) > 1:
            t0, _pi, _oi, op0 = closes[0]
            out.append(_finding(
                "racy-close",
                f"{chan.name} can be closed by more than one goroutine "
                "(close of a closed channel panics)",
                chan, op0.line, t0.name))
        elif effective > 1:
            # all in one thread: double close on one path?
            for t in model.threads:
                for path in t.paths:
                    n = sum(1 for op in path.ops
                            if op.obj is chan and op.kind == "close"
                            and not op.in_once)
                    if n > 1:
                        out.append(_finding(
                            "double-close",
                            f"{chan.name} closed twice on one path",
                            chan, path.ops[-1].line, t.name))
                        break
                else:
                    continue
                break
        out += _send_after_close(model, chan, closes)
    return out


def _send_after_close(model: ProgramModel, chan: AbstractObj,
                      closes) -> List[StaticFinding]:
    out = []
    for t, _pi, _oi, sop in model.ops_on(chan, "send", "try_send"):
        for t2, pi2, oi2, cop in closes:
            if t2 is t:
                # sequential: only a definite bug if close precedes send
                path = t.paths[pi2]
                try:
                    if path.ops.index(cop) < path.ops.index(sop):
                        out.append(_finding(
                            "send-after-close",
                            f"send on {chan.name} after closing it on "
                            "the same path",
                            chan, sop.line, t.name))
                        return out
                except ValueError:
                    pass
                continue
            if _hb_ordered(model, t, sop, t2, cop):
                continue
            common = {mu.oid for mu, _m in sop.lockset} & \
                     {mu.oid for mu, _m in cop.lockset}
            if common:
                continue
            out.append(_finding(
                "close-then-send",
                f"send on {chan.name} races with close in another "
                "goroutine: send on a closed channel panics",
                chan, sop.line, t.name))
            return out
    return out


def _hb_ordered(model: ProgramModel, t_send: ThreadModel, sop: Op,
                t_close: ThreadModel, cop: Op) -> bool:
    """Is every send forced to happen before the close?

    Two cheap orderings: the closer waits on a WaitGroup that the
    sender's goroutine signals *after* its sends, or the closer is the
    sender's spawner and closes only after a wg-wait / after recv'ing
    everything.  We approximate with the wg edge only — it is the
    pattern the corpus's fixed variants use.
    """
    for path in t_send.paths:
        try:
            si = path.ops.index(sop)
        except ValueError:
            continue
        done_after = [i for i, op in enumerate(path.ops)
                      if op.kind == "wg_done" and i >= si]
        if not done_after:
            return False
        wgs = {path.ops[i].obj.oid for i in done_after}
        for path2 in t_close.paths:
            try:
                ci = path2.ops.index(cop)
            except ValueError:
                continue
            waited = any(op.kind == "wg_wait" and op.obj.oid in wgs
                         for op in path2.ops[:ci])
            if not waited:
                return False
    return True


# -- select shapes -----------------------------------------------------

def _select_rules(model: ProgramModel) -> List[StaticFinding]:
    out: List[StaticFinding] = []
    for t, pi, oi, op in model.all_ops():
        if op.kind != "select" or not op.arms:
            continue
        if op.has_default:
            out += _default_only_consumer(model, t, op)
            continue
        if all(not _arm_live(model, ak, ac) for ak, ac in op.arms):
            names = ", ".join(ac.name for _ak, ac in op.arms)
            out.append(_finding(
                "select-no-live-case",
                f"select with no default and no live arm ({names}): "
                "blocks forever",
                None, op.line, t.name))
            continue
        out += _tick_vs_stop(model, t, t.paths[pi], oi, op)
    return out


def _default_only_consumer(model: ProgramModel, t: ThreadModel,
                           op: Op) -> List[StaticFinding]:
    """A polling select is the *only* consumer of a fed channel.

    The paper's poll-vs-wait misuse: a default branch where blocking
    was intended.  When no blocking receive of the channel exists
    anywhere, the poller can decide the channel is idle and give up
    before the producer ever runs.  A non-blocking *precheck* (the
    Figure 11 fix) is fine: the same channel is also consumed by a
    blocking select or recv elsewhere.
    """
    out = []
    for ak, chan in op.arms:
        if ak != "recv" or chan.nil or chan.is_timer or chan.is_ticker \
                or chan.is_done:
            continue
        # real data must arrive: a close-only feeder is a completion
        # signal the poll legitimately prechecks (Docker #24007)
        feeders = model.potential_count(
            chan, ("send", "try_send"), exclude=t)
        if feeders == 0:
            continue
        blocking_elsewhere = False
        for t2, _pi, _oi, op2 in model.all_ops():
            if op2 is op:
                continue
            if op2.obj is chan and op2.kind in ("recv", "recv_ok",
                                                "range") and op2.blocking:
                blocking_elsewhere = True
                break
            if op2.kind == "select" and not op2.has_default and any(
                    ak2 == "recv" and ac2 is chan
                    for ak2, ac2 in op2.arms):
                blocking_elsewhere = True
                break
        if not blocking_elsewhere:
            out.append(_finding(
                "select-default-poll",
                f"the polling select is the only consumer of "
                f"{chan.name}: the default branch turns a wait into a "
                "poll that can give up before the producer runs",
                chan, op.line, t.name))
            return out
    return out


def _tick_vs_stop(model: ProgramModel, t: ThreadModel, path: Path,
                  oi: int, op: Op) -> List[StaticFinding]:
    """Figure 11: ticker arm races a stop arm inside an unbounded loop.

    When both a periodic arm (ticker) and a closed-elsewhere stop arm
    are ready, select picks randomly, so the loop may survive the stop
    indefinitely — unless the body prechecks the stop channel with a
    non-blocking select first.
    """
    if op.mult != MANY:
        return []
    tick_arms = [ac for ak, ac in op.arms if ac.is_ticker]
    stop_arms = [ac for ak, ac in op.arms
                 if not (ac.is_ticker or ac.is_timer)
                 and ak == "recv"
                 and model.potential_count(ac, ("close",), exclude=t) > 0]
    if not tick_arms or not stop_arms:
        return []
    for prior in path.ops[:oi]:
        if prior.kind == "select" and prior.has_default and any(
                ac in stop_arms for _ak, ac in prior.arms):
            return []  # prechecked: the fix pattern
    return [_finding(
        "select-tick-vs-stop",
        f"looped select chooses randomly between ticker "
        f"{tick_arms[0].name} and stop {stop_arms[0].name}: stop may "
        "lose every round (precheck the stop channel non-blockingly)",
        stop_arms[0], op.line, t.name)]


# -- WaitGroup discipline ----------------------------------------------

def _wg_rules(model: ProgramModel) -> List[StaticFinding]:
    out: List[StaticFinding] = []
    for wg in model.objects_of_kind("wg"):
        out += _wg_counts(model, wg)
        out += _wg_premature_wait(model, wg)
        out += _wg_add_concurrent_wait(model, wg)
        out += _wg_wait_before_drain(model, wg)
    return out


def _wg_counts(model: ProgramModel, wg: AbstractObj
               ) -> List[StaticFinding]:
    """More Done calls than Add'ed: the counter goes negative."""
    adds = 0.0
    for t in model.threads:
        best = 0.0
        for path in t.paths:
            here = 0.0
            for op in path.ops:
                if op.kind == "wg_add" and op.obj is wg:
                    if op.delta is None:
                        return []  # unknown delta: stay quiet
                    here = INF if (op.mult == MANY or t.mult == MANY) \
                        else here + op.delta
            best = max(best, here)
        adds += best
    dones = model.potential_count(wg, ("wg_done",))
    if adds != INF and dones != INF and dones > adds:
        where = model.ops_on(wg, "wg_done")[-1]
        return [_finding(
            "wg-extra-done",
            f"up to {int(dones)} wg.done but only {int(adds)} added on "
            f"{wg.name}: the counter can go negative (panic)",
            wg, where[3].line, where[0].name)]
    return []


def _wg_premature_wait(model: ProgramModel, wg: AbstractObj
                       ) -> List[StaticFinding]:
    """Wait reached while fewer Done calls are reachable than Added."""
    out = []
    for t in model.threads:
        for path in t.paths:
            adds = 0.0
            dones_local = 0.0
            finding = None
            for i, op in enumerate(path.ops):
                if op.kind == "wg_add" and op.obj is wg:
                    if op.delta is None:
                        adds = INF
                    elif adds != INF:
                        adds += op.delta * (INF if op.mult == MANY else 1)
                elif op.kind == "wg_done" and op.obj is wg:
                    dones_local += INF if op.mult == MANY else 1
                elif op.kind == "wg_wait" and op.obj is wg:
                    if adds in (0.0, INF):
                        continue
                    avail = dones_local + _spawned_dones(
                        model, t, path, i, wg)
                    if adds > avail:
                        finding = _finding(
                            "wg-premature-wait",
                            f"wg.wait on {wg.name} with {int(adds)} "
                            f"added but at most "
                            f"{int(avail) if avail != INF else avail} "
                            "done calls reachable before it",
                            wg, op.line, t.name)
                        break
            if finding is not None:
                out.append(finding)
                return out
    return out


def _spawned_dones(model: ProgramModel, t: ThreadModel, path: Path,
                   wait_idx: int, wg: AbstractObj) -> float:
    """Done calls reachable from threads spawned before the wait."""
    total = 0.0
    keys = [op.detail for op in path.ops[:wait_idx]
            if op.kind == "spawn"]
    seen = set()
    while keys:
        key = keys.pop()
        if key in seen:
            continue
        seen.add(key)
        child = model.thread(key)
        if child is None:
            continue
        best = 0.0
        for cpath in child.paths:
            here = 0.0
            for op in cpath.ops:
                if op.kind == "wg_done" and op.obj is wg:
                    here = INF if (op.mult == MANY or child.mult == MANY) \
                        else here + 1
                elif op.kind == "spawn":
                    keys.append(op.detail)
            best = max(best, here)
        total += best
    return total


def _wg_add_concurrent_wait(model: ProgramModel, wg: AbstractObj
                            ) -> List[StaticFinding]:
    """Figure 9: an Add that nothing orders before a concurrent Wait.

    Safe shapes: add and wait in the same goroutine, an ancestor's add
    strictly before the spawn chain leading to the waiter (spawn edge),
    or — the committed etcd#6371 fix — add and wait both inside the
    same critical section.
    """
    out = []
    for t, pi, oi, op in model.ops_on(wg, "wg_add"):
        for t2, pi2, oi2, wop in model.ops_on(wg, "wg_wait"):
            if t2 is t:
                continue
            if _spawn_ordered(model, t, t.paths[pi], oi, t2):
                continue
            add_locks = {mu.oid for mu, _m in op.lockset}
            wait_locks = {mu.oid for mu, _m in wop.lockset}
            if add_locks & wait_locks:
                continue
            out.append(_finding(
                "wg-add-concurrent-wait",
                f"wg.add on {wg.name} in {t.name} is unordered with "
                f"the wg.wait in {t2.name}: the wait can return before "
                "the add lands",
                wg, op.line, t.name))
            return out
    return out


def _spawn_ordered(model: ProgramModel, t: ThreadModel, path: Path,
                   op_i: int, other: ThreadModel) -> bool:
    """Is ``path.ops[op_i]`` ordered before everything in ``other`` by
    the spawn chain from ``t`` down to ``other``?"""
    if path.ops[op_i].mult == MANY:
        return False
    chain = []
    cur: Optional[ThreadModel] = other
    while cur is not None and cur.parent_key is not None:
        chain.append((cur.parent_key, cur.key))
        cur = model.thread(cur.parent_key)
    for parent_key, child_key in chain:
        if parent_key == t.key:
            si = model.spawn_index(t, path, child_key)
            return si is not None and op_i < si
    return False


def _wg_wait_before_drain(model: ProgramModel, wg: AbstractObj
                          ) -> List[StaticFinding]:
    """Workers block sending before Done; receiver recvs only after Wait."""
    out = []
    for t, pi, oi, wop in model.ops_on(wg, "wg_wait"):
        path = t.paths[pi]
        spawned = {op.detail for op in path.ops[:oi]
                   if op.kind == "spawn"}
        for key in spawned:
            worker = model.thread(key)
            if worker is None:
                continue
            for wpath in worker.paths:
                done_idx = next((i for i, op in enumerate(wpath.ops)
                                 if op.kind == "wg_done"
                                 and op.obj is wg), None)
                if done_idx is None:
                    continue
                for i in range(done_idx):
                    sop = wpath.ops[i]
                    if sop.kind != "send" or not sop.blocking \
                            or sop.obj is None:
                        continue
                    chan = sop.obj
                    cap = chan.capacity or 0
                    sends = model.potential_count(chan, _SEND_KINDS)
                    if sends <= cap:
                        continue
                    if _drained_only_after(model, chan, t, path, oi,
                                           worker):
                        out.append(_finding(
                            "wg-wait-before-drain",
                            f"worker {worker.name} must send on "
                            f"{chan.name} before wg.done, but the only "
                            "receiver drains it after wg.wait",
                            wg, wop.line, t.name))
                        return out
    return out


def _drained_only_after(model: ProgramModel, chan: AbstractObj,
                        waiter: ThreadModel, wpath: Path, wait_idx: int,
                        worker: ThreadModel) -> bool:
    for t in model.threads:
        if t is worker:
            continue
        for path in t.paths:
            for i, op in enumerate(path.ops):
                hits = (op.obj is chan and op.kind in _RECV_KINDS) or (
                    op.kind == "select" and any(
                        ak == "recv" and ac is chan
                        for ak, ac in op.arms))
                if not hits:
                    continue
                if t is waiter and path is wpath and i > wait_idx:
                    continue  # after the wait: cannot help
                return False  # a live drain elsewhere
    return True


# -- Cond --------------------------------------------------------------

def _cond_rules(model: ProgramModel) -> List[StaticFinding]:
    out = []
    for cond in model.objects_of_kind("cond"):
        waits = model.ops_on(cond, "cond_wait")
        if not waits:
            continue
        signals = model.ops_on(cond, "cond_signal", "cond_broadcast")
        t, _pi, _oi, op = waits[0]
        if not signals:
            out.append(_finding(
                "cond-no-signal",
                f"cond.wait on {cond.name} but nothing ever signals "
                "or broadcasts it",
                cond, op.line, t.name))
    return out


# -- context cancel handles --------------------------------------------

def _ctx_rules(model: ProgramModel) -> List[StaticFinding]:
    out = []
    roots = set()
    for ctx in model.objects_of_kind("ctx"):
        if ctx.attrs.get("used_as_parent"):
            cancel = ctx.attrs.get("cancel")
            if isinstance(cancel, AbstractObj):
                roots.add(cancel.oid)
    for cancel in model.objects_of_kind("cancel"):
        if cancel.cancel_called or cancel.auto_cancel:
            continue
        if cancel.oid in roots:
            # a context that parents other contexts is a lifetime root;
            # its cancel living as long as the program is intentional
            continue
        out.append(_finding(
            "ctx-cancel-leak",
            f"cancel handle {cancel.name} is never called: the "
            "context's resources and any done()-waiters leak",
            cancel, cancel.line))
    return out


# -- pipes -------------------------------------------------------------

def _pipe_rules(model: ProgramModel) -> List[StaticFinding]:
    out = []
    for pr in model.objects_of_kind("pipe_r"):
        pw = pr.peer
        if pw is None:
            continue
        reads = model.potential_count(pr, ("pipe_read",))
        writes = model.potential_count(pw, ("pipe_write",))
        r_closes = model.potential_count(pr, ("pipe_close",))
        w_closes = model.potential_count(pw, ("pipe_close",))
        if writes > reads and r_closes == 0 and writes != INF:
            t, _pi, _oi, op = model.ops_on(pw, "pipe_write")[0]
            out.append(_finding(
                "pipe-writer-stuck",
                f"up to {int(writes)} pipe writes but only "
                f"{int(reads) if reads != INF else reads} reads and "
                "the read end is never closed: the writer blocks "
                "forever",
                pw, op.line, t.name))
        if reads > writes and w_closes == 0 and reads != INF:
            t, _pi, _oi, op = model.ops_on(pr, "pipe_read")[0]
            out.append(_finding(
                "pipe-reader-stuck",
                f"up to {int(reads)} pipe reads but only "
                f"{int(writes) if writes != INF else writes} writes "
                "and the write end is never closed: the reader blocks "
                "forever",
                pr, op.line, t.name))
        if reads == INF and w_closes == 0:
            t, _pi, _oi, op = model.ops_on(pr, "pipe_read")[0]
            out.append(_finding(
                "pipe-reader-stuck",
                f"unbounded pipe reads on {pr.name} but the write end "
                "is never closed: the final read blocks forever",
                pr, op.line, t.name))
    return out


# -- timers ------------------------------------------------------------

def _timer_rules(model: ProgramModel) -> List[StaticFinding]:
    out = []
    for t, _pi, _oi, op in model.all_ops():
        if op.kind == "timer_new" and op.delta == 0:
            out.append(_finding(
                "timer-zero-duration",
                f"timer {op.obj.name} created with zero duration "
                "fires immediately: a zero timeout should disable the "
                "timeout arm (nil channel), not trigger it",
                op.obj, op.line, t.name))
    return out
