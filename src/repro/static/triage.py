"""Static triage: screen the sweep queue without running anything.

The cheapest screen of all three tiers — no recorded run, no execution,
just the checkers over the summary model.  Emits the same
:class:`~repro.detect.triage.TriageVerdict` as ``repro predict
--triage`` (``source="static"``), so the dynamic sweep queue consumes
either stream: a clean verdict skips the ``explore_systematic`` pass, a
dirty one prioritises the target and tells the sweep which checker
families to search for.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..detect.triage import TriageVerdict, order_sweep_queue
from .engine import analyze_program
from .model import StaticReport

__all__ = ["TriageVerdict", "order_sweep_queue", "triage_report",
           "triage_kernel", "triage_sweep"]


def triage_report(report: StaticReport) -> TriageVerdict:
    """Fold one static report into the shared verdict shape."""
    return TriageVerdict(
        target=report.target,
        needs_search=report.found,
        families=tuple(sorted(report.by_checker())),
        report=report,
        seed=0,
        source="static",
    )


def triage_kernel(kernel: Any, fixed: bool = False) -> TriageVerdict:
    """Screen a corpus kernel variant without executing it."""
    variant = "fixed" if fixed else "buggy"
    return triage_report(analyze_program(kernel, variant=variant))


def triage_sweep(kernels: Optional[Sequence[Any]] = None,
                 fixed: bool = False) -> List[TriageVerdict]:
    """Screen many kernels and order them for the dynamic sweep.

    Flagged targets come first (search those eagerly), clean targets
    last (defer or skip) — :func:`order_sweep_queue` is shared with the
    predictive screen, so mixed static/predict queues order the same
    way.
    """
    if kernels is None:
        from ..bugs.registry import all_kernels
        kernels = all_kernels()
    verdicts = [triage_kernel(k, fixed=fixed) for k in kernels]
    return order_sweep_queue(verdicts)
