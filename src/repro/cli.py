"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``report``                — regenerate the paper's tables and figures.
* ``kernels``               — list the executable bug corpus.
* ``run-kernel <id>``       — run one kernel (buggy or fixed) and classify.
* ``detect <id>``           — run every detector against one kernel.
* ``scan <paths...>``       — static loop-capture scan over Python sources.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bugs import registry
from .detect import (
    BuiltinDeadlockDetector,
    ChannelRuleChecker,
    GoroutineLeakDetector,
    LockOrderDetector,
    RaceDetector,
    scan_paths,
)
from .runtime.runtime import run


def _cmd_report(args: argparse.Namespace) -> int:
    from .study.report import full_report

    print(full_report())
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    kernels = registry.all_kernels()
    if args.blocking:
        kernels = [k for k in kernels if k.meta.behavior.value == "blocking"]
    if args.nonblocking:
        kernels = [k for k in kernels if k.meta.behavior.value == "non-blocking"]
    for kernel in kernels:
        meta = kernel.meta
        figure = f" [figure {meta.figure}]" if meta.figure else ""
        print(f"{meta.kernel_id:<52} {meta.app.value:<12} "
              f"{str(meta.subcause):<22} {str(meta.fix_strategy):<9}{figure}")
    print(f"\n{len(kernels)} kernels")
    return 0


def _describe(result) -> str:
    bits = [f"status={result.status}", f"steps={result.steps}",
            f"virtual-time={result.end_time:g}s"]
    if result.leaked:
        bits.append("leaked=" + ", ".join(g.describe() for g in result.leaked))
    if result.panic_value is not None:
        bits.append(f"panic={result.panic_value}")
    return "\n  ".join(bits)


def _cmd_run_kernel(args: argparse.Namespace) -> int:
    kernel = registry.get(args.kernel_id)
    program = kernel.run_fixed if args.fixed else kernel.run_buggy
    if args.sweep:
        hits = 0
        for seed in range(args.sweep):
            result = program(seed=seed)
            if kernel.manifested(result):
                hits += 1
        variant = "fixed" if args.fixed else "buggy"
        print(f"{args.kernel_id} ({variant}): manifested on "
              f"{hits}/{args.sweep} seeds")
        return 0
    result = program(seed=args.seed)
    print(f"{args.kernel_id} seed={args.seed}")
    print(f"  {_describe(result)}")
    print(f"  manifested={kernel.manifested(result)}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    kernel = registry.get(args.kernel_id)
    seeds = ([args.seed] if args.seed is not None
             else (kernel.manifestation_seeds(range(40)) or [0])[:1])
    seed = seeds[0]

    race = RaceDetector()
    rules = ChannelRuleChecker()
    lockorder = LockOrderDetector()
    kwargs = dict(kernel.run_kwargs)
    result = run(kernel.buggy, seed=seed,
                 observers=[race, rules, lockorder], **kwargs)

    print(f"{args.kernel_id} (buggy, seed={seed}): {_describe(result)}")
    print(f"  built-in deadlock detector: "
          f"{'HIT' if BuiltinDeadlockDetector().classify(result) else 'miss'}")
    print(f"  goroutine-leak detector:    "
          f"{'HIT' if GoroutineLeakDetector().classify(result) else 'miss'}")
    print(f"  race detector:              "
          f"{'HIT' if race.detected else 'miss'}")
    for report in race.reports:
        print(f"    {report}")
    print(f"  channel-rule checker:       "
          f"{'HIT' if rules.detected else 'miss'}")
    for violation in rules.violations:
        print(f"    {violation}")
    print(f"  lock-order detector:        "
          f"{'HIT' if lockorder.detected else 'miss'}")
    for violation in lockorder.violations:
        print(f"    {violation}")
    return 0


def _cmd_usage(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .study.usage_static import COLUMNS, analyze_package

    for target in args.paths:
        usage = analyze_package(Path(target))
        props = usage.proportions()
        print(f"{usage.name}: {usage.loc} LoC across {usage.files} files")
        print(f"  goroutine creation sites: {usage.creation_sites} "
              f"({usage.anonymous_sites} anonymous / {usage.named_sites} named, "
              f"{usage.sites_per_kloc:.2f}/KLOC)")
        print(f"  primitive usages: {usage.total_primitives} "
              f"({usage.primitives_per_kloc:.1f}/KLOC)")
        for column in COLUMNS:
            if props[column]:
                print(f"    {column:<10} {props[column]:5.1f}%")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .study.export import export_all

    paths = export_all(args.directory)
    for path in paths:
        print(path)
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from .detect.systematic import explore_systematic

    kernel = registry.get(args.kernel_id)
    program = kernel.fixed if args.fixed else kernel.buggy
    kwargs = dict(kernel.run_kwargs)
    exploration = explore_systematic(
        program, stop_on=kernel.manifested, max_runs=args.max_runs, **kwargs
    )
    variant = "fixed" if args.fixed else "buggy"
    print(f"{args.kernel_id} ({variant}): {exploration}")
    if exploration.found:
        print("  replay with: ScriptedChoices("
              f"{exploration.counterexample})")
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    findings = scan_paths(args.paths)
    for finding in findings:
        print(finding)
    print(f"{len(findings)} finding(s)")
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Understanding Real-World Concurrency "
                     "Bugs in Go' (ASPLOS 2019)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("report", help="regenerate the paper's evaluation")

    kernels = sub.add_parser("kernels", help="list the bug corpus")
    kernels.add_argument("--blocking", action="store_true")
    kernels.add_argument("--nonblocking", action="store_true")

    runk = sub.add_parser("run-kernel", help="execute one kernel")
    runk.add_argument("kernel_id")
    runk.add_argument("--seed", type=int, default=0)
    runk.add_argument("--fixed", action="store_true",
                      help="run the fixed variant instead of the buggy one")
    runk.add_argument("--sweep", type=int, metavar="N",
                      help="run seeds 0..N-1 and report the manifestation rate")

    detect = sub.add_parser("detect", help="run every detector on a kernel")
    detect.add_argument("kernel_id")
    detect.add_argument("--seed", type=int, default=None)

    scan = sub.add_parser("scan", help="static loop-capture scan")
    scan.add_argument("paths", nargs="+")

    explore = sub.add_parser(
        "explore", help="systematically enumerate a kernel's schedules"
    )
    explore.add_argument("kernel_id")
    explore.add_argument("--max-runs", type=int, default=500)
    explore.add_argument("--fixed", action="store_true")

    export = sub.add_parser(
        "export", help="write tables/figures as TSV/JSON artifacts"
    )
    export.add_argument("directory")

    usage = sub.add_parser(
        "usage", help="Table 2/4-style concurrency profile of a package"
    )
    usage.add_argument("paths", nargs="+")

    return parser


_COMMANDS = {
    "report": _cmd_report,
    "kernels": _cmd_kernels,
    "run-kernel": _cmd_run_kernel,
    "detect": _cmd_detect,
    "scan": _cmd_scan,
    "explore": _cmd_explore,
    "export": _cmd_export,
    "usage": _cmd_usage,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
