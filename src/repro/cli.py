"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``report``                — regenerate the paper's tables and figures.
* ``kernels``               — list the executable bug corpus.
* ``run-kernel <id>``       — run one kernel (buggy or fixed) and classify.
* ``detect <id>``           — run every detector against one kernel.
* ``scan <paths...>``       — static loop-capture scan over Python sources.
* ``bench``                 — simulator performance benchmarks: single-run
  fast path and parallel sweep scaling (``--out BENCH_simulator.json``).
* ``chaos``                 — fault-injection sweeps and the resilience
  scorecard (``repro chaos --apps``, ``repro chaos --kernel <id>``,
  ``repro chaos --net-apps --plan partition``).
* ``net-demo``              — run the 3-node minietcd cluster on the
  simulated network and report health, fabric stats and the determinism
  witnesses (schedule + message-log digests).
* ``loadgen``               — virtual-time load generator against the echo
  service (``--clients``, ``--requests``, ``--rate``, ``--seeds``).
* ``profile <target>``      — pprof-style goroutine/block/mutex profiles
  and metrics for one observed run (``--flame`` for the flamegraph).
* ``trace-export <target>`` — Chrome ``trace_event`` JSON for one run
  (load in ``about:tracing`` / Perfetto); ``--sync`` writes the
  sync-event stream ``repro predict`` consumes instead.
* ``timeline <target>``     — the per-goroutine ASCII lane diagram.
* ``predict <target>``      — offline predictive analysis: record one
  run (or read a ``--sync`` export) and report races, lock cycles and
  communication deadlocks reachable in schedules never executed
  (``--confirm`` searches for a replayable witness, ``--triage``
  prints only the needs-schedule-search verdict).

Targets for the three observability commands are kernel ids (optionally
``--fixed``) or mini-app scenario names (``app:minietcd`` or bare).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .bugs import registry
from .detect import (
    BuiltinDeadlockDetector,
    ChannelRuleChecker,
    GoroutineLeakDetector,
    LockOrderDetector,
    RaceDetector,
    scan_paths,
)
from .runtime.runtime import run


def _cmd_report(args: argparse.Namespace) -> int:
    from .study.report import full_report

    print(full_report())
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    kernels = registry.all_kernels()
    if args.blocking:
        kernels = [k for k in kernels if k.meta.behavior.value == "blocking"]
    if args.nonblocking:
        kernels = [k for k in kernels if k.meta.behavior.value == "non-blocking"]
    if args.json:
        print(json.dumps([{
            "kernel_id": k.meta.kernel_id,
            "title": k.meta.title,
            "app": k.meta.app.value,
            "behavior": k.meta.behavior.value,
            "subcause": str(k.meta.subcause),
            "fix_strategy": str(k.meta.fix_strategy),
            "symptom": k.meta.symptom,
            "figure": k.meta.figure,
            "bug_url": k.meta.bug_url,
            "deterministic": k.meta.deterministic,
            "latent": k.meta.latent,
        } for k in kernels], indent=2))
        return 0
    for kernel in kernels:
        meta = kernel.meta
        figure = f" [figure {meta.figure}]" if meta.figure else ""
        print(f"{meta.kernel_id:<52} {meta.app.value:<12} "
              f"{str(meta.subcause):<22} {str(meta.fix_strategy):<9}{figure}")
    print(f"\n{len(kernels)} kernels")
    return 0


def _describe(result) -> str:
    bits = [f"status={result.status}", f"steps={result.steps}",
            f"virtual-time={result.end_time:g}s"]
    if result.leaked:
        bits.append("leaked=" + ", ".join(g.describe() for g in result.leaked))
    if result.panic_value is not None:
        bits.append(f"panic={result.panic_value}")
    return "\n  ".join(bits)


def _cmd_run_kernel(args: argparse.Namespace) -> int:
    kernel = registry.get(args.kernel_id)
    program = kernel.run_fixed if args.fixed else kernel.run_buggy
    variant = "fixed" if args.fixed else "buggy"
    if args.sweep:
        if args.jobs > 1:
            from .parallel import sweep_seeds

            variant_fn = kernel.fixed if args.fixed else kernel.buggy
            summaries = sweep_seeds(variant_fn, range(args.sweep),
                                    jobs=args.jobs,
                                    predicate=kernel.manifested,
                                    **dict(kernel.run_kwargs))
            hits = [s.seed for s in summaries if s.manifested]
        else:
            hits = [seed for seed in range(args.sweep)
                    if kernel.manifested(program(seed=seed))]
        if args.json:
            print(json.dumps({
                "kernel": args.kernel_id,
                "variant": variant,
                "sweep": args.sweep,
                "manifested_seeds": hits,
                "manifestation_rate": len(hits) / args.sweep,
            }, indent=2))
            return 0
        print(f"{args.kernel_id} ({variant}): manifested on "
              f"{len(hits)}/{args.sweep} seeds")
        return 0
    result = program(seed=args.seed)
    if args.json:
        payload = result.to_dict()
        payload["kernel"] = args.kernel_id
        payload["variant"] = variant
        payload["manifested"] = kernel.manifested(result)
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{args.kernel_id} seed={args.seed}")
    print(f"  {_describe(result)}")
    print(f"  manifested={kernel.manifested(result)}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    kernel = registry.get(args.kernel_id)
    seeds = ([args.seed] if args.seed is not None
             else (kernel.manifestation_seeds(range(40), jobs=args.jobs)
                   or [0])[:1])
    seed = seeds[0]

    race = RaceDetector()
    rules = ChannelRuleChecker()
    lockorder = LockOrderDetector()
    kwargs = dict(kernel.run_kwargs)
    result = run(kernel.buggy, seed=seed,
                 observers=[race, rules, lockorder], **kwargs)

    if args.json:
        print(json.dumps({
            "kernel": args.kernel_id,
            "variant": "buggy",
            "seed": seed,
            "result": result.to_dict(),
            "detectors": {
                "builtin_deadlock": bool(
                    BuiltinDeadlockDetector().classify(result)),
                "goroutine_leak": bool(
                    GoroutineLeakDetector().classify(result)),
                "race": {
                    "hit": bool(race.detected),
                    "reports": [str(r) for r in race.reports],
                },
                "channel_rules": {
                    "hit": bool(rules.detected),
                    "violations": [str(v) for v in rules.violations],
                },
                "lock_order": {
                    "hit": bool(lockorder.detected),
                    "violations": [str(v) for v in lockorder.violations],
                },
            },
        }, indent=2))
        return 0

    print(f"{args.kernel_id} (buggy, seed={seed}): {_describe(result)}")
    print(f"  built-in deadlock detector: "
          f"{'HIT' if BuiltinDeadlockDetector().classify(result) else 'miss'}")
    print(f"  goroutine-leak detector:    "
          f"{'HIT' if GoroutineLeakDetector().classify(result) else 'miss'}")
    print(f"  race detector:              "
          f"{'HIT' if race.detected else 'miss'}")
    for report in race.reports:
        print(f"    {report}")
    print(f"  channel-rule checker:       "
          f"{'HIT' if rules.detected else 'miss'}")
    for violation in rules.violations:
        print(f"    {violation}")
    print(f"  lock-order detector:        "
          f"{'HIT' if lockorder.detected else 'miss'}")
    for violation in lockorder.violations:
        print(f"    {violation}")
    return 0


def _cmd_usage(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .study.usage_static import COLUMNS, analyze_package

    for target in args.paths:
        usage = analyze_package(Path(target))
        props = usage.proportions()
        print(f"{usage.name}: {usage.loc} LoC across {usage.files} files")
        print(f"  goroutine creation sites: {usage.creation_sites} "
              f"({usage.anonymous_sites} anonymous / {usage.named_sites} named, "
              f"{usage.sites_per_kloc:.2f}/KLOC)")
        print(f"  primitive usages: {usage.total_primitives} "
              f"({usage.primitives_per_kloc:.1f}/KLOC)")
        for column in COLUMNS:
            if props[column]:
                print(f"    {column:<10} {props[column]:5.1f}%")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .study.export import export_all

    paths = export_all(args.directory)
    for path in paths:
        print(path)
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from .detect.systematic import explore_systematic

    kernel = registry.get(args.kernel_id)
    program = kernel.fixed if args.fixed else kernel.buggy
    kwargs = dict(kernel.run_kwargs)
    exploration = explore_systematic(
        program, stop_on=kernel.manifested, max_runs=args.max_runs,
        jobs=args.jobs, prune=not args.no_prune, memo=not args.no_memo,
        **kwargs
    )
    variant = "fixed" if args.fixed else "buggy"
    if args.json:
        payload = {
            "kernel": args.kernel_id,
            "variant": variant,
            "runs": exploration.runs,
            "exhausted": exploration.exhausted,
            "found": exploration.found,
            "counterexample": exploration.counterexample,
            "counterexample_status": (
                exploration.counterexample_result.status
                if exploration.counterexample_result is not None else None),
            "statuses": dict(exploration.statuses),
        }
        if args.stats:
            payload["stats"] = exploration.to_stats()
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{args.kernel_id} ({variant}): {exploration}")
    if exploration.found:
        print("  replay with: ScriptedChoices("
              f"{exploration.counterexample})")
    if args.stats:
        stats = exploration.to_stats()
        print(f"  runs:       {stats['runs']} visited "
              f"({stats['runs_executed']} executed, "
              f"{stats['runs_saved']} memoized)")
        print(f"  pruned:     {stats['pruned']} sibling branches")
        print(f"  diverged:   {stats['divergences']} replays")
        print(f"  tree depth: {stats['max_depth']} decisions")
        print(f"  wall time:  {stats['wall_s']:.3f}s")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .inject import (
        ChaosHarness, app_targets, kernel_targets, net_app_targets, plans,
        recovery_targets,
    )
    from .inject.plan import FaultPlan

    if args.list_plans:
        for name in sorted(plans.REGISTRY):
            plan = plans.get(name)
            print(f"{name:<16} {plan.note or ''}")
        return 0

    suite = None
    if args.plan or args.plan_file:
        suite = []
        for name in args.plan or []:
            try:
                suite.append(plans.get(name))
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return 2
        for path in args.plan_file or []:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    suite.append(FaultPlan.from_json(handle.read()))
            except (OSError, ValueError) as exc:
                print(f"error: cannot load plan file {path}: {exc}",
                      file=sys.stderr)
                return 2

    targets = []
    if args.apps:
        targets.extend(app_targets())
    if args.net_apps:
        targets.extend(net_app_targets())
        if suite is None and not args.apps and not args.kernel:
            # The perturbation suite exercises scheduling, not the fabric;
            # cluster apps default to the canonical network fault.  The
            # glob isolates each app's secondary node (etcd's n2, grpc's
            # srv2): replication stalls and retries, clients stay served.
            suite = [plans.partition(target="*2")]
    if args.recovery:
        targets.extend(recovery_targets())
        if suite is None and not args.apps and not args.net_apps \
                and not args.kernel:
            # Crash plans for the supervised clusters: one crash with a
            # delayed restart, plus recurring crash/restart pressure.  The
            # scorecard grows Recovered/Diverged/Stuck columns from these
            # targets' convergence verdicts.
            suite = [plans.crash_restart(delay=0.3), plans.crash_storm()]
    if args.kernel:
        variant = "fixed" if args.fixed else "buggy"
        targets.extend(kernel_targets(args.kernel, variant=variant))
    if not targets:
        print("error: nothing to run; pass --apps, --net-apps, --recovery "
              "and/or --kernel ID", file=sys.stderr)
        return 2

    harness = ChaosHarness(seeds=range(args.seeds), observe=args.observe,
                           jobs=args.jobs)
    cells = harness.sweep(targets, plans=suite,
                          include_baseline=not args.no_baseline)
    if args.json:
        print(json.dumps(harness.to_dict(cells), indent=2))
    else:
        print(harness.scorecard(cells))
    return 0 if all(cell.clean for cell in cells) else 1


def _cmd_net_demo(args: argparse.Namespace) -> int:
    from functools import partial

    from .inject import plans
    from .net.demo import demo_summary
    from .parallel import map_units

    plan = None
    if args.plan:
        try:
            plan = plans.get(args.plan)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    seeds = list(range(args.seeds)) if args.seeds else [args.seed]
    summaries = map_units(
        [partial(demo_summary, seed, plan) for seed in seeds],
        jobs=args.jobs,
    )
    if args.json:
        print(json.dumps(summaries if args.seeds else summaries[0],
                         indent=2, sort_keys=True))
        return 0 if all(s["healthy"] for s in summaries) else 1

    for s in summaries:
        print(f"seed={s['seed']} status={s['status']} "
              f"{'HEALTHY' if s['healthy'] else 'UNHEALTHY'}: "
              f"puts={s['puts']}/6 watch={s['watch_events']}/6 "
              f"range={s['range_rows']}/6 "
              f"converged={s['converged']} replicated={s['replicated']}")
        net = s["net"]
        print(f"  fabric: sent={net['sent']} delivered={net['delivered']} "
              f"dropped={net['dropped']} dials={net['dials']} | "
              f"steps={s['steps']} virtual={s['virtual_s']:g}s "
              f"faults={s['faults_fired']}")
        print(f"  schedule sha256={s['schedule_sha256'][:16]}… "
              f"message-log sha256={s['message_log_sha256'][:16]}… "
              f"({s['message_log_bytes']} bytes)")
    if not args.seeds:
        # Replay witness: the same seed must reproduce both digests.
        replay = demo_summary(seeds[0], plan)
        identical = (replay["schedule_sha256"] == summaries[0]["schedule_sha256"]
                     and replay["message_log_sha256"]
                     == summaries[0]["message_log_sha256"])
        print(f"  replay: {'identical' if identical else 'DIVERGED'} "
              f"(schedule + message log)")
        if not identical:
            return 1
    return 0 if all(s["healthy"] for s in summaries) else 1


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from functools import partial

    from .net.demo import loadgen_summary
    from .parallel import map_units

    rate = None if args.rate is not None and args.rate <= 0 else args.rate
    seeds = list(range(args.seeds)) if args.seeds else [args.seed]
    summaries = map_units(
        [partial(loadgen_summary, seed, args.clients, args.requests,
                 rate, args.arrival) for seed in seeds],
        jobs=args.jobs,
    )
    if args.json:
        print(json.dumps(summaries if args.seeds else summaries[0],
                         indent=2, sort_keys=True))
        return 0 if all(not s["errors"] for s in summaries) else 1

    for s in summaries:
        lat = s["latency"]
        print(f"seed={s['seed']} status={s['status']}: "
              f"{s['requests']} requests from {s['clients']} client(s) "
              f"over {s['virtual_s']:g} virtual s "
              f"({s['rps_virtual']:,.0f} req/s, {s['steps']} steps)")
        print(f"  ok={s['ok']} errors={s['errors']}"
              + (f" {s['error_kinds']}" if s["error_kinds"] else ""))
        print(f"  latency mean={lat['mean']*1e3:.3f}ms "
              f"p50<={lat['p50']*1e3:.3f}ms p90<={lat['p90']*1e3:.3f}ms "
              f"p99<={lat['p99']*1e3:.3f}ms max={lat['max']*1e3:.3f}ms")
        net = s["net"]
        print(f"  fabric: sent={net['sent']} delivered={net['delivered']} "
              f"dropped={net['dropped']}")
    return 0 if all(not s["errors"] for s in summaries) else 1


def _resolve_target(target: str, fixed: bool = False):
    """Resolve a CLI target to ``(name, program, run_kwargs)``.

    Accepts a kernel id (``--fixed`` selects the fixed variant) or a
    mini-app chaos scenario, written ``app:minietcd`` or bare.  Raises
    SystemExit-friendly ValueError with the candidates on a miss.
    """
    from .inject import scenarios

    apps = {name: (program, kwargs)
            for name, program, kwargs in scenarios.all_scenarios()}
    app_name = target[4:] if target.startswith("app:") else target
    if app_name in apps:
        program, kwargs = apps[app_name]
        return app_name, program, dict(kwargs)
    try:
        kernel = registry.get(target)
    except KeyError:
        known = ", ".join(sorted(apps))
        raise ValueError(
            f"unknown target {target!r}: expected a kernel id "
            f"(see `repro kernels`) or one of the app scenarios: {known}")
    program = kernel.fixed if fixed else kernel.buggy
    variant = "fixed" if fixed else "buggy"
    return f"{target}[{variant}]", program, dict(kernel.run_kwargs)


def _observed_run(args: argparse.Namespace):
    from .observe import Observer

    name, program, kwargs = _resolve_target(args.target, fixed=args.fixed)
    observer = Observer(capture_sites=not getattr(args, "no_sites", False))
    result = run(program, seed=args.seed, observe=observer, **kwargs)
    return name, result, observer


def _cmd_profile(args: argparse.Namespace) -> int:
    try:
        name, result, observer = _observed_run(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        payload = observer.to_dict()
        payload["target"] = name
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    print(f"target: {name}")
    print(observer.render(top=args.top))
    if args.flame:
        print()
        print(observer.flamegraph())
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from .observe import chrome_trace_json, sync_events_json

    try:
        name, result, observer = _observed_run(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.sync:
        document = sync_events_json(result, indent=args.indent)
    else:
        document = chrome_trace_json(result, observer,
                                     include_memory=args.memory,
                                     indent=args.indent)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document)
            handle.write("\n")
        print(f"{args.output}: {name} seed={args.seed} "
              f"status={result.status} ({len(document)} bytes)")
    else:
        print(document)
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from .runtime.timeline import blocked_summary, timeline

    try:
        name, program, kwargs = _resolve_target(args.target, fixed=args.fixed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run(program, seed=args.seed, **kwargs)
    print(f"target: {name} seed={args.seed}")
    print(timeline(result, max_width=args.width,
                   include_memory=args.memory))
    if result.leaked:
        print("stuck goroutines:")
        print(blocked_summary(result))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    import os

    from .predict import (
        SyncTrace,
        TriageVerdict,
        confirm_predictions,
        predict,
        predict_kernel,
    )

    program = None
    kwargs: dict = {}
    oracle = None
    if os.path.isfile(args.target):
        if args.confirm:
            print("error: --confirm needs a runnable target (kernel id or "
                  "app scenario), not a trace file", file=sys.stderr)
            return 2
        with open(args.target, "r", encoding="utf-8") as handle:
            trace = SyncTrace.from_json(handle.read())
        report = predict(trace, target=args.target)
        seed = trace.seed
    else:
        try:
            name, program, kwargs = _resolve_target(args.target,
                                                    fixed=args.fixed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            kernel = registry.get(args.target)
        except KeyError:
            kernel = None
        if kernel is not None and not args.fixed:
            oracle = kernel.manifested
        if kernel is not None and args.seed is None:
            # Scan for a passing run: the adversarial input for a
            # predictor is a trace where nothing went wrong.
            report, seed = predict_kernel(kernel, fixed=args.fixed,
                                          runs=args.runs)
            report.target = name
        else:
            seed = args.seed if args.seed is not None else 0
            result = run(program, seed=seed, **kwargs)
            report = predict(result, target=name)

    if args.triage:
        verdict = TriageVerdict(target=report.target,
                                needs_search=report.found,
                                families=tuple(sorted(report.by_family())),
                                report=report,
                                seed=seed if seed is not None else 0)
        if args.json:
            print(json.dumps(verdict.to_dict(), indent=2))
        else:
            print(verdict)
        return 0

    outcomes = None
    if args.confirm and program is not None:
        outcomes = confirm_predictions(report, program, run_kwargs=kwargs,
                                       oracle=oracle,
                                       max_runs=args.max_runs,
                                       jobs=args.jobs)

    if args.json:
        payload = report.to_dict()
        if outcomes is not None:
            payload["confirm"] = [o.to_dict() for o in outcomes]
        print(json.dumps(payload, indent=2))
        return 0

    print(report.render())
    if outcomes is not None:
        print("confirmation (schedule search over the predictions):")
        for outcome in outcomes:
            mark = {True: "CONFIRMED", False: "unconfirmed",
                    None: "no oracle"}[outcome.confirmed]
            line = (f"  [{mark}] {outcome.prediction.family}/"
                    f"{outcome.prediction.rule}")
            if outcome.witness is not None:
                line += f"  witness={outcome.witness}"
            if outcome.runs:
                line += f"  ({outcome.runs} runs)"
            if outcome.note:
                line += f"  -- {outcome.note}"
            print(line)
    return 0


def _cmd_static(args: argparse.Namespace) -> int:
    import os

    from .static import (
        analyze_paths,
        analyze_program,
        build_static_scorecard,
        render_static_scorecard,
        scan_apps,
        scorecard_dict,
        triage_report,
        triage_sweep,
    )

    if args.scorecard:
        rows = build_static_scorecard()
        apps = scan_apps()
        if args.json:
            print(json.dumps(scorecard_dict(rows, apps), indent=2))
        else:
            print(render_static_scorecard(rows, apps))
        bad = any(not r.caught or not r.fixed_ok for r in rows)
        return 1 if bad else 0

    if args.triage and not args.target:
        verdicts = triage_sweep(fixed=args.fixed)
        if args.json:
            print(json.dumps([v.to_dict() for v in verdicts], indent=2))
        else:
            for verdict in verdicts:
                print(verdict)
        return 0

    if not args.target:
        print("error: give a kernel id or source path, or --scorecard",
              file=sys.stderr)
        return 2

    paths = [t for t in args.target if os.path.exists(t)]
    reports = []
    for kid in (t for t in args.target if not os.path.exists(t)):
        try:
            kernel = registry.get(kid)
        except KeyError:
            print(f"error: unknown kernel or path: {kid}", file=sys.stderr)
            return 2
        reports.append(analyze_program(
            kernel, variant="fixed" if args.fixed else "buggy"))
    if paths:
        reports.append(analyze_paths(paths))

    if args.triage:
        verdicts = [triage_report(r) for r in reports]
        if args.json:
            payload = [v.to_dict() for v in verdicts]
            print(json.dumps(payload[0] if len(payload) == 1 else payload,
                             indent=2))
        else:
            for verdict in verdicts:
                print(verdict)
        return 0

    if args.json:
        payload = [r.to_dict() for r in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2))
        return 0
    for report in reports:
        print(report.render())
    return 1 if any(r.found for r in reports) else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import main as bench_main

    forwarded = []
    if args.jobs:
        forwarded += ["--jobs", str(args.jobs)]
    forwarded += ["--repeats", str(args.repeats),
                  "--sweep-seeds", str(args.sweep_seeds)]
    if args.net:
        forwarded.append("--net")
    if args.recovery:
        forwarded.append("--recovery")
    if args.explore:
        forwarded.append("--explore")
    if args.predict:
        forwarded.append("--predict")
    if args.static:
        forwarded.append("--static")
    if args.baseline:
        forwarded += ["--baseline", args.baseline]
    if args.compare_backends:
        forwarded.append("--compare-backends")
    if args.guard:
        forwarded += ["--guard", args.guard,
                      "--guard-threshold", str(args.guard_threshold)]
    if args.json:
        forwarded.append("--json")
    if args.out:
        forwarded += ["--out", args.out]
    return bench_main(forwarded)


def _cmd_scan(args: argparse.Namespace) -> int:
    findings = scan_paths(args.paths)
    for finding in findings:
        print(finding)
    print(f"{len(findings)} finding(s)")
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Understanding Real-World Concurrency "
                     "Bugs in Go' (ASPLOS 2019)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("report", help="regenerate the paper's evaluation")

    def add_jobs_arg(p):
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for seed sweeps (default: 1 "
                            "for CI reproducibility; any value yields "
                            "identical results)")

    kernels = sub.add_parser("kernels", help="list the bug corpus")
    kernels.add_argument("--blocking", action="store_true")
    kernels.add_argument("--nonblocking", action="store_true")
    kernels.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of text")

    runk = sub.add_parser("run-kernel", help="execute one kernel")
    runk.add_argument("kernel_id")
    runk.add_argument("--seed", type=int, default=0)
    runk.add_argument("--fixed", action="store_true",
                      help="run the fixed variant instead of the buggy one")
    runk.add_argument("--sweep", type=int, metavar="N",
                      help="run seeds 0..N-1 and report the manifestation rate")
    runk.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON instead of text")
    add_jobs_arg(runk)

    detect = sub.add_parser("detect", help="run every detector on a kernel")
    detect.add_argument("kernel_id")
    detect.add_argument("--seed", type=int, default=None)
    detect.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    add_jobs_arg(detect)

    scan = sub.add_parser("scan", help="static loop-capture scan")
    scan.add_argument("paths", nargs="+")

    bench = sub.add_parser(
        "bench", help="simulator performance benchmarks (fast path + sweep "
                      "scaling; see BENCH_simulator.json for the baseline)"
    )
    bench.add_argument("--jobs", type=int, default=0, metavar="N",
                       help="workers for the sweep benchmark "
                            "(default: all cpus)")
    bench.add_argument("--repeats", type=int, default=3, metavar="N",
                       help="timing repeats per workload (default: 3)")
    bench.add_argument("--sweep-seeds", type=int, default=64, metavar="N",
                       help="seeds in the sweep benchmark (default: 64)")
    bench.add_argument("--explore", action="store_true",
                       help="run only the exploration-pruning benchmarks")
    bench.add_argument("--predict", action="store_true",
                       help="run the predictive-analysis benchmarks instead "
                            "(scorecard vs dynamic detectors + triage "
                            "savings; baseline: BENCH_predict.json)")
    bench.add_argument("--static", action="store_true",
                       help="run the static-analysis benchmarks instead "
                            "(scorecard vs ground-truth labels + triage "
                            "savings; baseline: BENCH_static.json)")
    bench.add_argument("--baseline", metavar="FILE",
                       help="print a delta table against a committed "
                            "benchmark document")
    bench.add_argument("--recovery", action="store_true",
                       help="run the crash-recovery benchmarks instead "
                            "(verdicts + recovery-time distributions under "
                            "crash faults)")
    bench.add_argument("--net", action="store_true",
                       help="run the network benchmarks instead (fabric "
                            "round trips, RPC echo, loadgen throughput; "
                            "baseline: BENCH_net.json)")
    bench.add_argument("--compare-backends", action="store_true",
                       help="also time each workload on the thread backend "
                            "and check digest equality vs the coroutine "
                            "core (adds a 'backends' section)")
    bench.add_argument("--guard", metavar="FILE",
                       help="exit 1 if any fast/traced cell dropped more "
                            "than --guard-threshold vs FILE")
    bench.add_argument("--guard-threshold", type=float, default=20.0,
                       metavar="PCT",
                       help="regression threshold for --guard, percent "
                            "(default: 20)")
    bench.add_argument("--json", action="store_true",
                       help="print the JSON document instead of the table")
    bench.add_argument("--out", metavar="FILE",
                       help="also write the JSON document to FILE")

    explore = sub.add_parser(
        "explore", aliases=["explore-systematic"],
        help="systematically enumerate a kernel's schedules"
    )
    explore.add_argument("kernel_id")
    explore.add_argument("--max-runs", type=int, default=500)
    explore.add_argument("--fixed", action="store_true")
    explore.add_argument("--stats", action="store_true",
                         help="print work accounting: runs executed vs "
                              "pruned vs memoized, tree depth, wall time")
    explore.add_argument("--no-prune", action="store_true",
                         help="disable sleep-set schedule-equivalence "
                              "pruning (explore the raw tree)")
    explore.add_argument("--no-memo", action="store_true",
                         help="disable the cross-run schedule memo")
    explore.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of text")
    add_jobs_arg(explore)

    export = sub.add_parser(
        "export", help="write tables/figures as TSV/JSON artifacts"
    )
    export.add_argument("directory")

    usage = sub.add_parser(
        "usage", help="Table 2/4-style concurrency profile of a package"
    )
    usage.add_argument("paths", nargs="+")

    chaos = sub.add_parser(
        "chaos", help="fault-injection sweep with a resilience scorecard"
    )
    chaos.add_argument("--apps", action="store_true",
                       help="sweep the six hardened mini-app workloads")
    chaos.add_argument("--net-apps", action="store_true",
                       help="sweep the multi-node cluster workloads "
                            "(default plan: partition)")
    chaos.add_argument("--recovery", action="store_true",
                       help="sweep the supervised crash-recovery cluster "
                            "workloads (convergence verdicts in the "
                            "scorecard; default plans: crash-restart and "
                            "crash-storm)")
    chaos.add_argument("--kernel", action="append", metavar="ID",
                       help="also sweep this bug kernel (repeatable)")
    chaos.add_argument("--fixed", action="store_true",
                       help="use the fixed variant of --kernel targets")
    chaos.add_argument("--seeds", type=int, default=10, metavar="N",
                       help="seeds 0..N-1 per cell (default: 10)")
    chaos.add_argument("--plan", action="append", metavar="NAME",
                       help="named plan from the registry (repeatable; "
                            "default: the perturbation suite)")
    chaos.add_argument("--plan-file", action="append", metavar="PATH",
                       help="load a serialized FaultPlan from a JSON file")
    chaos.add_argument("--no-baseline", action="store_true",
                       help="skip the no-faults baseline column")
    chaos.add_argument("--list-plans", action="store_true",
                       help="list registered plan names and exit")
    chaos.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")
    chaos.add_argument("--observe", action="store_true",
                       help="attach an observer to every run and add "
                            "per-cell metrics columns to the scorecard")
    add_jobs_arg(chaos)

    net_demo = sub.add_parser(
        "net-demo",
        help="3-node minietcd cluster over the simulated network, with "
             "fabric stats and determinism digests",
    )
    net_demo.add_argument("--seed", type=int, default=0,
                          help="scheduler seed (default: 0)")
    net_demo.add_argument("--seeds", type=int, default=0, metavar="N",
                          help="sweep seeds 0..N-1 instead of one --seed run")
    net_demo.add_argument("--plan", metavar="NAME",
                          help="inject a named fault plan (e.g. partition, "
                               "slow-links; see `repro chaos --list-plans`)")
    net_demo.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON instead of text")
    add_jobs_arg(net_demo)

    loadgen = sub.add_parser(
        "loadgen",
        help="virtual-time load generator against the echo service",
    )
    loadgen.add_argument("--clients", type=int, default=8, metavar="N",
                         help="concurrent simulated clients (default: 8)")
    loadgen.add_argument("--requests", type=int, default=100, metavar="N",
                         help="requests per client (default: 100)")
    loadgen.add_argument("--rate", type=float, default=200.0, metavar="R",
                         help="mean requests per virtual second per client; "
                              "0 = closed loop (default: 200)")
    loadgen.add_argument("--arrival", choices=("poisson", "uniform"),
                         default="poisson",
                         help="arrival process (default: poisson)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="scheduler seed (default: 0)")
    loadgen.add_argument("--seeds", type=int, default=0, metavar="N",
                         help="sweep seeds 0..N-1 instead of one --seed run")
    loadgen.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of text")
    add_jobs_arg(loadgen)

    def add_target_args(p, seed_help="scheduler seed (default: 0)"):
        p.add_argument("target",
                       help="kernel id (see `repro kernels`) or app "
                            "scenario name (e.g. app:minietcd)")
        p.add_argument("--seed", type=int, default=0, help=seed_help)
        p.add_argument("--fixed", action="store_true",
                       help="use the fixed variant of a kernel target")

    profile = sub.add_parser(
        "profile",
        help="goroutine/block/mutex profiles + metrics for one observed run",
    )
    add_target_args(profile)
    profile.add_argument("--top", type=int, default=10, metavar="N",
                         help="rows per profile table (default: 10)")
    profile.add_argument("--flame", action="store_true",
                         help="also render the blocked-time text flamegraph")
    profile.add_argument("--no-sites", action="store_true",
                         help="skip call-site capture (faster, coarser)")
    profile.add_argument("--json", action="store_true",
                         help="emit the stable JSON dump instead of text")

    trace_export = sub.add_parser(
        "trace-export",
        help="export one run as Chrome trace_event JSON (about:tracing)",
    )
    add_target_args(trace_export)
    trace_export.add_argument("-o", "--output", metavar="FILE",
                              help="write to FILE instead of stdout")
    trace_export.add_argument("--indent", type=int, default=None,
                              help="pretty-print with this indent")
    trace_export.add_argument("--memory", action="store_true",
                              help="include MEM_READ/MEM_WRITE instants")
    trace_export.add_argument("--sync", action="store_true",
                              help="write the sync-event stream consumed "
                                   "by `repro predict` instead of the "
                                   "Chrome trace")

    tl = sub.add_parser(
        "timeline", help="per-goroutine ASCII lane diagram of one run"
    )
    add_target_args(tl)
    tl.add_argument("--width", type=int, default=100,
                    help="max lane width in characters (default: 100)")
    tl.add_argument("--memory", action="store_true",
                    help="include modelled memory accesses in the lanes")

    predictp = sub.add_parser(
        "predict",
        help="offline predictive analysis of one recorded run",
    )
    predictp.add_argument("target",
                          help="kernel id, app scenario, or path to a "
                               "sync-event JSON file written by "
                               "`repro trace-export --sync`")
    predictp.add_argument("--fixed", action="store_true",
                          help="analyze the kernel's fixed variant")
    predictp.add_argument("--seed", type=int, default=None,
                          help="record this exact seed instead of "
                               "scanning for a passing run")
    predictp.add_argument("--runs", type=int, default=25,
                          help="seeds scanned for a passing (adversarial) "
                               "run when --seed is not given (default: 25)")
    predictp.add_argument("--confirm", action="store_true",
                          help="search schedules for a replayable witness "
                               "behind every prediction")
    predictp.add_argument("--max-runs", type=int, default=300,
                          help="schedule-search budget per prediction "
                               "for --confirm (default: 300)")
    predictp.add_argument("--triage", action="store_true",
                          help="print only the needs-schedule-search "
                               "verdict (the explore pre-filter)")
    predictp.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON instead of text")
    add_jobs_arg(predictp)

    staticp = sub.add_parser(
        "static",
        help="whole-program static analysis (no execution at all)",
    )
    staticp.add_argument("target", nargs="*",
                         help="kernel ids (summary-model analysis) and/or "
                              "source paths (module-mode scan); omit with "
                              "--scorecard or --triage for the full corpus")
    staticp.add_argument("--fixed", action="store_true",
                         help="analyze kernels' fixed variants")
    staticp.add_argument("--scorecard", action="store_true",
                         help="scan every kernel (both variants) plus the "
                              "mini-apps and score against the ground-truth "
                              "taxonomy labels; exit 1 on a miss or false "
                              "positive")
    staticp.add_argument("--triage", action="store_true",
                         help="print needs-schedule-search verdicts (the "
                              "sweep-queue pre-filter; whole corpus when no "
                              "target is given)")
    staticp.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of text")

    return parser


_COMMANDS = {
    "report": _cmd_report,
    "kernels": _cmd_kernels,
    "run-kernel": _cmd_run_kernel,
    "detect": _cmd_detect,
    "scan": _cmd_scan,
    "bench": _cmd_bench,
    "explore": _cmd_explore,
    "explore-systematic": _cmd_explore,
    "export": _cmd_export,
    "usage": _cmd_usage,
    "chaos": _cmd_chaos,
    "net-demo": _cmd_net_demo,
    "loadgen": _cmd_loadgen,
    "profile": _cmd_profile,
    "trace-export": _cmd_trace_export,
    "timeline": _cmd_timeline,
    "predict": _cmd_predict,
    "static": _cmd_static,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
