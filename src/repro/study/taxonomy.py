"""Taxonomy aggregation: slice the dataset the way the paper's tables do."""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..dataset.records import (
    App,
    Behavior,
    BlockingSubCause,
    BugRecord,
    Cause,
    FixStrategy,
    NonBlockingSubCause,
)


def behavior_cause_matrix(records: Sequence[BugRecord]
                          ) -> "OrderedDict[App, Tuple[int, int, int, int]]":
    """Table 5 rows: app -> (blocking, non-blocking, shared, message)."""
    out: "OrderedDict[App, Tuple[int, int, int, int]]" = OrderedDict()
    for app in App:
        rows = [r for r in records if r.app == app]
        out[app] = (
            sum(r.behavior == Behavior.BLOCKING for r in rows),
            sum(r.behavior == Behavior.NONBLOCKING for r in rows),
            sum(r.cause == Cause.SHARED_MEMORY for r in rows),
            sum(r.cause == Cause.MESSAGE_PASSING for r in rows),
        )
    return out


def blocking_cause_table(records: Sequence[BugRecord]
                         ) -> "OrderedDict[App, Dict[BlockingSubCause, int]]":
    """Table 6: blocking sub-cause counts per application."""
    out: "OrderedDict[App, Dict[BlockingSubCause, int]]" = OrderedDict()
    for app in App:
        counts = Counter(
            r.subcause for r in records
            if r.app == app and r.behavior == Behavior.BLOCKING
        )
        out[app] = {sub: counts.get(sub, 0) for sub in BlockingSubCause}
    return out


def nonblocking_cause_table(records: Sequence[BugRecord]
                            ) -> "OrderedDict[App, Dict[NonBlockingSubCause, int]]":
    """Table 9: non-blocking sub-cause counts per application."""
    out: "OrderedDict[App, Dict[NonBlockingSubCause, int]]" = OrderedDict()
    for app in App:
        counts = Counter(
            r.subcause for r in records
            if r.app == app and r.behavior == Behavior.NONBLOCKING
        )
        out[app] = {sub: counts.get(sub, 0) for sub in NonBlockingSubCause}
    return out


def strategy_matrix(records: Sequence[BugRecord], behavior: Behavior
                    ) -> Dict[object, Dict[FixStrategy, int]]:
    """Tables 7/10: sub-cause -> fix-strategy counts for one behavior."""
    subs = BlockingSubCause if behavior == Behavior.BLOCKING else NonBlockingSubCause
    out: Dict[object, Dict[FixStrategy, int]] = {}
    for sub in subs:
        rows = [r for r in records if r.behavior == behavior and r.subcause == sub]
        counts = Counter(r.fix_strategy for r in rows)
        out[sub] = {s: counts.get(s, 0) for s in FixStrategy}
    return out


def primitive_use_matrix(records: Sequence[BugRecord]
                         ) -> Dict[NonBlockingSubCause, Counter]:
    """Table 11: sub-cause -> fix-primitive *use* counts (non-blocking)."""
    out: Dict[NonBlockingSubCause, Counter] = {}
    for sub in NonBlockingSubCause:
        out[sub] = Counter(
            prim
            for r in records
            if r.behavior == Behavior.NONBLOCKING and r.subcause == sub
            for prim in r.fix_primitives
        )
    return out


def totals(records: Sequence[BugRecord]) -> Dict[str, int]:
    return {
        "total": len(records),
        "blocking": sum(r.behavior == Behavior.BLOCKING for r in records),
        "nonblocking": sum(r.behavior == Behavior.NONBLOCKING for r in records),
        "shared": sum(r.cause == Cause.SHARED_MEMORY for r in records),
        "message": sum(r.cause == Cause.MESSAGE_PASSING for r in records),
    }
