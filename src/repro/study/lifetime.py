"""Bug life-time analysis (Figure 4).

Life time = time from the commit introducing the buggy code to the commit
fixing it.  The paper's finding: both shared-memory and message-passing
bugs live long (the CDF rises slowly), and reports arrive close to fixes —
the bugs are hard to trigger, not hard to fix.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Sequence, Tuple

from ..dataset.records import BugRecord, Cause


def cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF points ``(value, P[X <= value])``."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def lifetime_cdfs(records: Sequence[BugRecord]
                  ) -> Dict[Cause, List[Tuple[float, float]]]:
    """Figure 4: one CDF per cause dimension."""
    out: Dict[Cause, List[Tuple[float, float]]] = {}
    for cause in Cause:
        days = [r.lifetime_days for r in records if r.cause == cause]
        out[cause] = cdf(days)
    return out


def summary(records: Sequence[BugRecord]) -> Dict[Cause, Dict[str, float]]:
    """Median / mean / share-over-one-year per cause."""
    out: Dict[Cause, Dict[str, float]] = {}
    for cause in Cause:
        days = [r.lifetime_days for r in records if r.cause == cause]
        out[cause] = {
            "count": len(days),
            "median_days": statistics.median(days),
            "mean_days": statistics.fmean(days),
            "share_over_one_year": sum(d > 365 for d in days) / len(days),
        }
    return out


def fraction_under(records: Sequence[BugRecord], cause: Cause,
                   days: float) -> float:
    values = [r.lifetime_days for r in records if r.cause == cause]
    return sum(v <= days for v in values) / len(values)
