"""The *lift* statistic the paper uses for cause/fix correlation.

``lift(A, B) = P(A ∧ B) / (P(A) · P(B))`` over the bug population:
1 means independence; > 1 positive correlation; < 1 negative.

Two population choices, both used by the paper:
* over *bugs* for cause vs. fix strategy (Sections 5.2, 6.2),
* over *primitive uses* for cause vs. fix primitive (Table 11's 2.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..dataset.records import (
    Behavior,
    BugRecord,
    FixPrimitive,
    FixStrategy,
)


@dataclass(frozen=True)
class LiftResult:
    a: str
    b: str
    lift: float
    n_a: int
    n_b: int
    n_ab: int
    population: int

    def __str__(self) -> str:
        return (f"lift({self.a}, {self.b}) = {self.lift:.2f} "
                f"(|A|={self.n_a}, |B|={self.n_b}, |AB|={self.n_ab}, n={self.population})")


def lift(population: Sequence, a_pred: Callable, b_pred: Callable,
         a_name: str = "A", b_name: str = "B") -> LiftResult:
    """Compute lift over an arbitrary population of items."""
    n = len(population)
    n_a = sum(1 for item in population if a_pred(item))
    n_b = sum(1 for item in population if b_pred(item))
    n_ab = sum(1 for item in population if a_pred(item) and b_pred(item))
    if n == 0 or n_a == 0 or n_b == 0:
        value = float("nan")
    else:
        value = (n_ab * n) / (n_a * n_b)
    return LiftResult(a_name, b_name, value, n_a, n_b, n_ab, n)


def cause_strategy_lift(records: Sequence[BugRecord], behavior: Behavior,
                        subcause, strategy: FixStrategy) -> LiftResult:
    """lift(cause category, fix strategy) over the bugs of one behavior."""
    rows = [r for r in records if r.behavior == behavior]
    return lift(
        rows,
        lambda r: r.subcause == subcause,
        lambda r: r.fix_strategy == strategy,
        a_name=str(subcause),
        b_name=str(strategy),
    )


def cause_primitive_lift(records: Sequence[BugRecord], subcause,
                         primitive: FixPrimitive) -> LiftResult:
    """lift(cause, fix primitive) over non-blocking primitive *uses*."""
    uses: List[Tuple[object, FixPrimitive]] = [
        (r.subcause, prim)
        for r in records
        if r.behavior == Behavior.NONBLOCKING
        for prim in r.fix_primitives
    ]
    return lift(
        uses,
        lambda u: u[0] == subcause,
        lambda u: u[1] == primitive,
        a_name=str(subcause),
        b_name=str(primitive),
    )


def all_strategy_lifts(records: Sequence[BugRecord], behavior: Behavior,
                       min_category_size: int = 10,
                       min_strategy_size: int = 5) -> List[LiftResult]:
    """Every (sub-cause, strategy) lift, sorted descending.

    Mirrors the paper's significance handling: categories with at most
    ``min_category_size`` bugs are dropped (Section 5.2 omits categories
    "because of their statistical insignificance"); near-empty strategy
    columns are dropped for the same reason.
    """
    rows = [r for r in records if r.behavior == behavior]
    subs = sorted({r.subcause for r in rows}, key=str)
    results: List[LiftResult] = []
    for sub in subs:
        if sum(r.subcause == sub for r in rows) <= min_category_size:
            continue
        for strategy in FixStrategy:
            result = cause_strategy_lift(records, behavior, sub, strategy)
            if result.n_b >= min_strategy_size and result.n_ab > 0:
                results.append(result)
    return sorted(results, key=lambda r: r.lift, reverse=True)
