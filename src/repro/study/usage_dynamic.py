"""Dynamic goroutine statistics (Table 3).

The paper runs gRPC benchmarks against gRPC-Go and gRPC-C and compares
(a) the number of goroutines created vs. threads created and (b) the
average goroutine/thread lifetime normalized by total program runtime
(gRPC-C threads score 100%: they live for the whole program).

We compute the same statistics from a finished
:class:`~repro.runtime.runtime.RunResult`: every goroutine records its
virtual creation and end times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..runtime.runtime import RunResult, run


@dataclass(frozen=True)
class DynamicStats:
    """Goroutine population statistics for one run."""

    workload: str
    goroutines_created: int
    total_runtime: float
    mean_lifetime: float

    @property
    def normalized_lifetime_pct(self) -> float:
        """Average lifetime as % of total runtime (Table 3's metric)."""
        if self.total_runtime <= 0:
            return 100.0
        return 100.0 * self.mean_lifetime / self.total_runtime

    def __str__(self) -> str:
        return (f"{self.workload}: {self.goroutines_created} goroutines, "
                f"avg lifetime {self.normalized_lifetime_pct:.1f}% of runtime")


def collect(result: RunResult, workload: str = "run") -> DynamicStats:
    """Extract Table 3 statistics from a finished run."""
    lifetimes = []
    end_time = result.end_time
    for g in result.goroutines:
        ended = g.ended_at if g.ended_at is not None else end_time
        lifetimes.append(max(ended - g.created_at, 0.0))
    mean_lifetime = sum(lifetimes) / len(lifetimes) if lifetimes else 0.0
    return DynamicStats(
        workload=workload,
        goroutines_created=len(result.goroutines),
        total_runtime=end_time,
        mean_lifetime=mean_lifetime,
    )


def measure(program: Callable, workload: str, seed: int = 0,
            **run_kwargs) -> DynamicStats:
    """Run a program and collect its dynamic statistics."""
    result = run(program, seed=seed, **run_kwargs)
    if result.status not in ("ok", "leak"):
        raise RuntimeError(f"workload {workload!r} failed: {result}")
    return collect(result, workload)


@dataclass(frozen=True)
class Comparison:
    """One Table 3 row: Go-style vs. C-style on the same workload."""

    workload: str
    go_stats: DynamicStats
    c_stats: DynamicStats

    @property
    def goroutine_thread_ratio(self) -> float:
        return self.go_stats.goroutines_created / max(self.c_stats.goroutines_created, 1)

    def __str__(self) -> str:
        return (f"{self.workload}: goroutines/threads = "
                f"{self.goroutine_thread_ratio:.1f}x, "
                f"Go lifetime {self.go_stats.normalized_lifetime_pct:.1f}% vs "
                f"C {self.c_stats.normalized_lifetime_pct:.1f}%")
