"""The empirical-study pipeline: taxonomy, lift, lifetimes, usage analyzers,
and renderers for every table and figure in the paper's evaluation."""

from . import figures, lifetime, lift, tables, taxonomy, usage_dynamic, usage_static

__all__ = [
    "figures",
    "lifetime",
    "lift",
    "tables",
    "taxonomy",
    "usage_dynamic",
    "usage_static",
]
