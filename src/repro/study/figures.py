"""Data (and ASCII sketches) for the paper's figures 2, 3 and 4."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dataset import go171, usage_history
from ..dataset.records import App, BugRecord, Cause
from . import lifetime as lifetime_mod


def figure2_data() -> Dict[App, List[float]]:
    """Shared-memory primitive proportion per app over time."""
    return {app: usage_history.shared_memory_series(app) for app in App}


def figure3_data() -> Dict[App, List[float]]:
    """Message-passing primitive proportion per app over time."""
    return {app: usage_history.message_passing_series(app) for app in App}


def figure4_data(records: Optional[Sequence[BugRecord]] = None
                 ) -> Dict[Cause, List[Tuple[float, float]]]:
    """Bug life-time CDFs per cause dimension."""
    recs = list(records) if records is not None else go171.load()
    return lifetime_mod.lifetime_cdfs(recs)


def sparkline(series: Sequence[float], width: int = 40) -> str:
    """Tiny ASCII rendering of a series (for terminal reports)."""
    blocks = " .:-=+*#%@"
    if not series:
        return ""
    lo, hi = min(series), max(series)
    span = (hi - lo) or 1.0
    step = max(len(series) // width, 1)
    sampled = list(series)[::step][:width]
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in sampled)


def ascii_cdf(points: Sequence[Tuple[float, float]], width: int = 50,
              label: str = "") -> str:
    """Rough terminal CDF: one row per decile with the day threshold."""
    lines = [f"CDF {label}".rstrip()]
    for decile in range(1, 11):
        p = decile / 10
        threshold = next((v for v, q in points if q >= p), points[-1][0])
        bar = "#" * int(p * width)
        lines.append(f"  P<= {p:0.1f} @ {threshold:8.1f} days |{bar}")
    return "\n".join(lines)
