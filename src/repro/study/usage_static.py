"""Static analysis of Go-concurrency usage in simulator programs.

Regenerates the paper's Section 3 measurements over our six
mini-applications (:mod:`repro.apps`):

* Table 2 — goroutine creation sites (anonymous vs. named) per KLOC,
* Table 4 — concurrency primitive usage proportions,
* Table 1 — lines of code per application.

The analyzer is a two-pass :mod:`ast` walk: pass one records which
variables/attributes are bound to which primitive constructors
(``mu = rt.mutex()``, ``self.events = rt.make_chan(...)``), pass two
attributes operation call sites (``mu.lock()``, ``self.events.send(...)``)
to Table 4's columns, resolving ambiguous method names (``add``, ``wait``,
``done``, ``close``, ``load``…) through the recorded bindings.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

#: Table 4 column names.
COLUMNS = ("Mutex", "atomic", "Once", "WaitGroup", "Cond", "chan", "Misc")

#: Runtime constructor -> Table 4 column.
CONSTRUCTOR_KIND: Dict[str, str] = {
    "mutex": "Mutex",
    "rwmutex": "Mutex",
    "atomic_int": "atomic",
    "atomic_value": "atomic",
    "once": "Once",
    "waitgroup": "WaitGroup",
    "cond": "Cond",
    "make_chan": "chan",
    "nil_chan": "chan",
    "new_timer": "chan",
    "new_ticker": "chan",
    "after": "chan",
    "pipe": "Misc",
    "background": "Misc",
    "with_cancel": "Misc",
    "with_timeout": "Misc",
    "with_value": "Misc",
}

#: Method names that identify a primitive regardless of the receiver.
UNAMBIGUOUS_METHODS: Dict[str, str] = {
    "lock": "Mutex",
    "unlock": "Mutex",
    "rlock": "Mutex",
    "runlock": "Mutex",
    "try_lock": "Mutex",
    "rlocker": "Mutex",
    "send": "chan",
    "recv": "chan",
    "recv_ok": "chan",
    "try_send": "chan",
    "try_recv": "chan",
    "select": "chan",
    "signal": "Cond",
    "broadcast": "Cond",
    "compare_and_swap": "atomic",
    "swap": "atomic",
}

#: Methods attributable only through a known receiver binding.
AMBIGUOUS_METHODS: Dict[str, Tuple[str, ...]] = {
    "add": ("WaitGroup", "atomic"),
    "done": ("WaitGroup",),
    "wait": ("WaitGroup", "Cond"),
    "do": ("Once",),
    "close": ("chan",),
    "load": ("atomic",),
    "store": ("atomic",),
}


@dataclass
class GoSite:
    """One goroutine creation site (a ``.go(...)`` call)."""

    path: str
    line: int
    anonymous: bool


@dataclass
class AppUsage:
    """Static usage profile of one application package."""

    name: str
    loc: int = 0
    files: int = 0
    go_sites: List[GoSite] = field(default_factory=list)
    primitives: Counter = field(default_factory=Counter)

    @property
    def creation_sites(self) -> int:
        return len(self.go_sites)

    @property
    def anonymous_sites(self) -> int:
        return sum(site.anonymous for site in self.go_sites)

    @property
    def named_sites(self) -> int:
        return self.creation_sites - self.anonymous_sites

    @property
    def sites_per_kloc(self) -> float:
        return self.creation_sites / (self.loc / 1000.0) if self.loc else 0.0

    @property
    def total_primitives(self) -> int:
        return sum(self.primitives.values())

    @property
    def primitives_per_kloc(self) -> float:
        return self.total_primitives / (self.loc / 1000.0) if self.loc else 0.0

    def proportions(self) -> Dict[str, float]:
        """Table 4 row: percent of each column over all primitive usages."""
        total = self.total_primitives
        if total == 0:
            return {col: 0.0 for col in COLUMNS}
        return {col: 100.0 * self.primitives.get(col, 0) / total for col in COLUMNS}

    def shared_memory_share(self) -> float:
        """Fraction of usages that are shared-memory primitives."""
        props = self.proportions()
        return sum(props[c] for c in ("Mutex", "atomic", "Once", "WaitGroup", "Cond")) / 100.0


def count_loc(source: str) -> int:
    """Non-blank, non-comment source lines."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


class _BindingCollector(ast.NodeVisitor):
    """Pass one: map variable/attribute names to primitive kinds."""

    def __init__(self, bindings: Dict[str, str]):
        self.bindings = bindings

    def visit_Assign(self, node: ast.Assign) -> None:
        kind = _constructor_kind(node.value)
        if kind is not None:
            for target in node.targets:
                for name in _target_names(target):
                    self.bindings[name] = kind
        # Tuple targets for `pr, pw = rt.pipe()` keep the Misc kind.
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        kind = _constructor_kind(node.value) if node.value else None
        if kind is not None:
            for name in _target_names(node.target):
                self.bindings[name] = kind
        self.generic_visit(node)


def _constructor_kind(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return CONSTRUCTOR_KIND.get(node.func.attr)
    return None


def _target_names(target: ast.AST) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Attribute):
        return [target.attr]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


def _receiver_name(func: ast.Attribute) -> Optional[str]:
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


class _UsageCounter(ast.NodeVisitor):
    """Pass two: count goroutine creation sites and primitive operations."""

    def __init__(self, usage: AppUsage, bindings: Dict[str, str], path: str):
        self.usage = usage
        self.bindings = bindings
        self.path = path
        self._local_defs: Dict[str, bool] = {}  # fn name -> defined locally?
        self._depth = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._local_defs[node.name] = self._depth > 0
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            method = func.attr
            if method == "go":
                self._record_go_site(node)
            else:
                self._record_primitive(func, method)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        # `with mu:` is a lock+unlock pair on a known primitive.
        for item in node.items:
            expr = item.context_expr
            name = None
            if isinstance(expr, ast.Name):
                name = expr.id
            elif isinstance(expr, ast.Attribute):
                name = expr.attr
            if name is not None and self.bindings.get(name) == "Mutex":
                self.usage.primitives["Mutex"] += 2
        self.generic_visit(node)

    def _record_go_site(self, node: ast.Call) -> None:
        anonymous = False
        if node.args:
            target = node.args[0]
            if isinstance(target, ast.Lambda):
                anonymous = True
            elif isinstance(target, ast.Name):
                anonymous = self._local_defs.get(target.id, True)
        self.usage.go_sites.append(
            GoSite(path=self.path, line=node.lineno, anonymous=anonymous)
        )

    def _record_primitive(self, func: ast.Attribute, method: str) -> None:
        if method in CONSTRUCTOR_KIND:
            self.usage.primitives[CONSTRUCTOR_KIND[method]] += 1
            return
        if method in UNAMBIGUOUS_METHODS:
            self.usage.primitives[UNAMBIGUOUS_METHODS[method]] += 1
            return
        candidates = AMBIGUOUS_METHODS.get(method)
        if not candidates:
            return
        receiver = _receiver_name(func)
        kind = self.bindings.get(receiver) if receiver else None
        if kind in candidates:
            self.usage.primitives[kind] += 1
        elif len(candidates) == 1:
            # e.g. `.done()` is only WaitGroup among primitives — but
            # context's done() channel getter collides; require a binding
            # mismatch check: skip when the receiver is a known non-match.
            if kind is None:
                self.usage.primitives[candidates[0]] += 1


def analyze_source(source: str, path: str = "<string>",
                   usage: Optional[AppUsage] = None,
                   bindings: Optional[Dict[str, str]] = None) -> AppUsage:
    """Analyze one module's source."""
    if usage is None:
        usage = AppUsage(name=path)
    if bindings is None:
        bindings = {}
    tree = ast.parse(source, filename=path)
    _BindingCollector(bindings).visit(tree)
    _UsageCounter(usage, bindings, path).visit(tree)
    usage.loc += count_loc(source)
    usage.files += 1
    return usage


def analyze_package(package_dir: Union[str, Path], name: Optional[str] = None
                    ) -> AppUsage:
    """Analyze every ``*.py`` file under a directory as one application."""
    package_dir = Path(package_dir)
    usage = AppUsage(name=name or package_dir.name)
    bindings: Dict[str, str] = {}
    files = sorted(package_dir.rglob("*.py"))
    # Pass one over the whole package first so cross-module attribute
    # bindings (self.mu assigned in one file, used in another) resolve.
    trees = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(file))
        _BindingCollector(bindings).visit(tree)
        trees.append((file, source, tree))
    for file, source, tree in trees:
        _UsageCounter(usage, bindings, str(file)).visit(tree)
        usage.loc += count_loc(source)
        usage.files += 1
    return usage
