"""Plain-text renderers for every table in the paper's evaluation.

Each ``tableN`` function takes the dataset (defaulting to
:func:`repro.dataset.go171.load`) and returns the formatted table; the
benchmarks print them next to the paper's published values.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..dataset import go171
from ..dataset.records import (
    App,
    Behavior,
    BlockingSubCause,
    BugRecord,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
)
from . import lift as lift_mod
from . import taxonomy

STRATEGIES = (FixStrategy.ADD_SYNC, FixStrategy.MOVE_SYNC, FixStrategy.CHANGE_SYNC,
              FixStrategy.REMOVE_SYNC, FixStrategy.BYPASS, FixStrategy.PRIVATIZE,
              FixStrategy.MISC)


def render(headers: Sequence[str], rows: Iterable[Sequence[object]],
           title: Optional[str] = None) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _records(records: Optional[Sequence[BugRecord]]) -> List[BugRecord]:
    return list(records) if records is not None else go171.load()


def table5(records: Optional[Sequence[BugRecord]] = None) -> str:
    """Taxonomy: behavior and cause per application."""
    recs = _records(records)
    matrix = taxonomy.behavior_cause_matrix(recs)
    rows = [[str(app), b, nb, sm, mp] for app, (b, nb, sm, mp) in matrix.items()]
    t = taxonomy.totals(recs)
    rows.append(["Total", t["blocking"], t["nonblocking"], t["shared"], t["message"]])
    return render(
        ["Application", "blocking", "non-blocking", "shared memory", "message passing"],
        rows,
        title="Table 5. Taxonomy",
    )


def table6(records: Optional[Sequence[BugRecord]] = None) -> str:
    """Blocking bug causes per application."""
    recs = _records(records)
    matrix = taxonomy.blocking_cause_table(recs)
    rows = []
    for app, counts in matrix.items():
        rows.append([str(app)] + [counts[sub] for sub in BlockingSubCause])
    rows.append(["Total"] + [
        sum(matrix[app][sub] for app in matrix) for sub in BlockingSubCause
    ])
    return render(
        ["Application"] + [str(s) for s in BlockingSubCause],
        rows,
        title="Table 6. Blocking bug causes",
    )


def _strategy_table(records: Sequence[BugRecord], behavior: Behavior,
                    title: str) -> str:
    matrix = taxonomy.strategy_matrix(records, behavior)
    used = [s for s in STRATEGIES
            if any(matrix[sub].get(s, 0) for sub in matrix)]
    rows = []
    for sub, counts in matrix.items():
        rows.append([str(sub)] + [counts.get(s, 0) for s in used]
                    + [sum(counts.values())])
    rows.append(
        ["Total"]
        + [sum(matrix[sub].get(s, 0) for sub in matrix) for s in used]
        + [sum(sum(c.values()) for c in matrix.values())]
    )
    return render(["Root cause"] + [str(s) for s in used] + ["Total"], rows,
                  title=title)


def table7(records: Optional[Sequence[BugRecord]] = None) -> str:
    """Fix strategies for blocking bugs (+ the headline lifts)."""
    recs = _records(records)
    body = _strategy_table(recs, Behavior.BLOCKING,
                           "Table 7. Fix strategies for blocking bugs")
    lifts = [
        lift_mod.cause_strategy_lift(recs, Behavior.BLOCKING,
                                     BlockingSubCause.MUTEX, FixStrategy.MOVE_SYNC),
        lift_mod.cause_strategy_lift(recs, Behavior.BLOCKING,
                                     BlockingSubCause.CHAN, FixStrategy.ADD_SYNC),
    ]
    return body + "\n" + "\n".join(str(l) for l in lifts)


def table9(records: Optional[Sequence[BugRecord]] = None) -> str:
    """Non-blocking bug causes per application."""
    recs = _records(records)
    matrix = taxonomy.nonblocking_cause_table(recs)
    rows = []
    for app, counts in matrix.items():
        rows.append([str(app)] + [counts[sub] for sub in NonBlockingSubCause])
    rows.append(["Total"] + [
        sum(matrix[app][sub] for app in matrix) for sub in NonBlockingSubCause
    ])
    return render(
        ["Application"] + [str(s) for s in NonBlockingSubCause],
        rows,
        title="Table 9. Non-blocking bug causes",
    )


def table10(records: Optional[Sequence[BugRecord]] = None) -> str:
    """Fix strategies for non-blocking bugs (+ the timing share)."""
    recs = _records(records)
    body = _strategy_table(recs, Behavior.NONBLOCKING,
                           "Table 10. Fix strategies for non-blocking bugs")
    nonblocking = [r for r in recs if r.behavior == Behavior.NONBLOCKING]
    timing = sum(r.fix_strategy in (FixStrategy.ADD_SYNC, FixStrategy.MOVE_SYNC,
                                    FixStrategy.CHANGE_SYNC)
                 for r in nonblocking)
    share = 100.0 * timing / len(nonblocking)
    return body + f"\ntiming-restricting fixes: {timing}/{len(nonblocking)} = {share:.0f}%"


def table11(records: Optional[Sequence[BugRecord]] = None) -> str:
    """Fix primitives in non-blocking patches (+ the headline lifts)."""
    recs = _records(records)
    matrix = taxonomy.primitive_use_matrix(recs)
    prims = list(FixPrimitive)
    rows = []
    for sub, counts in matrix.items():
        rows.append([str(sub)] + [counts.get(p, 0) for p in prims])
    rows.append(["Total"] + [
        sum(matrix[sub].get(p, 0) for sub in matrix) for p in prims
    ])
    body = render(["Root cause"] + [str(p) for p in prims], rows,
                  title="Table 11. Fix primitives for non-blocking bugs")
    lifts = [
        lift_mod.cause_primitive_lift(recs, NonBlockingSubCause.CHAN,
                                      FixPrimitive.CHANNEL),
        lift_mod.cause_strategy_lift(recs, Behavior.NONBLOCKING,
                                     NonBlockingSubCause.ANONYMOUS_FUNCTION,
                                     FixStrategy.PRIVATIZE),
        lift_mod.cause_strategy_lift(recs, Behavior.NONBLOCKING,
                                     NonBlockingSubCause.CHAN,
                                     FixStrategy.MOVE_SYNC),
    ]
    return body + "\n" + "\n".join(str(l) for l in lifts)
