"""Machine-readable exports of every table and figure.

Downstream users (plotting scripts, dashboards, other studies) should not
scrape ASCII tables; this module writes the underlying data as JSON and
TSV into a directory:

    from repro.study.export import export_all
    files = export_all("out/")

or ``python -m repro export out/``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..dataset import go171, usage_history
from ..dataset.records import (
    App,
    Behavior,
    BlockingSubCause,
    BugRecord,
    Cause,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
)
from . import lifetime, taxonomy


def _write_tsv(path: Path, headers: Sequence[str],
               rows: Sequence[Sequence[object]]) -> None:
    lines = ["\t".join(headers)]
    lines += ["\t".join(str(cell) for cell in row) for row in rows]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def export_records(records: Sequence[BugRecord], out: Path) -> Path:
    """The full 171-bug dataset as JSON."""
    payload = [
        {
            "bug_id": r.bug_id,
            "app": r.app.value,
            "behavior": r.behavior.value,
            "cause": r.cause.value,
            "subcause": str(r.subcause),
            "fix_strategy": str(r.fix_strategy),
            "fix_primitives": [str(p) for p in r.fix_primitives],
            "lifetime_days": r.lifetime_days,
            "report_lag_days": r.report_lag_days,
            "patch_lines": r.patch_lines,
            "reconstructed": r.reconstructed,
            "figure": r.figure,
            "description": r.description,
        }
        for r in records
    ]
    path = out / "go171.json"
    path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    return path


def export_table5(records: Sequence[BugRecord], out: Path) -> Path:
    matrix = taxonomy.behavior_cause_matrix(records)
    rows = [[app.value, *cells] for app, cells in matrix.items()]
    path = out / "table5_taxonomy.tsv"
    _write_tsv(path, ["app", "blocking", "nonblocking", "shared", "message"], rows)
    return path


def export_table6(records: Sequence[BugRecord], out: Path) -> Path:
    matrix = taxonomy.blocking_cause_table(records)
    headers = ["app"] + [str(s) for s in BlockingSubCause]
    rows = [[app.value] + [cells[s] for s in BlockingSubCause]
            for app, cells in matrix.items()]
    path = out / "table6_blocking_causes.tsv"
    _write_tsv(path, headers, rows)
    return path


def export_table9(records: Sequence[BugRecord], out: Path) -> Path:
    matrix = taxonomy.nonblocking_cause_table(records)
    headers = ["app"] + [str(s) for s in NonBlockingSubCause]
    rows = [[app.value] + [cells[s] for s in NonBlockingSubCause]
            for app, cells in matrix.items()]
    path = out / "table9_nonblocking_causes.tsv"
    _write_tsv(path, headers, rows)
    return path


def export_strategies(records: Sequence[BugRecord], behavior: Behavior,
                      filename: str, out: Path) -> Path:
    matrix = taxonomy.strategy_matrix(records, behavior)
    headers = ["subcause"] + [str(s) for s in FixStrategy]
    rows = [[str(sub)] + [cells[s] for s in FixStrategy]
            for sub, cells in matrix.items()]
    path = out / filename
    _write_tsv(path, headers, rows)
    return path


def export_table11(records: Sequence[BugRecord], out: Path) -> Path:
    matrix = taxonomy.primitive_use_matrix(records)
    headers = ["subcause"] + [str(p) for p in FixPrimitive]
    rows = [[str(sub)] + [counts.get(p, 0) for p in FixPrimitive]
            for sub, counts in matrix.items()]
    path = out / "table11_fix_primitives.tsv"
    _write_tsv(path, headers, rows)
    return path


def export_figure4(records: Sequence[BugRecord], out: Path) -> Path:
    cdfs = lifetime.lifetime_cdfs(records)
    rows: List[List[object]] = []
    for cause, points in cdfs.items():
        for days, quantile in points:
            rows.append([cause.value, days, round(quantile, 6)])
    path = out / "figure4_lifetime_cdf.tsv"
    _write_tsv(path, ["cause", "lifetime_days", "cdf"], rows)
    return path


def export_figures23(out: Path) -> Path:
    rows: List[List[object]] = []
    for app in App:
        shared = usage_history.shared_memory_series(app)
        for snapshot, value in zip(usage_history.SNAPSHOTS, shared):
            rows.append([app.value, snapshot, value, round(1 - value, 4)])
    path = out / "figures23_usage_series.tsv"
    _write_tsv(path, ["app", "month", "shared_share", "message_share"], rows)
    return path


def export_kernels(out: Path) -> Path:
    from ..bugs import registry

    payload = [
        {
            "kernel_id": k.meta.kernel_id,
            "title": k.meta.title,
            "app": k.meta.app.value,
            "behavior": k.meta.behavior.value,
            "cause": k.meta.cause.value,
            "subcause": str(k.meta.subcause),
            "fix_strategy": str(k.meta.fix_strategy),
            "fix_primitives": [str(p) for p in k.meta.fix_primitives],
            "symptom": k.meta.symptom,
            "figure": k.meta.figure,
            "reproduced": k.meta.reproduced,
            "deterministic": k.meta.deterministic,
            "bug_url": k.meta.bug_url,
        }
        for k in registry.all_kernels()
    ]
    path = out / "kernels.json"
    path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    return path


def export_all(directory: Union[str, Path],
               records: Optional[Sequence[BugRecord]] = None) -> List[Path]:
    """Write every artifact; returns the created paths."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    recs = list(records) if records is not None else go171.load()
    return [
        export_records(recs, out),
        export_table5(recs, out),
        export_table6(recs, out),
        export_strategies(recs, Behavior.BLOCKING,
                          "table7_blocking_fixes.tsv", out),
        export_table9(recs, out),
        export_strategies(recs, Behavior.NONBLOCKING,
                          "table10_nonblocking_fixes.tsv", out),
        export_table11(recs, out),
        export_figure4(recs, out),
        export_figures23(out),
        export_kernels(out),
    ]
