"""One-call study report: the paper's evaluation as a terminal document."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..dataset import go171, usage_history
from ..dataset.records import (
    App,
    Behavior,
    BugRecord,
    Cause,
    FixStrategy,
    TIMING_STRATEGIES,
)
from . import figures, lifetime, tables


def dataset_header(records: Sequence[BugRecord]) -> str:
    seeded = sum(not r.reconstructed for r in records)
    return (f"dataset: {len(records)} bugs ({seeded} seeded from named "
            f"paper bugs, the rest reconstructed to the published marginals)")


def tables_section(records: Sequence[BugRecord]) -> str:
    parts = [
        tables.table5(records),
        tables.table6(records),
        tables.table7(records),
        tables.table9(records),
        tables.table10(records),
        tables.table11(records),
    ]
    return "\n\n".join(parts)


def figure4_section(records: Sequence[BugRecord]) -> str:
    lines = ["Figure 4: bug life time"]
    summary = lifetime.summary(records)
    for cause in Cause:
        stats = summary[cause]
        lines.append(f"   {cause}: median {stats['median_days']:.0f} days, "
                     f"{stats['share_over_one_year']:.0%} live over a year")
    return "\n".join(lines)


def figures23_section() -> str:
    lines = ["Figures 2/3: usage stability (max deviation from mean share)"]
    for app in App:
        series = usage_history.shared_memory_series(app)
        lines.append(f"   {str(app):<12} {figures.sparkline(series, 32)}  "
                     f"dev={usage_history.stability(series):.3f}")
    return "\n".join(lines)


def headline_findings(records: Sequence[BugRecord]) -> str:
    blocking = [r for r in records if r.behavior == Behavior.BLOCKING]
    nonblocking = [r for r in records if r.behavior == Behavior.NONBLOCKING]
    mp_blocking = sum(r.cause == Cause.MESSAGE_PASSING for r in blocking)
    sm_nonblocking = sum(r.cause == Cause.SHARED_MEMORY for r in nonblocking)
    timing = sum(r.fix_strategy in TIMING_STRATEGIES for r in nonblocking)
    sync_adjust = sum(r.fix_strategy != FixStrategy.MISC for r in blocking)
    mean_patch = sum(r.patch_lines for r in blocking) / len(blocking)
    return "\n".join([
        "headline findings, regenerated:",
        f"   Observation 3: {mp_blocking}/{len(blocking)} "
        f"({mp_blocking / len(blocking):.0%}) of blocking bugs are "
        f"message passing (paper ~58%)",
        f"   Observation 8: {sm_nonblocking}/{len(nonblocking)} "
        f"({sm_nonblocking / len(nonblocking):.0%}) of non-blocking bugs "
        f"are shared memory (paper ~80%)",
        f"   Section 5.2: {sync_adjust / len(blocking):.0%} of blocking "
        f"fixes adjust synchronization; mean patch {mean_patch:.1f} lines",
        f"   Table 10: {timing / len(nonblocking):.0%} of non-blocking "
        f"fixes restrict timing (paper ~69%)",
    ])


def full_report(records: Optional[Sequence[BugRecord]] = None) -> str:
    """The whole evaluation as one string."""
    recs = list(records) if records is not None else go171.load()
    go171.validate(recs)
    sections = [
        dataset_header(recs),
        tables_section(recs),
        figure4_section(recs),
        figures23_section(),
        headline_findings(recs),
    ]
    return "\n\n".join(sections)
