"""Pre-filtering sweeps: does this target even need schedule search?

BinGo's observation (PAPERS.md) applied to the simulator: systematic
exploration is the expensive tier, so screen with the cheap one first.
One recorded run plus the offline predictors is the screen — if nothing
is predicted from the trace, the expensive `explore_systematic` pass is
skipped; if something is, the prediction families tell the sweep what to
search *for*.

The verdict is deliberately one-sided: a clean triage skips work, a
dirty one only redirects it.  Predictions are conservative
(over-approximate), so a skipped target is one where even the relaxed
happens-before order admits none of the modelled bug shapes.

The verdict type itself lives in :mod:`repro.detect.triage` — one shape
shared with the static screen (``repro static --triage``) so the sweep
queue can consume either stream.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from ..detect.triage import TriageVerdict, order_sweep_queue
from .engine import predict

__all__ = ["TriageVerdict", "order_sweep_queue", "triage", "triage_kernel",
           "triage_sweep"]


def triage(program: Callable, target: str = "program", seed: int = 0,
           **run_kwargs: Any) -> TriageVerdict:
    """Record one run of ``program`` and screen it."""
    from ..runtime.runtime import run

    result = run(program, seed=seed, **run_kwargs)
    report = predict(result, target=target)
    return TriageVerdict(
        target=target,
        needs_search=report.found,
        families=tuple(sorted(report.by_family())),
        report=report,
        seed=seed,
        source="predict",
    )


def triage_kernel(kernel: Any, fixed: bool = False,
                  seed: int = 0) -> TriageVerdict:
    """Screen a corpus kernel variant."""
    program = kernel.fixed if fixed else kernel.buggy
    variant = "fixed" if fixed else "buggy"
    return triage(program, target=f"{kernel.meta.kernel_id} ({variant})",
                  seed=seed, **dict(kernel.run_kwargs))


def triage_sweep(targets: List[Tuple[str, Callable, Dict[str, Any]]],
                 seed: int = 0) -> List[TriageVerdict]:
    """Screen many ``(name, program, run_kwargs)`` targets at once."""
    return [triage(program, target=name, seed=seed, **kwargs)
            for name, program, kwargs in targets]
