"""Predicted data races: conflicting accesses unordered by the weak HB.

The live detector (Section 6.3's ``-race``) only flags a race when the
recorded schedule brings two conflicting accesses close enough together
(4 shadow words) and leaves them unordered.  The predictive version asks
a weaker question of the *same single run*: could any feasible
reordering make the accesses concurrent?

Two accesses are reported when they

* touch the same :class:`~repro.sync.shared.SharedVar` from different
  goroutines, at least one writing,
* are unordered by the weak happens-before closure (fork, channel,
  WaitGroup, Once, atomic edges kept; lock and cond scheduling edges
  dropped — see :mod:`repro.predict.hb`), and
* hold no common lock with at least one exclusive holder (mutual
  exclusion permits either order but never overlap, so a common lock is
  the one relaxation the reordering cannot break).

Unlike the live detector there is no shadow-word window: the whole
access history participates, so races the paper's Table 12 blames on
history eviction are still predicted.
"""

from __future__ import annotations

from typing import Dict, List

from ..detect.report import Access, RaceReport
from ..runtime.trace import EventKind
from .hb import Stamp
from .model import SyncTrace


def predict_races(trace: SyncTrace, stamps: List[Stamp],
                  max_reports_per_var: int = 1) -> List[RaceReport]:
    """All predicted races, at most ``max_reports_per_var`` per variable.

    ``stamps`` must come from the *weak* engine
    (:func:`repro.predict.hb.weak_stamps`) over the same ``trace``.
    """
    by_var: Dict[int, List[Stamp]] = {}
    names: Dict[int, str] = {}
    for stamp in stamps:
        e = stamp.event
        if e.kind not in (EventKind.MEM_READ, EventKind.MEM_WRITE):
            continue
        obj = int(e.obj)  # type: ignore[arg-type]
        by_var.setdefault(obj, []).append(stamp)
        name = e.info.get("name")
        if name is not None:
            names[obj] = str(name)

    reports: List[RaceReport] = []
    for obj in sorted(by_var):
        accesses = by_var[obj]
        name = names.get(obj, f"var#{obj}")
        found = 0
        for j in range(len(accesses)):
            if found >= max_reports_per_var:
                break
            second = accesses[j]
            for i in range(j):
                first = accesses[i]
                if first.event.gid == second.event.gid:
                    continue
                if not (_is_write(first) or _is_write(second)):
                    continue
                if not first.concurrent_with(second):
                    continue
                if first.common_exclusive_lock(second) is not None:
                    continue
                reports.append(RaceReport(
                    var_id=obj, var_name=name,
                    first=_access(first), second=_access(second),
                ))
                found += 1
                if found >= max_reports_per_var:
                    break
    return reports


def _is_write(stamp: Stamp) -> bool:
    return stamp.event.kind == EventKind.MEM_WRITE


def _access(stamp: Stamp) -> Access:
    e = stamp.event
    return Access(
        gid=e.gid,
        kind="write" if e.kind == EventKind.MEM_WRITE else "read",
        step=e.step,
        var_name=str(e.info.get("name", f"var#{e.obj}")),
    )
