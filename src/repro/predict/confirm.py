"""Confirming predictions: from offline claim to replayable witness.

A prediction is a claim about schedules that were never run.  This
module cashes the claim in: for each prediction it derives a runtime
predicate (``stop_on``), hands it to
:func:`repro.detect.systematic.explore_systematic` — whose sleep-set
pruning and cross-run memo make the search cheap — and, when the search
finds a counterexample, replays the schedule with
:func:`repro.detect.systematic.replay_schedule` to verify the witness
stands on its own.  The witness (a choice-index prefix) is attached to
the prediction; ``repro predict --confirm`` prints it.

Race predictions need a detector in the loop: the ``observer_factories``
hook builds a fresh unlimited-history
:class:`~repro.detect.race.RaceDetector` per explored run so the
predicate can read ``result.races``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..detect.race import RaceDetector
from ..detect.systematic import explore_systematic, replay_schedule
from .report import Prediction, PredictReport


@dataclass
class ConfirmOutcome:
    """What the schedule search made of one prediction."""

    prediction: Prediction
    confirmed: Optional[bool]      # None = no runtime oracle available
    witness: Optional[List[int]]
    runs: int                      # exploration runs spent (0 if cached)
    replay_status: Optional[str] = None
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "prediction": self.prediction.to_dict(),
            "confirmed": self.confirmed,
            "witness": self.witness,
            "runs": self.runs,
            "replay_status": self.replay_status,
            "note": self.note,
        }


# -- runtime predicates (module-level: picklable for jobs>1) -----------

def _blocking_manifested(result: Any) -> bool:
    return result.status in ("deadlock", "hang") or bool(result.leaked)


def _panic_manifested(result: Any) -> bool:
    return result.status == "panic"


def _race_on_var(var_name: str, result: Any) -> bool:
    races = getattr(result, "races", None) or ()
    return any(r.var_name == var_name for r in races)


def _fresh_race_detector() -> RaceDetector:
    # Unlimited history: the predicted pair must not be lost to the
    # 4-shadow-word eviction the live detector models.
    return RaceDetector(shadow_words=None)


def predicate_for(prediction: Prediction,
                  oracle: Optional[Callable[[Any], bool]] = None
                  ) -> Tuple[Optional[Callable[[Any], bool]],
                             Dict[str, Any], Tuple]:
    """``(stop_on, extra run kwargs, cache key)`` for one prediction.

    ``oracle`` (e.g. a kernel's ``manifested``) takes precedence: it is
    the target's own definition of a real counterexample.  Without one,
    each family falls back to its symptom: blocking families search for
    a deadlock/leak, send-on-closed for a panic, races for a re-detected
    race on the same variable.  ``wg-add-wait-race`` has no generic
    runtime symptom (the damage is a wrong value only the program can
    judge), so without an oracle it returns no predicate.
    """
    if oracle is not None:
        return oracle, {}, ("oracle",)
    family, rule = prediction.family, prediction.rule
    if family == "race":
        name = prediction.payload.var_name if prediction.payload else None
        if name is None:
            return None, {}, ("race", None)
        return (partial(_race_on_var, name),
                {"observer_factories": (_fresh_race_detector,)},
                ("race", name))
    if family == "lockorder":
        return _blocking_manifested, {}, ("blocking",)
    if family == "comm":
        if rule in ("send-on-closed", "double-close"):
            return _panic_manifested, {}, ("panic",)
        if rule in ("lost-signal", "abandoned-sender"):
            return _blocking_manifested, {}, ("blocking",)
        return None, {}, ("comm", rule)
    if family == "blocking":
        if rule == "panic":
            return _panic_manifested, {}, ("panic",)
        return _blocking_manifested, {}, ("blocking",)
    return None, {}, (family, rule)


def confirm_predictions(report: PredictReport, program: Callable,
                        run_kwargs: Optional[Dict[str, Any]] = None,
                        oracle: Optional[Callable[[Any], bool]] = None,
                        max_runs: int = 300,
                        max_branch_depth: int = 400,
                        jobs: int = 1) -> List[ConfirmOutcome]:
    """Search for a witness behind every prediction in ``report``.

    Mutates each prediction's ``witness``/``confirmed`` in place and
    returns per-prediction outcomes.  Predictions sharing a predicate
    (e.g. several stuck goroutines from one deadlock) share one search.
    """
    run_kwargs = dict(run_kwargs or {})
    outcomes: List[ConfirmOutcome] = []
    cache: Dict[Tuple, Tuple[Optional[List[int]], bool, int,
                             Optional[str]]] = {}

    for prediction in report.predictions:
        stop_on, extra, key = predicate_for(prediction, oracle)
        if stop_on is None:
            outcomes.append(ConfirmOutcome(
                prediction, confirmed=None, witness=None, runs=0,
                note="no runtime oracle for this rule; pass the "
                     "target's own manifestation predicate to confirm"))
            continue

        if key in cache:
            witness, ok, runs, status = cache[key]
            runs = 0  # shared search, not re-spent
        else:
            merged = dict(run_kwargs)
            merged.update(extra)
            exploration = explore_systematic(
                program, stop_on=stop_on, max_runs=max_runs,
                max_branch_depth=max_branch_depth, jobs=jobs, **merged)
            witness, ok, status = None, False, None
            if exploration.found:
                witness = list(exploration.counterexample)
                replayed = replay_schedule(program, witness, **merged)
                status = replayed.status
                ok = bool(stop_on(replayed))
            runs = exploration.runs
            cache[key] = (witness, ok, runs, status)

        prediction.confirmed = ok
        prediction.witness = witness if ok else None
        outcomes.append(ConfirmOutcome(
            prediction, confirmed=ok, witness=prediction.witness,
            runs=runs, replay_status=status,
            note="" if ok else "no schedule within budget manifested it"))
    return outcomes
