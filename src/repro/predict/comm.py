"""Communication-misuse predictions: channel, cond, and WaitGroup shapes.

Five rules over the weak happens-before closure of one recorded run:

* **send-on-closed** — a completed ``send`` and a ``close`` on the same
  channel by different goroutines, unordered by the weak closure: some
  feasible reordering runs the close first and the send panics (the
  paper's Section 5/7 misuse; Go's most common non-blocking panic).
  Locks deliberately do *not* suppress this one — mutual exclusion
  permits either order of two critical sections, so a common lock makes
  the panic no less reachable.
* **lost-signal** — a ``cond.signal``/``broadcast`` unordered with a
  ``cond.wait``: reordered, the signal fires before the waiter parks and
  is lost (signals are not sticky), leaving the waiter blocked forever.
  Suppressed when the trace shows the predicate-loop protocol that makes
  the race benign: the waiter re-reads, under the cond's lock and
  *after* its wait, a variable the signaler wrote under the same lock
  before signalling — the re-check loop re-examines the predicate on
  wake, so a missed wakeup cannot strand it.
* **wg-add-wait-race** — a ``wg.Add(+n)`` unordered with a ``wg.Wait``
  on the same WaitGroup (Figure 9): ``Wait`` never waits for ``Add``,
  so a reordering lets ``Wait`` pass before the counter rises.
* **double-close** — a ``close`` guarded by a ``select``-with-default
  "already closed?" check (Figure 10's teardown idiom) while another
  goroutine's identical guard is unordered with the close: both guards
  can pass before either close lands, and the second close panics.
  Suppressed when the close runs inside ``once.Do`` — the committed
  Docker fix.
* **abandoned-sender** — an unbuffered rendezvous whose receive was
  committed by a multi-case ``select`` with *another* case demonstrably
  ready at the commit (a queued value, a close, or a parked sender):
  had the select chosen the other case — a coin flip at runtime — the
  sender would block forever (Figure 1's leaked request handler).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..runtime.trace import EventKind
from .hb import Stamp
from .model import SyncEvent, SyncTrace
from .report import Prediction

_SIGNALS = (EventKind.COND_SIGNAL, EventKind.COND_BROADCAST)


def predict_comm(trace: SyncTrace, stamps: List[Stamp]) -> List[Prediction]:
    """All communication-shape predictions from the weak closure."""
    out: List[Prediction] = []
    out.extend(_send_on_closed(stamps))
    out.extend(_double_closes(stamps))
    out.extend(_abandoned_senders(stamps))
    out.extend(_lost_signals(stamps))
    out.extend(_wg_add_wait(stamps))
    return out


def _send_on_closed(stamps: List[Stamp]) -> List[Prediction]:
    sends: Dict[int, List[Stamp]] = {}
    closes: Dict[int, List[Stamp]] = {}
    for s in stamps:
        if s.event.kind == EventKind.CHAN_SEND:
            sends.setdefault(int(s.event.obj), []).append(s)
        elif s.event.kind == EventKind.CHAN_CLOSE:
            closes.setdefault(int(s.event.obj), []).append(s)

    out: List[Prediction] = []
    for obj in sorted(set(sends) & set(closes)):
        hit = next(
            ((send, close)
             for close in closes[obj] for send in sends[obj]
             if send.concurrent_with(close)),
            None)
        if hit is None:
            continue
        send, close = hit
        out.append(Prediction(
            family="comm", rule="send-on-closed",
            detail=(f"chan#{obj}: send by g{send.event.gid} "
                    f"(step {send.event.step}) is unordered with close by "
                    f"g{close.event.gid} (step {close.event.step}); "
                    "close-first schedules panic"),
            obj=obj,
            gids=(send.event.gid, close.event.gid),
            steps=(send.event.step, close.event.step),
        ))
    return out


_SCHED_NOISE = (EventKind.GO_BLOCK, EventKind.GO_UNBLOCK)


def _stamps_by_gid(stamps: List[Stamp]) -> Dict[int, List[Stamp]]:
    by_gid: Dict[int, List[Stamp]] = {}
    for s in stamps:
        by_gid.setdefault(s.event.gid, []).append(s)
    return by_gid


def _double_closes(stamps: List[Stamp]) -> List[Prediction]:
    by_gid = _stamps_by_gid(stamps)
    # Every select-with-default "already closed?" check, per channel.
    guards: Dict[int, List[Stamp]] = {}
    for s in stamps:
        e = s.event
        if e.kind == EventKind.SELECT_BEGIN and e.info.get("default"):
            for cid in e.info.get("chans", ()):
                guards.setdefault(int(cid), []).append(s)

    out: List[Prediction] = []
    seen: set = set()
    for s in stamps:
        e = s.event
        if e.kind != EventKind.CHAN_CLOSE:
            continue
        obj = int(e.obj)
        if obj in seen:
            continue
        mine = by_gid[e.gid]
        idx = mine.index(s)
        if not _guarded_close(mine, idx, obj):
            continue
        if _once_protected(mine, idx):
            continue
        racer = next(
            (g for g in guards.get(obj, ())
             if g.event.gid != e.gid and g.concurrent_with(s)),
            None)
        if racer is None:
            continue
        seen.add(obj)
        out.append(Prediction(
            family="comm", rule="double-close",
            detail=(f"chan#{obj}: close by g{e.gid} (step {e.step}) is "
                    "guarded by a select-default closed-check, and "
                    f"g{racer.event.gid}'s identical check (step "
                    f"{racer.event.step}) is unordered with the close; "
                    "both guards can pass before either close lands and "
                    "the second close panics (Figure 10)"),
            obj=obj,
            gids=(e.gid, racer.event.gid),
            steps=(e.step, racer.event.step),
        ))
    return out


def _guarded_close(mine: List[Stamp], idx: int, obj: int) -> bool:
    """Was this close immediately preceded by its own default-guard?

    The Figure-10 idiom leaves a footprint in the closer's own event
    sequence: ``SELECT_BEGIN`` (with default, over the closed channel),
    ``SELECT_COMMIT`` choosing the default branch, then the close.
    """
    commit = begin = None
    for s in reversed(mine[:idx]):
        kind = s.event.kind
        if kind in _SCHED_NOISE:
            continue
        if commit is None:
            if kind != EventKind.SELECT_COMMIT:
                return False
            commit = s.event
        elif kind == EventKind.SELECT_BEGIN:
            begin = s.event
            break
    if commit is None or begin is None:
        return False
    return (commit.info.get("chosen") == -1
            and bool(begin.info.get("default"))
            and obj in begin.info.get("chans", ()))


def _once_protected(mine: List[Stamp], idx: int) -> bool:
    """Did the close run inside ``once.Do``?  (The committed fix.)

    ``Once`` emits ``ONCE_DO(ran=True)`` right after the protected
    function returns, so a once-wrapped close is immediately followed,
    in the closer's own sequence, by that event.
    """
    for s in mine[idx + 1:]:
        if s.event.kind in _SCHED_NOISE:
            continue
        return (s.event.kind == EventKind.ONCE_DO
                and bool(s.event.info.get("ran")))
    return False


def _abandoned_senders(stamps: List[Stamp]) -> List[Prediction]:
    by_gid = _stamps_by_gid(stamps)
    out: List[Prediction] = []
    seen: set = set()
    for s in stamps:
        e = s.event
        if e.kind != EventKind.CHAN_RECV:
            continue
        partner = e.info.get("partner")
        if (not e.info.get("sync") or partner is None or partner == 0
                or e.info.get("closed")):
            continue
        obj = int(e.obj)
        if obj in seen:
            continue
        mine = by_gid[e.gid]
        idx = mine.index(s)
        begin = _governing_select(mine, idx, obj)
        if begin is None or begin.info.get("cases", 0) < 2:
            continue
        ready = next(
            ((int(cid), why) for cid in begin.info.get("chans", ())
             if int(cid) != obj
             and (why := _chan_ready_at(int(cid), e.step, stamps, by_gid))),
            None)
        if ready is None:
            continue
        seen.add(obj)
        other, why = ready
        out.append(Prediction(
            family="comm", rule="abandoned-sender",
            detail=(f"chan#{obj}: g{partner}'s unbuffered send "
                    f"(rendezvous at step {e.step}) was received by a "
                    f"{begin.info['cases']}-case select on g{e.gid} with "
                    f"another case already ready ({why} on chan#{other}); "
                    "the alternative commit leaves the sender blocked "
                    "forever (Figure 1)"),
            obj=obj,
            gids=(int(partner), e.gid),
            steps=(e.step,),
        ))
    return out


def _governing_select(mine: List[Stamp], idx: int,
                      obj: int) -> Optional[SyncEvent]:
    """The SELECT_BEGIN whose commit performed the receive at ``idx``.

    Fast path: ``SELECT_BEGIN, CHAN_RECV, SELECT_COMMIT``.  Parked path:
    the recv lands between ``GO_BLOCK`` and ``GO_UNBLOCK`` and the
    commit follows the wakeup.  Both leave the recv sandwiched between
    its begin and commit with only scheduling noise in between.
    """
    begin = None
    for s in reversed(mine[:idx]):
        kind = s.event.kind
        if kind in _SCHED_NOISE:
            continue
        if kind == EventKind.SELECT_BEGIN:
            begin = s.event
        break
    if begin is None or obj not in begin.info.get("chans", ()):
        return None
    after = next((s.event for s in mine[idx + 1:]
                  if s.event.kind not in _SCHED_NOISE), None)
    if after is None or after.kind != EventKind.SELECT_COMMIT:
        return None
    return begin


def _chan_ready_at(cid: int, step: int, stamps: List[Stamp],
                   by_gid: Dict[int, List[Stamp]]) -> Optional[str]:
    """Evidence that channel ``cid``'s recv case was ready at ``step``."""
    queued = 0
    for s in stamps:
        e = s.event
        if e.step >= step:
            break
        if e.obj != cid:
            continue
        if e.kind == EventKind.CHAN_CLOSE:
            return "close"
        if e.kind == EventKind.CHAN_SEND:
            queued += 1
        elif e.kind == EventKind.CHAN_RECV and not e.info.get("closed"):
            queued -= 1
    if queued > 0:
        return "a queued value"
    for mine in by_gid.values():
        last = None
        for s in mine:
            if s.event.step >= step:
                break
            last = s.event
        if (last is not None and last.kind == EventKind.GO_BLOCK
                and last.obj == cid
                and str(last.info.get("reason", "")).startswith("chan.send")):
            return "a parked sender"
    return None


def _lost_signals(stamps: List[Stamp]) -> List[Prediction]:
    waits: Dict[int, List[Stamp]] = {}
    signals: Dict[int, List[Stamp]] = {}
    for s in stamps:
        if s.event.kind == EventKind.COND_WAIT:
            waits.setdefault(int(s.event.obj), []).append(s)
        elif s.event.kind in _SIGNALS:
            signals.setdefault(int(s.event.obj), []).append(s)

    out: List[Prediction] = []
    for obj in sorted(set(waits) & set(signals)):
        for wait in waits[obj]:
            hit = next(
                (sig for sig in signals[obj]
                 if sig.event.gid != wait.event.gid
                 and wait.concurrent_with(sig)
                 and not _predicate_loop(wait, sig, stamps)),
                None)
            if hit is None:
                continue
            out.append(Prediction(
                family="comm", rule="lost-signal",
                detail=(f"cond#{obj}: signal by g{hit.event.gid} "
                        f"(step {hit.event.step}) is unordered with wait "
                        f"by g{wait.event.gid} (step {wait.event.step}) "
                        "and no predicate re-check loop guards the wait; "
                        "signal-first schedules lose the wakeup"),
                obj=obj,
                gids=(wait.event.gid, hit.event.gid),
                steps=(wait.event.step, hit.event.step),
            ))
            break
    return out


def _predicate_loop(wait: Stamp, signal: Stamp,
                    stamps: List[Stamp]) -> bool:
    """Does the waiter follow the condition-variable protocol?

    True when the waiter re-reads, under a lock it held at the wait,
    and *after* the wait, some variable the signaller wrote under the
    same lock before signalling.  That is the observable footprint of
    ``for !predicate() { cond.Wait() }`` with the predicate updated
    under the lock — the shape for which a lost wakeup is benign.
    """
    wait_locks = {lock for lock, _mode in wait.locks}
    if not wait_locks:
        return False
    wgid, sgid = wait.event.gid, signal.event.gid
    written: set = set()    # (var, lock) written by signaller pre-signal
    for s in stamps:
        e = s.event
        if (e.gid == sgid and e.kind == EventKind.MEM_WRITE
                and e.step < signal.event.step):
            for lock, _mode in s.locks:
                if lock in wait_locks:
                    written.add((int(e.obj), lock))
    if not written:
        return False
    for s in stamps:
        e = s.event
        if (e.gid == wgid and e.kind == EventKind.MEM_READ
                and e.step > wait.event.step):
            for lock, _mode in s.locks:
                if (int(e.obj), lock) in written:
                    return True
    return False


def _wg_add_wait(stamps: List[Stamp]) -> List[Prediction]:
    adds: Dict[int, List[Stamp]] = {}
    wg_waits: Dict[int, List[Stamp]] = {}
    for s in stamps:
        if (s.event.kind == EventKind.WG_ADD
                and s.event.info.get("delta", 0) > 0):
            adds.setdefault(int(s.event.obj), []).append(s)
        elif s.event.kind == EventKind.WG_WAIT:
            wg_waits.setdefault(int(s.event.obj), []).append(s)

    out: List[Prediction] = []
    for obj in sorted(set(adds) & set(wg_waits)):
        hit = next(
            ((add, wait)
             for wait in wg_waits[obj] for add in adds[obj]
             if add.concurrent_with(wait)),
            None)
        if hit is None:
            continue
        add, wait = hit
        out.append(Prediction(
            family="comm", rule="wg-add-wait-race",
            detail=(f"wg#{obj}: Add(+) by g{add.event.gid} "
                    f"(step {add.event.step}) is unordered with Wait by "
                    f"g{wait.event.gid} (step {wait.event.step}); "
                    "Wait-first schedules pass before the counter rises "
                    "(Figure 9 misuse)"),
            obj=obj,
            gids=(add.event.gid, wait.event.gid),
            steps=(add.event.step, wait.event.step),
        ))
    return out
