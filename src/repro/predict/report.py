"""Prediction records, the per-run report, and the predict-vs-dynamic
scorecard (the Table 8/12-style comparison for the third detector family).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass
class Prediction:
    """One predicted (or observed) bug from a single recorded run.

    Families:

    * ``race`` — predicted data race (payload: ``RaceReport``);
    * ``lockorder`` — feasible ABBA cycle (payload: ``LockOrderViolation``);
    * ``comm`` — channel/cond/waitgroup misuse candidates
      (rules ``send-on-closed``, ``lost-signal``, ``wg-add-wait-race``);
    * ``blocking`` — goroutines observed stuck in the recorded run itself
      (rule ``stuck-goroutine``) or a recorded panic (rule ``panic``);
      not a reordering prediction, but part of the verdict so a triage
      pass over one run covers the blocking family too.
    """

    family: str
    rule: str
    detail: str
    obj: Optional[int] = None
    gids: Tuple[int, ...] = ()
    steps: Tuple[int, ...] = ()
    payload: Any = None
    #: Schedule prefix replaying to a real counterexample, once confirmed.
    witness: Optional[List[int]] = None
    #: None until a confirm pass runs; then True/False.
    confirmed: Optional[bool] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "rule": self.rule,
            "detail": self.detail,
            "obj": self.obj,
            "gids": list(self.gids),
            "steps": list(self.steps),
            "witness": self.witness,
            "confirmed": self.confirmed,
        }

    def __str__(self) -> str:
        mark = {True: " [confirmed]", False: " [unconfirmed]"}.get(
            self.confirmed, "")
        return f"[{self.family}/{self.rule}] {self.detail}{mark}"


@dataclass
class PredictReport:
    """Everything predicted from one recorded run."""

    target: str
    seed: Optional[int]
    status: str
    events: int
    predictions: List[Prediction] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def found(self) -> bool:
        return bool(self.predictions)

    def by_family(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for p in self.predictions:
            counts[p.family] = counts.get(p.family, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "seed": self.seed,
            "status": self.status,
            "events": self.events,
            "found": self.found,
            "families": self.by_family(),
            "predictions": [p.to_dict() for p in self.predictions],
            "wall_s": round(self.wall_s, 4),
        }

    def render(self) -> str:
        head = (f"{self.target} (seed={self.seed}, status={self.status}, "
                f"{self.events} sync events, {self.wall_s:.3f}s)")
        if not self.predictions:
            return head + "\n  no predictions: trace admits no bug we model"
        lines = [head]
        for p in self.predictions:
            lines.append(f"  {p}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Predict-vs-dynamic scorecard
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PredictScorecardRow:
    """One kernel: the dynamic detector suite vs. one-run prediction."""

    kernel_id: str
    behavior: str
    symptom: str
    dynamic_hit: bool            # any dynamic detector fired (scorecard)
    predicted_hit: bool          # predict fired on a single recorded run
    families: Tuple[str, ...]    # which predict families fired
    trace_seed: int              # seed of the analyzed run
    trace_status: str            # status of the analyzed run
    predict_wall_s: float

    @property
    def agreement(self) -> str:
        if self.dynamic_hit and self.predicted_hit:
            return "both"
        if self.dynamic_hit:
            return "dynamic-only"
        if self.predicted_hit:
            return "predict-only"
        return "neither"


def build_predict_scorecard(kernels: Optional[Sequence[Any]] = None,
                            runs_per_kernel: int = 25
                            ) -> List[PredictScorecardRow]:
    """Evaluate predict against the dynamic suite over the corpus.

    For each kernel the dynamic columns come from
    :func:`repro.bugs.scorecard.evaluate_kernel`; the predict column from
    a *single* recorded run of the buggy variant (the first
    non-manifesting seed when one exists — the hard case where the bug
    did not show — else seed 0).
    """
    from ..bugs import registry
    from ..bugs.scorecard import evaluate_kernel
    from .engine import predict_kernel

    targets = list(kernels) if kernels is not None else \
        registry.all_kernels()
    rows: List[PredictScorecardRow] = []
    for kernel in targets:
        dynamic = evaluate_kernel(kernel, runs_per_kernel)
        t0 = time.perf_counter()
        report, seed = predict_kernel(kernel, runs=runs_per_kernel)
        wall = time.perf_counter() - t0
        rows.append(PredictScorecardRow(
            kernel_id=kernel.meta.kernel_id,
            behavior=str(kernel.meta.behavior),
            symptom=str(kernel.meta.symptom),
            dynamic_hit=dynamic.caught_by_any,
            predicted_hit=report.found,
            families=tuple(sorted(report.by_family())),
            trace_seed=seed,
            trace_status=report.status,
            predict_wall_s=wall,
        ))
    return rows


def predict_recall(rows: Sequence[PredictScorecardRow]) -> float:
    """Fraction of dynamically-caught kernels predict also catches."""
    caught = [r for r in rows if r.dynamic_hit]
    if not caught:
        return 1.0
    return sum(r.predicted_hit for r in caught) / len(caught)


def predict_precision(rows: Sequence[PredictScorecardRow]) -> float:
    """Fraction of predict hits the dynamic suite corroborates.

    A conservative floor: predict-only rows may be real bugs every
    dynamic run missed, but for scorecard purposes the dynamic suite is
    the reference.
    """
    hits = [r for r in rows if r.predicted_hit]
    if not hits:
        return 1.0
    return sum(r.dynamic_hit for r in hits) / len(hits)


def render_predict_scorecard(rows: Sequence[PredictScorecardRow]) -> str:
    from ..study.tables import render

    def mark(hit: bool) -> str:
        return "X" if hit else "."

    body = [
        [
            row.kernel_id,
            mark(row.dynamic_hit),
            mark(row.predicted_hit),
            ",".join(row.families) or "-",
            row.trace_status,
            row.agreement,
        ]
        for row in rows
    ]
    table = render(
        ["kernel", "dynamic", "predict", "families", "trace", "agreement"],
        body,
        title=("Predict-vs-dynamic scorecard "
               "(predict = one recorded run, no re-execution)"),
    )
    return (table
            + f"\n\nrecall vs dynamic: {predict_recall(rows):.0%}"
            + f"   precision vs dynamic: {predict_precision(rows):.0%}")
