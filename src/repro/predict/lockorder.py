"""Predicted lock-order (ABBA) deadlocks with a feasibility gate.

The dynamic :class:`repro.detect.lockorder.LockOrderDetector` reports
every cycle in the acquisition-order graph.  Offline we can do one
better: a cycle is only a *feasible* deadlock when its witnessing
inversions can overlap — distinct goroutines whose lock requests are
concurrent under the weak happens-before order.  A pipeline that takes
``A -> B`` in one stage and ``B -> A`` in a later stage that the first
one *starts* (fork or channel edge between them) shows a textual cycle
but can never interleave into a deadlock; the gate rejects it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..detect.lockorder import LockOrderViolation
from ..runtime.trace import EventKind
from .hb import EXCLUSIVE, Stamp
from .model import SyncTrace

_REQUEST = (EventKind.MU_REQUEST, EventKind.RW_REQUEST)


class _Edge:
    """One witnessed inversion: ``gid`` requested ``wanted`` holding
    ``held``, stamped at the request."""

    __slots__ = ("gid", "held", "wanted", "stamp")

    def __init__(self, gid: int, held: int, wanted: int, stamp: Stamp):
        self.gid = gid
        self.held = held
        self.wanted = wanted
        self.stamp = stamp


def predict_lock_cycles(trace: SyncTrace, stamps: List[Stamp]
                        ) -> List[LockOrderViolation]:
    """Feasible lock-order cycles predicted from one recorded run.

    ``stamps`` must come from the weak engine over the same ``trace``.
    Only exclusive holds establish order (read locks are shared).
    """
    edges: Dict[Tuple[int, int], List[_Edge]] = {}
    for stamp in stamps:
        e = stamp.event
        if e.kind not in _REQUEST:
            continue
        for lock, mode in stamp.locks:
            if mode != EXCLUSIVE or lock == e.obj:
                continue
            key = (lock, int(e.obj))  # type: ignore[arg-type]
            edges.setdefault(key, []).append(
                _Edge(e.gid, lock, int(e.obj), stamp))  # type: ignore

    graph: Dict[int, Set[int]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)

    violations: List[LockOrderViolation] = []
    seen: Set[FrozenSet[int]] = set()

    def dfs(start: int, node: int, path: List[int]) -> None:
        for nxt in sorted(graph.get(node, ())):
            if nxt == start and len(path) > 1:
                key = frozenset(path)
                if key not in seen:
                    seen.add(key)
                    witnesses = _feasible_witnesses(tuple(path), edges)
                    if witnesses is not None:
                        violations.append(
                            LockOrderViolation(tuple(path), witnesses))
            elif nxt not in path and nxt > start:
                dfs(start, nxt, path + [nxt])

    for start in sorted(graph):
        dfs(start, start, [start])
    return violations


def _feasible_witnesses(cycle: Tuple[int, ...],
                        edges: Dict[Tuple[int, int], List[_Edge]]
                        ) -> "Tuple[Tuple[int, int, int], ...] | None":
    """Pick one witness per cycle edge such that all witnesses are on
    distinct goroutines and pairwise weak-HB concurrent; None if no such
    assignment exists (the cycle cannot interleave into a deadlock)."""
    per_edge: List[List[_Edge]] = []
    for i, a in enumerate(cycle):
        b = cycle[(i + 1) % len(cycle)]
        per_edge.append(edges[(a, b)])

    chosen: List[_Edge] = []

    def assign(i: int) -> bool:
        if i == len(per_edge):
            return True
        for candidate in per_edge[i]:
            if any(c.gid == candidate.gid for c in chosen):
                continue
            if any(not c.stamp.concurrent_with(candidate.stamp)
                   for c in chosen):
                continue
            chosen.append(candidate)
            if assign(i + 1):
                return True
            chosen.pop()
        return False

    if not assign(0):
        return None
    return tuple((c.gid, c.held, c.wanted) for c in chosen)
