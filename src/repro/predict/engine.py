"""The predictive engine: one recorded run in, a bug report out.

:func:`predict` is the whole offline pipeline — build the
:class:`~repro.predict.model.SyncTrace`, stamp it with the weak
happens-before closure, and run every predictor family:

* ``race`` — :mod:`repro.predict.race`,
* ``lockorder`` — :mod:`repro.predict.lockorder`,
* ``comm`` — :mod:`repro.predict.comm`,
* ``blocking`` — goroutines observed stuck at end of trace (and recorded
  panics); the recorded run is itself the strongest evidence there is.

No re-execution happens here: :func:`repro.predict.confirm` turns
predictions into replayable witnesses, and
:func:`repro.predict.triage` turns reports into sweep verdicts.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Tuple, Union

from .comm import predict_comm
from .hb import weak_stamps
from .lockorder import predict_lock_cycles
from .model import SyncTrace
from .race import predict_races
from .report import Prediction, PredictReport


def predict(source: Union[SyncTrace, Any], target: str = "trace",
            include_observed: bool = True,
            max_reports_per_var: int = 1) -> PredictReport:
    """Run every predictor over one recorded run.

    Args:
        source: a :class:`SyncTrace`, a live ``RunResult`` (with trace),
            or a sync-event JSON document (str/dict) from
            :func:`repro.observe.sync_events_json`.
        target: label for the report.
        include_observed: also report bugs the recorded run manifested
            outright (stuck goroutines, panics) as the ``blocking``
            family.  Disable to see pure reordering predictions.
        max_reports_per_var: cap on predicted races per variable.
    """
    trace = as_sync_trace(source)
    t0 = time.perf_counter()
    stamps = weak_stamps(trace)

    predictions: List[Prediction] = []
    for report in predict_races(trace, stamps, max_reports_per_var):
        predictions.append(Prediction(
            family="race", rule="data-race",
            detail=(f"{report.var_name}: {report.first.kind} by "
                    f"g{report.first.gid} (step {report.first.step}) can "
                    f"race {report.second.kind} by g{report.second.gid} "
                    f"(step {report.second.step})"),
            obj=report.var_id,
            gids=(report.first.gid, report.second.gid),
            steps=(report.first.step, report.second.step),
            payload=report,
        ))
    for violation in predict_lock_cycles(trace, stamps):
        predictions.append(Prediction(
            family="lockorder", rule="lock-cycle",
            detail=str(violation),
            obj=violation.cycle[0],
            gids=tuple(gid for gid, _h, _w in violation.witnesses),
            steps=(),
            payload=violation,
        ))
    predictions.extend(predict_comm(trace, stamps))

    if include_observed:
        predictions.extend(observed_predictions(trace))

    return PredictReport(
        target=target,
        seed=trace.seed,
        status=trace.status,
        events=len(trace),
        predictions=predictions,
        wall_s=time.perf_counter() - t0,
    )


def observed_predictions(trace: SyncTrace) -> List[Prediction]:
    """Bugs the recorded run manifested outright (no reordering needed)."""
    out: List[Prediction] = []
    for blocked in trace.blocked_at_end():
        name = trace.goroutine_name(blocked.gid)
        site = f" at {blocked.site}" if blocked.site else ""
        out.append(Prediction(
            family="blocking", rule="stuck-goroutine",
            detail=(f"g{blocked.gid} ({name}) still blocked on "
                    f"{blocked.reason}{site} when the run ended "
                    f"(status={trace.status})"),
            obj=blocked.obj,
            gids=(blocked.gid,),
            steps=(blocked.step,),
            payload=blocked,
        ))
    if trace.status == "panic":
        panics = trace.of_kind("go.panic")
        gid = panics[-1].gid if panics else 0
        step = panics[-1].step if panics else trace.steps
        out.append(Prediction(
            family="blocking", rule="panic",
            detail=f"recorded run panicked (goroutine g{gid})",
            gids=(gid,),
            steps=(step,),
        ))
    return out


def as_sync_trace(source: Union[SyncTrace, Any]) -> SyncTrace:
    """Coerce any supported input shape into a :class:`SyncTrace`."""
    if isinstance(source, SyncTrace):
        return source
    if isinstance(source, (str, dict)):
        return SyncTrace.from_json(source)
    if hasattr(source, "trace"):
        return SyncTrace.from_result(source)
    raise TypeError(f"cannot build a SyncTrace from {type(source).__name__}")


def predict_kernel(kernel: Any, fixed: bool = False, runs: int = 25,
                   seed: Optional[int] = None
                   ) -> Tuple[PredictReport, int]:
    """Predict from a single recorded run of a corpus kernel.

    Picks the most adversarial trace available: the first seed in
    ``range(runs)`` where the bug did **not** manifest (prediction has to
    work from a passing run), falling back to seed 0 when the kernel
    manifests deterministically.  Returns ``(report, seed used)``.
    """
    from ..runtime.runtime import run

    program = kernel.fixed if fixed else kernel.buggy
    if seed is None:
        seed = 0
        if not fixed:
            manifesting = set(kernel.manifestation_seeds(range(runs)))
            passing = [s for s in range(runs) if s not in manifesting]
            if passing:
                seed = passing[0]
    result = run(program, seed=seed, **dict(kernel.run_kwargs))
    variant = "fixed" if fixed else "buggy"
    report = predict(result,
                     target=f"{kernel.meta.kernel_id} ({variant})")
    return report, seed
