"""The offline trace model: one recorded run as a synchronization record.

`repro.predict` never re-executes programs.  Its input is the sync-event
stream exported by :func:`repro.observe.sync_events` — either taken
directly from a live :class:`~repro.runtime.runtime.RunResult` or parsed
back from the stable JSON written by
:func:`repro.observe.sync_events_json`.  Both paths produce the same
:class:`SyncTrace`, and the round-trip test pins that the happens-before
closure built from either is clock-for-clock identical.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from ..observe.export import SYNC_EVENT_KINDS, sync_events
from ..runtime.trace import EventKind

_NO_INFO: Dict[str, Any] = {}


class SyncEvent:
    """One synchronization-relevant action, mirroring ``TraceEvent``.

    Attribute-compatible with :class:`~repro.runtime.trace.TraceEvent`
    (``step``/``time``/``gid``/``kind``/``obj``/``info``) so detector
    logic written against live traces runs unchanged over the export.
    """

    __slots__ = ("step", "time", "gid", "kind", "obj", "info")

    def __init__(self, step: int, time: float, gid: int, kind: str,
                 obj: Optional[int] = None,
                 info: Optional[Dict[str, Any]] = None):
        self.step = step
        self.time = time
        self.gid = gid
        self.kind = kind
        self.obj = obj
        self.info = _NO_INFO if not info else info

    def __repr__(self) -> str:
        extra = f" obj={self.obj}" if self.obj is not None else ""
        return f"<sync {self.step} g{self.gid} {self.kind}{extra}>"


class BlockedGoroutine:
    """A goroutine still parked when the recorded run ended."""

    __slots__ = ("gid", "reason", "obj", "step", "site")

    def __init__(self, gid: int, reason: str, obj: Optional[int],
                 step: int, site: Optional[str]):
        self.gid = gid
        self.reason = reason
        self.obj = obj
        self.step = step
        self.site = site

    def to_dict(self) -> Dict[str, Any]:
        return {"gid": self.gid, "reason": self.reason, "obj": self.obj,
                "step": self.step, "site": self.site}

    def __repr__(self) -> str:
        return f"<blocked g{self.gid} {self.reason} @{self.step}>"


class SyncTrace:
    """A single recorded run, reduced to its synchronization record."""

    def __init__(self, events: List[SyncEvent], seed: Optional[int] = None,
                 status: str = "ok", steps: int = 0,
                 goroutine_names: Optional[Dict[int, str]] = None):
        self.events = events
        self.seed = seed
        self.status = status
        self.steps = steps
        self.goroutine_names = goroutine_names or {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_result(cls, result: Any) -> "SyncTrace":
        """Build from a live run (``keep_trace=True``)."""
        events = [
            SyncEvent(e.step, e.time, e.gid, e.kind, e.obj,
                      dict(e.info) if e.info else None)
            for e in result.trace if e.kind in SYNC_EVENT_KINDS
        ]
        return cls(events, seed=result.seed, status=result.status,
                   steps=result.steps,
                   goroutine_names={g.gid: g.name
                                    for g in result.goroutines})

    @classmethod
    def from_json(cls, doc: Union[str, Dict[str, Any]]) -> "SyncTrace":
        """Parse the :func:`repro.observe.sync_events_json` document."""
        if isinstance(doc, str):
            doc = json.loads(doc)
        events = [
            SyncEvent(int(e["step"]), float(e["time"]), int(e["gid"]),
                      str(e["kind"]), e.get("obj"),
                      _restore_info(e.get("info")))
            for e in doc["events"]
        ]
        return cls(events, seed=doc.get("seed"),
                   status=str(doc.get("status", "ok")),
                   steps=int(doc.get("steps", 0)),
                   goroutine_names={int(gid): name for gid, name in
                                    doc.get("goroutines", {}).items()})

    @classmethod
    def record(cls, program: Any, seed: int = 0, **run_kwargs: Any
               ) -> "SyncTrace":
        """Convenience: run ``program`` once and capture its record."""
        from ..runtime.runtime import run

        result = run(program, seed=seed, **run_kwargs)
        return cls.from_result(result)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def of_kind(self, *kinds: str) -> List[SyncEvent]:
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def goroutine_name(self, gid: int) -> str:
        return self.goroutine_names.get(gid, f"g{gid}")

    def blocked_at_end(self) -> List[BlockedGoroutine]:
        """Goroutines stuck when the run ended (the leak/deadlock set).

        A goroutine is stuck when its *own* last event is a GO_BLOCK it
        never ran past: a goroutine that made progress after blocking
        emits later events, one that ended emits GO_END/GO_PANIC, and
        one killed at teardown emits nothing further.  GO_UNBLOCK is
        deliberately not trusted — teardown and deadlock delivery emit
        wakeups for goroutines that never actually run again.  Sleepers
        (``time.sleep``) are excluded: a goroutine parked on the clock
        would progress, it is not leaked.
        """
        last: Dict[int, SyncEvent] = {}
        ended = set()
        for e in self.events:
            if e.gid > 0:
                last[e.gid] = e
            if e.kind in (EventKind.GO_END, EventKind.GO_PANIC):
                ended.add(e.gid)
        out = []
        for gid in sorted(last):
            e = last[gid]
            if gid in ended or e.kind != EventKind.GO_BLOCK:
                continue
            reason = str(e.info.get("reason", "?"))
            if reason.startswith("time.sleep"):
                continue
            out.append(BlockedGoroutine(
                gid=gid,
                reason=reason,
                obj=e.obj,
                step=e.step,
                site=e.info.get("site"),
            ))
        return out

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (f"<SyncTrace seed={self.seed} status={self.status} "
                f"events={len(self.events)}>")


def _restore_info(info: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    if not info:
        return None
    # JSON round-trips tuples as lists; restore the tuple-valued keys.
    for key in ("objs", "chans"):
        value = info.get(key)
        if isinstance(value, list):
            info = dict(info)
            info[key] = tuple(value)
    return info
