"""Happens-before closure over a recorded sync trace, strict and relaxed.

Two modes over the same :class:`~repro.predict.model.SyncTrace`:

* ``strict`` replays exactly the clock rules of the live
  :class:`repro.detect.race.RaceDetector` — goroutine fork, channel
  send/recv/close (with the bidirectional rendezvous edge), mutex and
  RWMutex transfer, WaitGroup, Once, Cond, atomics.  The round-trip test
  pins that the final per-goroutine clocks match the live detector's,
  clock for clock.
* ``weak`` is the *predictive* order: it drops the edges that exist only
  because the scheduler happened to order two critical sections — mutex /
  write-lock release→acquire and cond signal→wait — while keeping the
  edges every feasible reordering must preserve (fork, channel message
  and close, read-lock transfer via writers, WaitGroup Done→Wait, Once,
  atomics).  Two events unordered by the weak closure can occur in either
  order in *some* feasible schedule of the same program, provided the
  reordering is not blocked by mutual exclusion itself — which is why
  the race predictor pairs the weak order with a lockset check rather
  than re-adding lock edges.

Every event is stamped with a :class:`Stamp` — the acting goroutine's
full vector clock at the event (after incoming joins, before its own
increment) plus the set of locks held — which is what the predictors
consume.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..detect.vectorclock import VectorClock
from ..runtime.trace import EventKind
from .model import SyncEvent, SyncTrace

#: Lockset entry modes: ``"x"`` exclusive (Mutex / RWMutex write lock),
#: ``"r"`` shared (RWMutex read lock).
EXCLUSIVE = "x"
SHARED = "r"


class Stamp:
    """One event's position in the (strict or weak) happens-before order."""

    __slots__ = ("event", "clock", "count", "locks")

    def __init__(self, event: SyncEvent, clock: VectorClock, count: int,
                 locks: FrozenSet[Tuple[int, str]]):
        self.event = event
        self.clock = clock          # full clock snapshot at the event
        self.count = count          # the acting goroutine's own component
        self.locks = locks          # locks held by the acting goroutine

    def ordered_before(self, other: "Stamp") -> bool:
        """True when this event happens-before ``other`` in the closure."""
        if self.event.gid == other.event.gid:
            return self.event.step < other.event.step
        return other.clock.get(self.event.gid) >= self.count

    def concurrent_with(self, other: "Stamp") -> bool:
        """Unordered both ways (and on different goroutines)."""
        if self.event.gid == other.event.gid:
            return False
        return not self.ordered_before(other) \
            and not other.ordered_before(self)

    def common_exclusive_lock(self, other: "Stamp") -> Optional[int]:
        """A lock both hold with at least one exclusive holder, if any."""
        mine = {obj: mode for obj, mode in self.locks}
        for obj, mode in other.locks:
            held = mine.get(obj)
            if held is not None and (held == EXCLUSIVE or mode == EXCLUSIVE):
                return obj
        return None

    def __repr__(self) -> str:
        return (f"<stamp {self.event.kind}@{self.event.step} "
                f"g{self.event.gid}:{self.count}>")


class HBEngine:
    """Builds the happens-before closure of one recorded run."""

    def __init__(self, mode: str = "strict"):
        if mode not in ("strict", "weak"):
            raise ValueError(f"unknown HB mode {mode!r}")
        self.mode = mode
        self._clocks: Dict[int, VectorClock] = {}
        self._chan_msgs: Dict[Tuple[Optional[int], Optional[int]],
                              VectorClock] = {}
        self._chan_close: Dict[int, VectorClock] = {}
        self._lock_rel: Dict[int, VectorClock] = {}
        self._rw_read_rel: Dict[int, VectorClock] = {}
        self._wg_rel: Dict[int, VectorClock] = {}
        self._wg_add_rel: Dict[int, VectorClock] = {}  # weak mode only
        self._once_rel: Dict[int, VectorClock] = {}
        self._cond_rel: Dict[int, VectorClock] = {}
        self._atomic_rel: Dict[int, VectorClock] = {}
        self._held: Dict[int, List[Tuple[int, str]]] = {}

    # -- clock plumbing (mirrors RaceDetector exactly) ------------------

    def _clock(self, gid: int) -> VectorClock:
        clock = self._clocks.get(gid)
        if clock is None:
            clock = VectorClock()
            clock.increment(gid)
            self._clocks[gid] = clock
        return clock

    def _release(self, store: Dict[int, VectorClock], obj: int,
                 gid: int) -> None:
        clock = self._clock(gid)
        slot = store.get(obj)
        if slot is None:
            store[obj] = clock.copy()
        else:
            slot.join(clock)
        clock.increment(gid)

    def _acquire(self, store: Dict[int, VectorClock], obj: int,
                 gid: int) -> None:
        slot = store.get(obj)
        if slot is not None:
            self._clock(gid).join(slot)

    def final_clocks(self) -> Dict[int, VectorClock]:
        """Per-goroutine clocks after the whole trace (copies)."""
        return {gid: clock.copy() for gid, clock in self._clocks.items()}

    # -- driving --------------------------------------------------------

    def process(self, trace: SyncTrace) -> List[Stamp]:
        """Consume every event, returning one :class:`Stamp` per event."""
        return [self.step(event) for event in trace.events]

    def step(self, event: SyncEvent) -> Stamp:
        """Apply one event's incoming edges, stamp it, apply its effects."""
        kind = event.kind
        gid = event.gid
        obj = event.obj
        weak = self.mode == "weak"

        # Incoming joins happen before the stamp so the stamp reflects
        # everything this event is ordered after.
        if kind == EventKind.CHAN_RECV:
            self._recv_joins(event)
        elif kind in (EventKind.MU_LOCK, EventKind.RW_RLOCK):
            if not weak:
                self._acquire(self._lock_rel, obj, gid)
        elif kind == EventKind.RW_LOCK:
            if not weak:
                self._acquire(self._lock_rel, obj, gid)
            self._acquire(self._rw_read_rel, obj, gid)
        elif kind == EventKind.WG_WAIT:
            # Weak mode stamps Wait *before* joining the Done releases:
            # the stamp marks the moment Wait could have passed (Wait
            # never waits for Add — Figure 9), while later events by the
            # waiter still inherit the real Done→Wait edges because the
            # join itself happens below, after the stamp.
            if not weak:
                self._acquire(self._wg_rel, obj, gid)
        elif kind == EventKind.ONCE_DO and not event.info.get("ran"):
            self._acquire(self._once_rel, obj, gid)
        elif kind == EventKind.COND_WAIT:
            if not weak:
                self._acquire(self._cond_rel, obj, gid)
        elif kind == EventKind.ATOMIC_OP:
            self._acquire(self._atomic_rel, obj, gid)

        clock = self._clock(gid)
        stamp = Stamp(event, clock.copy(), clock.get(gid),
                      frozenset(self._held.get(gid, ())))

        # Outgoing effects and own-epoch advances.
        if kind == EventKind.GO_CREATE:
            child = int(obj)  # type: ignore[arg-type]
            child_clock = clock.copy()
            child_clock.increment(child)
            self._clocks[child] = child_clock
            clock.increment(gid)
        elif kind == EventKind.CHAN_SEND:
            seq = event.info.get("seq")
            self._chan_msgs[(obj, seq)] = clock.copy()
            clock.increment(gid)
        elif kind == EventKind.CHAN_RECV:
            clock.increment(gid)
        elif kind == EventKind.CHAN_CLOSE:
            self._release(self._chan_close, obj, gid)
        elif kind in (EventKind.MU_UNLOCK, EventKind.RW_UNLOCK):
            self._release(self._lock_rel, obj, gid)
            self._drop_lock(gid, obj)
        elif kind == EventKind.RW_RUNLOCK:
            self._release(self._rw_read_rel, obj, gid)
            self._drop_lock(gid, obj, SHARED)
        elif kind in (EventKind.MU_LOCK, EventKind.RW_LOCK):
            self._held.setdefault(gid, []).append((obj, EXCLUSIVE))
        elif kind == EventKind.RW_RLOCK:
            self._held.setdefault(gid, []).append((obj, SHARED))
        elif kind == EventKind.WG_WAIT:
            if weak:
                self._acquire(self._wg_rel, obj, gid)
        elif kind == EventKind.WG_ADD:
            if event.info.get("delta", 0) > 0:
                # The live detector gives Add a release edge into Wait,
                # but Wait never *waits* for Add — that recorded
                # coincidence is exactly the Figure 9 misuse the
                # predictive order must relax.  Weak mode diverts the
                # release to a dead store (keeping the epoch advance).
                store = self._wg_add_rel if weak else self._wg_rel
                self._release(store, obj, gid)
        elif kind == EventKind.WG_DONE:
            self._release(self._wg_rel, obj, gid)
        elif kind == EventKind.ONCE_DO and event.info.get("ran"):
            self._release(self._once_rel, obj, gid)
        elif kind in (EventKind.COND_SIGNAL, EventKind.COND_BROADCAST):
            self._release(self._cond_rel, obj, gid)
        elif kind == EventKind.ATOMIC_OP:
            self._release(self._atomic_rel, obj, gid)
        elif kind in (EventKind.MEM_READ, EventKind.MEM_WRITE):
            clock.increment(gid)

        return stamp

    # -- helpers --------------------------------------------------------

    def _recv_joins(self, event: SyncEvent) -> None:
        gid = event.gid
        obj = event.obj
        if event.info.get("closed"):
            self._acquire(self._chan_close, obj, gid)
            return
        seq = event.info.get("seq")
        msg_clock = self._chan_msgs.pop((obj, seq), None)
        if event.info.get("sync") and event.info.get("partner") is not None:
            # Unbuffered rendezvous synchronizes both directions.
            partner = int(event.info["partner"])
            recv_pre = self._clock(gid).copy()
            self._clock(gid).join(msg_clock)
            self._clock(partner).join(recv_pre)
            self._clock(partner).increment(partner)
        else:
            self._clock(gid).join(msg_clock)

    def _drop_lock(self, gid: int, obj: Optional[int],
                   mode: Optional[str] = None) -> None:
        held = self._held.get(gid)
        if not held:
            return
        for i in range(len(held) - 1, -1, -1):
            lock, held_mode = held[i]
            if lock == obj and (mode is None or held_mode == mode):
                del held[i]
                return


def weak_stamps(trace: SyncTrace) -> List[Stamp]:
    """The predictive (relaxed) closure of ``trace``, stamped per event."""
    return HBEngine(mode="weak").process(trace)


def strict_stamps(trace: SyncTrace) -> List[Stamp]:
    """The recorded-order closure, identical to the live race detector's."""
    return HBEngine(mode="strict").process(trace)
