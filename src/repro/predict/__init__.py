"""repro.predict — offline predictive trace analysis.

The third detector family (after the runtime detectors and the
systematic explorer): consume *one* recorded run — live
``RunResult`` or the sync-event JSON from
:func:`repro.observe.sync_events_json` — relax its happens-before order,
and report bugs reachable in schedules that were never executed:

* predicted data races (:mod:`repro.predict.race`),
* feasible lock-order cycles (:mod:`repro.predict.lockorder`),
* lost-signal / send-on-closed / WaitGroup-misuse candidates
  (:mod:`repro.predict.comm`).

Quickstart::

    from repro import run
    from repro.predict import predict, confirm_predictions, triage

    result = run(main, seed=0)
    report = predict(result)           # no re-execution
    print(report.render())

    # Cash predictions in as replayable witnesses:
    confirm_predictions(report, main)

    # Or screen before an expensive sweep:
    if triage(main).needs_search:
        ...  # explore_systematic(...)

See ``docs/PREDICT.md`` for the trace model, the happens-before
relaxation rules, and the soundness caveats.
"""

from .confirm import ConfirmOutcome, confirm_predictions, predicate_for
from .engine import as_sync_trace, observed_predictions, predict, predict_kernel
from .hb import HBEngine, Stamp, strict_stamps, weak_stamps
from .lockorder import predict_lock_cycles
from .model import BlockedGoroutine, SyncEvent, SyncTrace
from .race import predict_races
from .comm import predict_comm
from .report import (
    PredictReport,
    PredictScorecardRow,
    Prediction,
    build_predict_scorecard,
    predict_precision,
    predict_recall,
    render_predict_scorecard,
)
from .triage import TriageVerdict, triage, triage_kernel, triage_sweep

__all__ = [
    "BlockedGoroutine",
    "ConfirmOutcome",
    "HBEngine",
    "PredictReport",
    "PredictScorecardRow",
    "Prediction",
    "Stamp",
    "SyncEvent",
    "SyncTrace",
    "TriageVerdict",
    "as_sync_trace",
    "build_predict_scorecard",
    "confirm_predictions",
    "observed_predictions",
    "predicate_for",
    "predict",
    "predict_comm",
    "predict_kernel",
    "predict_lock_cycles",
    "predict_precision",
    "predict_races",
    "predict_recall",
    "render_predict_scorecard",
    "strict_stamps",
    "triage",
    "triage_kernel",
    "triage_sweep",
    "weak_stamps",
]
