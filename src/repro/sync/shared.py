"""Unsynchronized shared variables — the race detector's subject matter.

Go's data races happen on plain memory: struct fields, slices, and the
local variables that anonymous functions capture (Section 6.1.1, Figure 8).
Python cannot observe plain attribute accesses, so racy state in kernels
and apps lives in :class:`SharedVar`s, whose loads and stores are both

* scheduling points — different seeds order them differently, so lost
  updates and stale reads actually *happen*, and
* trace events — the happens-before race detector sees every access.

``add``/``incr`` are deliberately non-atomic (a load, a preemption point,
then a store), reproducing the read-modify-write races in the corpus.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

from ..runtime.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class SharedVar:
    """A plain (non-atomic) shared memory location."""

    def __init__(self, rt: "Runtime", name: str, value: Any = None):
        self._rt = rt
        self._sched = rt.sched
        self.id = rt.new_obj_id()
        self.name = name
        self._value = value

    def load(self) -> Any:
        """A plain read."""
        self._sched.schedule_point()
        self._sched.emit(EventKind.MEM_READ, obj=self.id, info={"name": self.name})
        return self._value

    def store(self, value: Any) -> None:
        """A plain write."""
        self._sched.schedule_point()
        self._sched.emit(EventKind.MEM_WRITE, obj=self.id, info={"name": self.name})
        self._value = value

    def add(self, delta: Any) -> Any:
        """Non-atomic read-modify-write: the classic lost-update shape."""
        value = self.load()
        value = value + delta
        self.store(value)
        return value

    def incr(self) -> Any:
        return self.add(1)

    def update(self, fn: Callable[[Any], Any]) -> Any:
        """Non-atomic ``store(fn(load()))``."""
        value = fn(self.load())
        self.store(value)
        return value

    # Read without creating a race-visible access; for assertions in tests
    # and symptom checks that must not perturb the schedule or the detector.
    def peek(self) -> Any:
        return self._value

    def poke(self, value: Any) -> None:
        """Write without a race-visible access (test setup only)."""
        self._value = value

    def __repr__(self) -> str:
        return f"<SharedVar {self.name}={self._value!r}>"
