"""``sync/atomic``.

Atomic operations are *synchronizing*: each op acquires and releases the
variable's clock, so properly-atomic counters never race (and fixing a data
race by "replacing plain accesses with atomics" — 10 of the paper's
non-blocking fixes use the Atomic primitive — makes the race detector go
quiet, which the Table 11 bench demonstrates).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, TYPE_CHECKING

from ..runtime.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class AtomicInt:
    """Atomic integer: Load/Store/Add/Swap/CompareAndSwap."""

    def __init__(self, rt: "Runtime", value: int = 0, name: Optional[str] = None):
        self._rt = rt
        self._sched = rt.sched
        self.id = rt.new_obj_id()
        self.name = name or f"atomic#{self.id}"
        self._value = int(value)

    def _op(self, op: str) -> None:
        self._sched.emit(EventKind.ATOMIC_OP, obj=self.id, info={"op": op})

    def load(self) -> int:
        self._sched.schedule_point()
        self._op("load")
        return self._value

    def store(self, value: int) -> None:
        self._sched.schedule_point()
        self._value = int(value)
        self._op("store")

    def add(self, delta: int) -> int:
        """Atomically add; returns the new value, like ``atomic.AddInt64``."""
        self._sched.schedule_point()
        self._value += delta
        self._op("add")
        return self._value

    def swap(self, value: int) -> int:
        self._sched.schedule_point()
        old, self._value = self._value, int(value)
        self._op("swap")
        return old

    def compare_and_swap(self, old: int, new: int) -> bool:
        self._sched.schedule_point()
        self._op("cas")
        if self._value == old:
            self._value = int(new)
            return True
        return False

    def __repr__(self) -> str:
        return f"<AtomicInt {self.name}={self._value}>"


class AtomicValue:
    """Atomic reference cell, like ``atomic.Value``."""

    def __init__(self, rt: "Runtime", value: Any = None, name: Optional[str] = None):
        self._rt = rt
        self._sched = rt.sched
        self.id = rt.new_obj_id()
        self.name = name or f"atomicval#{self.id}"
        self._value = value

    def load(self) -> Any:
        self._sched.schedule_point()
        self._sched.emit(EventKind.ATOMIC_OP, obj=self.id, info={"op": "load"})
        return self._value

    def store(self, value: Any) -> None:
        self._sched.schedule_point()
        self._value = value
        self._sched.emit(EventKind.ATOMIC_OP, obj=self.id, info={"op": "store"})

    def swap(self, value: Any) -> Any:
        self._sched.schedule_point()
        old, self._value = self._value, value
        self._sched.emit(EventKind.ATOMIC_OP, obj=self.id, info={"op": "swap"})
        return old

    def __repr__(self) -> str:
        return f"<AtomicValue {self.name}>"
