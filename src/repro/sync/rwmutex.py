"""``sync.RWMutex`` with Go's writer-priority rule.

The detail the paper highlights (Section 5.1.1): in Go, a *pending* write
lock blocks **new** read lock requests, even from a goroutine that already
holds a read lock.  So the interleaving

    g1: RLock()            -> succeeds (readers = 1)
    g2: Lock()             -> waits for g1's read lock, blocks new readers
    g1: RLock()            -> blocks behind g2's pending write lock

deadlocks in Go (5 of the studied bugs), while C's ``pthread_rwlock_t``
default reader-preference would let g1's second RLock through.  Construct
with ``writer_priority=False`` to get the pthread behavior — the ablation
benchmark shows the deadlock disappear.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from ..runtime.errors import GoPanic
from ..runtime.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class _Ticket:
    __slots__ = ("goroutine", "granted")

    def __init__(self, goroutine):
        self.goroutine = goroutine
        self.granted = False


class RWMutex:
    """Reader/writer mutual exclusion lock."""

    __slots__ = ("_rt", "_sched", "id", "name", "writer_priority", "_readers",
                 "_writer", "_pending_writers", "_pending_readers",
                 "_reason_r", "_reason_w")

    def __init__(self, rt: "Runtime", name: Optional[str] = None,
                 writer_priority: bool = True):
        self._rt = rt
        self._sched = rt.sched
        self.id = rt.new_obj_id()
        self.name = name or f"rwmutex#{self.id}"
        #: Go semantics when True; pthread reader-preference when False.
        self.writer_priority = writer_priority
        self._readers = 0
        self._writer = False
        self._pending_writers: Deque[_Ticket] = deque()
        self._pending_readers: Deque[_Ticket] = deque()
        self._reason_r = f"rwmutex.rlock:{self.name}"
        self._reason_w = f"rwmutex.lock:{self.name}"

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def rlock(self) -> None:
        """Acquire a read lock, like ``mu.RLock()``."""
        fast = self._sched._fastops
        if fast is not None and fast.rw_rlock(self) is not NotImplemented:
            return
        self._sched.schedule_point()
        me = self._sched.current
        if self._can_rlock_now():
            self._readers += 1
            self._sched.emit(EventKind.RW_RLOCK, obj=self.id)
            return
        ticket = _Ticket(me)
        self._pending_readers.append(ticket)
        while not ticket.granted:
            self._sched.block(self._reason_r, obj=self.id)
        self._sched.emit(EventKind.RW_RLOCK, obj=self.id)

    def runlock(self) -> None:
        """Release a read lock, like ``mu.RUnlock()``."""
        fast = self._sched._fastops
        if fast is not None and fast.rw_runlock(self) is not NotImplemented:
            return
        self._sched.schedule_point()
        if self._readers <= 0:
            raise GoPanic("sync: RUnlock of unlocked RWMutex")
        self._readers -= 1
        self._sched.emit(EventKind.RW_RUNLOCK, obj=self.id)
        if self._readers == 0:
            self._promote(prefer_readers=False)

    def _can_rlock_now(self) -> bool:
        if self._writer:
            return False
        if self.writer_priority and self._pending_writers:
            return False
        return True

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def lock(self) -> None:
        """Acquire the write lock, like ``mu.Lock()``."""
        fast = self._sched._fastops
        if fast is not None and fast.rw_lock(self) is not NotImplemented:
            return
        self._sched.schedule_point()
        me = self._sched.current
        self._sched.emit(EventKind.RW_REQUEST, obj=self.id,
                         info={"name": self.name,
                               "waiters": len(self._pending_writers)})
        if not self._writer and self._readers == 0:
            self._writer = True
            self._sched.emit(EventKind.RW_LOCK, obj=self.id)
            return
        ticket = _Ticket(me)
        self._pending_writers.append(ticket)
        while not ticket.granted:
            self._sched.block(self._reason_w, obj=self.id)
        self._sched.emit(EventKind.RW_LOCK, obj=self.id)

    def unlock(self) -> None:
        """Release the write lock, like ``mu.Unlock()``."""
        fast = self._sched._fastops
        if fast is not None and fast.rw_unlock(self) is not NotImplemented:
            return
        self._sched.schedule_point()
        if not self._writer:
            raise GoPanic("sync: Unlock of unlocked RWMutex")
        self._writer = False
        self._sched.emit(EventKind.RW_UNLOCK, obj=self.id)
        # Go lets readers that queued behind the writer go first, avoiding
        # reader starvation.
        self._promote(prefer_readers=True)

    # ------------------------------------------------------------------

    def _promote(self, prefer_readers: bool) -> None:
        """Grant the lock to pending parties after a release."""
        if self._writer:
            return
        if prefer_readers and self._pending_readers:
            self._grant_all_readers()
            return
        if self._readers == 0 and self._pending_writers:
            ticket = self._pending_writers.popleft()
            self._writer = True
            ticket.granted = True
            self._sched.ready(ticket.goroutine)
            return
        if self._pending_readers and not (self.writer_priority and self._pending_writers):
            self._grant_all_readers()

    def _grant_all_readers(self) -> None:
        while self._pending_readers:
            ticket = self._pending_readers.popleft()
            self._readers += 1
            ticket.granted = True
            self._sched.ready(ticket.goroutine)

    # ------------------------------------------------------------------
    # Context-manager helpers
    # ------------------------------------------------------------------

    def __enter__(self) -> "RWMutex":
        self.lock()
        return self

    def __exit__(self, *exc) -> None:
        self.unlock()

    class _ReadGuard:
        def __init__(self, rw: "RWMutex"):
            self._rw = rw

        def __enter__(self):
            self._rw.rlock()
            return self._rw

        def __exit__(self, *exc) -> None:
            self._rw.runlock()

    def rlocker(self) -> "_ReadGuard":
        """Context manager for the read side: ``with mu.rlocker(): ...``."""
        return RWMutex._ReadGuard(self)

    def __repr__(self) -> str:
        if self._writer:
            state = "write-locked"
        elif self._readers:
            state = f"{self._readers} readers"
        else:
            state = "unlocked"
        return f"<RWMutex {self.name} {state} pending_w={len(self._pending_writers)}>"
