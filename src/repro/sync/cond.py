"""``sync.Cond``.

Two of the paper's three "Wait" blocking bugs are a ``Cond.Wait()`` with no
subsequent ``Signal``/``Broadcast`` — the missed-signal pattern this module
makes expressible: signals are *not* sticky, exactly as in Go.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from ..runtime.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class _Ticket:
    __slots__ = ("goroutine", "notified")

    def __init__(self, goroutine):
        self.goroutine = goroutine
        self.notified = False


class Cond:
    """Condition variable bound to a locker (Mutex or RWMutex write side)."""

    def __init__(self, rt: "Runtime", locker, name: Optional[str] = None):
        self._rt = rt
        self._sched = rt.sched
        self.id = rt.new_obj_id()
        self.name = name or f"cond#{self.id}"
        #: The lock the caller must hold around :meth:`wait`, like ``Cond.L``.
        self.locker = locker
        self._waiters: Deque[_Ticket] = deque()

    def wait(self) -> None:
        """Atomically release the locker and park, like ``c.Wait()``.

        Re-acquires the locker before returning.  As in Go, callers must
        re-check their predicate in a loop.
        """
        me = self._sched.current
        ticket = _Ticket(me)
        self._waiters.append(ticket)
        self._sched.emit(EventKind.COND_WAIT, obj=self.id)
        self.locker.unlock()
        while not ticket.notified:
            self._sched.block(f"cond.wait:{self.name}", obj=self.id)
        self.locker.lock()

    def signal(self) -> None:
        """Wake one waiter, like ``c.Signal()``.  Lost if nobody waits."""
        self._sched.schedule_point()
        self._sched.emit(EventKind.COND_SIGNAL, obj=self.id)
        while self._waiters:
            ticket = self._waiters.popleft()
            ticket.notified = True
            self._sched.ready(ticket.goroutine)
            return

    def broadcast(self) -> None:
        """Wake every waiter, like ``c.Broadcast()``."""
        self._sched.schedule_point()
        self._sched.emit(EventKind.COND_BROADCAST, obj=self.id)
        waiters, self._waiters = self._waiters, deque()
        for ticket in waiters:
            ticket.notified = True
            self._sched.ready(ticket.goroutine)

    def __repr__(self) -> str:
        return f"<Cond {self.name} waiters={len(self._waiters)}>"
