"""``sync.Map`` — a concurrency-safe map.

Go crashes outright on concurrent plain-map writes ("fatal error:
concurrent map writes"); several studied bugs are exactly that, and the
standard fixes are a Mutex (Table 11's most common primitive) or
``sync.Map``.  This is the latter: every operation holds the internal
mutex, so it is linearizable and race-detector-clean by construction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime

#: Unique miss marker (None is a legal stored value).
_MISSING = object()


class SyncMap:
    """Mutex-protected map with Go's ``sync.Map`` method set."""

    def __init__(self, rt: "Runtime", name: Optional[str] = None):
        self._rt = rt
        self._mu = rt.mutex(name or "syncmap")
        self._data: Dict[Any, Any] = {}

    def store(self, key: Any, value: Any) -> None:
        """Set key to value, like ``m.Store``."""
        with self._mu:
            self._data[key] = value

    def load(self, key: Any) -> Tuple[Any, bool]:
        """Return ``(value, ok)``, like ``m.Load``."""
        with self._mu:
            value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return None, False
        return value, True

    def load_or_store(self, key: Any, value: Any) -> Tuple[Any, bool]:
        """Return the existing value if present, else store the given one.

        Returns ``(actual, loaded)`` — ``loaded`` is True when the key
        already existed.  The check-and-insert is atomic: the safe form of
        the double-init pattern several kernels get wrong.
        """
        with self._mu:
            existing = self._data.get(key, _MISSING)
            if existing is not _MISSING:
                return existing, True
            self._data[key] = value
            return value, False

    def load_and_delete(self, key: Any) -> Tuple[Any, bool]:
        """Atomically remove and return, like ``m.LoadAndDelete``."""
        with self._mu:
            value = self._data.pop(key, _MISSING)
        if value is _MISSING:
            return None, False
        return value, True

    def delete(self, key: Any) -> None:
        with self._mu:
            self._data.pop(key, None)

    def range(self, fn: Callable[[Any, Any], bool]) -> None:
        """Call ``fn(key, value)`` per entry until it returns False.

        As in Go, iteration works on a snapshot: ``fn`` may call back into
        the map without deadlocking.
        """
        with self._mu:
            snapshot = list(self._data.items())
        for key, value in snapshot:
            if fn(key, value) is False:
                return

    def __len__(self) -> int:
        with self._mu:
            return len(self._data)

    def keys(self) -> List[Any]:
        with self._mu:
            return sorted(self._data, key=repr)
