"""``sync.Once``.

Go semantics: ``Once.Do(f)`` runs ``f`` exactly once; every other caller
*blocks until that first execution completes* and then returns without
running its argument.  The completion of ``f`` happens-before every
``Do`` return.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from ..runtime.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class Once:
    """One-shot initialization guard, like ``sync.Once``."""

    def __init__(self, rt: "Runtime", name: Optional[str] = None):
        self._rt = rt
        self._sched = rt.sched
        self.id = rt.new_obj_id()
        self.name = name or f"once#{self.id}"
        self._done = False
        self._running = False
        self._waiters: List = []

    @property
    def done(self) -> bool:
        return self._done

    def do(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` if nobody has; otherwise wait for the first run."""
        self._sched.schedule_point()
        me = self._sched.current
        if self._done:
            self._sched.emit(EventKind.ONCE_DO, obj=self.id, info={"ran": False})
            return
        if self._running:
            self._waiters.append(me)
            while not self._done:
                self._sched.block(f"once.do:{self.name}", obj=self.id)
            self._sched.emit(EventKind.ONCE_DO, obj=self.id, info={"ran": False})
            return
        self._running = True
        try:
            fn()
        finally:
            self._done = True
            self._running = False
            self._sched.emit(EventKind.ONCE_DO, obj=self.id, info={"ran": True})
            waiters, self._waiters = self._waiters, []
            for g in waiters:
                self._sched.ready(g)

    def __repr__(self) -> str:
        return f"<Once {self.name} done={self._done}>"
