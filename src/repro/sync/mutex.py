"""``sync.Mutex``.

Non-reentrant, like Go's: a goroutine locking a mutex it already holds
blocks forever (the classic double-lock blocking bug, 28 of the paper's 85
blocking bugs are Mutex misuse).  Unlocking an unlocked mutex is a fatal
error in Go; we model it as a panic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from ..runtime.errors import GoPanic
from ..runtime.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class _Ticket:
    __slots__ = ("goroutine", "granted")

    def __init__(self, goroutine):
        self.goroutine = goroutine
        self.granted = False


class Mutex:
    """Mutual exclusion lock.  Usable as a context manager."""

    __slots__ = ("_rt", "_sched", "_fast", "id", "name", "_locked", "_owner",
                 "_waiters", "_reason")

    def __init__(self, rt: "Runtime", name: Optional[str] = None):
        self._rt = rt
        self._sched = rt.sched
        # The scheduler binds its fast-op table once at construction, so
        # caching it here saves an attribute hop on every acquire/release.
        self._fast = rt.sched._fastops
        self.id = rt.new_obj_id()
        self.name = name or f"mutex#{self.id}"
        self._locked = False
        self._owner: Optional[int] = None  # diagnostics only; Go allows
        self._waiters: Deque[_Ticket] = deque()  # cross-goroutine unlock
        self._reason = f"mutex.lock:{self.name}"

    @property
    def locked(self) -> bool:
        return self._locked

    def lock(self) -> None:
        """Acquire, like ``mu.Lock()``; blocks while held (even by self)."""
        fast = self._fast
        if fast is not None and fast.mutex_lock(self) is not NotImplemented:
            return
        self._sched.schedule_point()
        me = self._sched.current
        # The *request* is observable even if the acquisition never
        # completes — what lock-order analysis needs.  The contention
        # profiler reads the name and queue depth off the same event.
        self._sched.emit(EventKind.MU_REQUEST, obj=self.id,
                         info={"name": self.name,
                               "waiters": len(self._waiters)})
        if not self._locked:
            self._locked = True
            self._owner = me.gid
            self._sched.emit(EventKind.MU_LOCK, obj=self.id)
            return
        ticket = _Ticket(me)
        self._waiters.append(ticket)
        while not ticket.granted:
            self._sched.block(self._reason, obj=self.id)
        # Ownership was handed off directly by unlock(); just record it.
        self._sched.emit(EventKind.MU_LOCK, obj=self.id)

    def try_lock(self) -> bool:
        """Non-blocking acquire, like ``mu.TryLock()``."""
        fast = self._fast
        if fast is not None:
            outcome = fast.mutex_trylock(self)
            if outcome is not NotImplemented:
                return outcome
        self._sched.schedule_point()
        if self._locked:
            return False
        self._locked = True
        self._owner = self._sched.current.gid
        self._sched.emit(EventKind.MU_LOCK, obj=self.id)
        return True

    def unlock(self) -> None:
        """Release, like ``mu.Unlock()``.  Panics if not locked."""
        fast = self._fast
        if fast is not None and fast.mutex_unlock(self) is not NotImplemented:
            return
        self._sched.schedule_point()
        if not self._locked:
            raise GoPanic("sync: unlock of unlocked mutex")
        self._sched.emit(EventKind.MU_UNLOCK, obj=self.id)
        if self._waiters:
            # Direct handoff: the mutex stays locked and ownership moves to
            # the first waiter, so nobody can barge in between.
            ticket = self._waiters.popleft()
            ticket.granted = True
            self._owner = ticket.goroutine.gid
            self._sched.ready(ticket.goroutine)
        else:
            self._locked = False
            self._owner = None

    # Context-manager sugar for the common lock/defer-unlock pattern.
    # Dispatches the compiled op directly — one Python frame per acquire
    # instead of two; on a bail the full wrapper runs (the repeated
    # engagement check is cheap and happens before anything observable).
    def __enter__(self) -> "Mutex":
        fast = self._fast
        if fast is None or fast.mutex_lock(self) is NotImplemented:
            self.lock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        fast = self._fast
        if fast is None or fast.mutex_unlock(self) is NotImplemented:
            self.unlock()

    def __repr__(self) -> str:
        state = f"locked by g{self._owner}" if self._locked else "unlocked"
        return f"<Mutex {self.name} {state}>"
