"""Shared-memory synchronization primitives (Go's ``sync`` / ``sync/atomic``)."""

from .atomic import AtomicInt, AtomicValue
from .cond import Cond
from .mutex import Mutex
from .once import Once
from .rwmutex import RWMutex
from .shared import SharedVar
from .syncmap import SyncMap
from .waitgroup import WaitGroup

__all__ = [
    "AtomicInt",
    "AtomicValue",
    "Cond",
    "Mutex",
    "Once",
    "RWMutex",
    "SharedVar",
    "SyncMap",
    "WaitGroup",
]
