"""``sync.WaitGroup``.

The rule whose violation causes 6 of the paper's non-blocking bugs
(Figure 9): ``Add`` must happen-before ``Wait``.  The simulator enforces
Go's runtime checks (panic on negative counter) but — like Go — cannot
stop a racy Add/Wait; that misuse is what the Figure 9 kernel reproduces.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from ..runtime.errors import GoPanic
from ..runtime.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class _Ticket:
    __slots__ = ("goroutine", "released")

    def __init__(self, goroutine):
        self.goroutine = goroutine
        self.released = False


class WaitGroup:
    """Counter-based barrier, like ``sync.WaitGroup``."""

    def __init__(self, rt: "Runtime", name: Optional[str] = None):
        self._rt = rt
        self._sched = rt.sched
        self.id = rt.new_obj_id()
        self.name = name or f"wg#{self.id}"
        self._counter = 0
        self._waiters: List[_Ticket] = []

    @property
    def counter(self) -> int:
        return self._counter

    def add(self, delta: int) -> None:
        """Adjust the counter, like ``wg.Add(delta)``."""
        self._sched.schedule_point()
        self._counter += delta
        if self._counter < 0:
            raise GoPanic("sync: negative WaitGroup counter")
        self._sched.emit(EventKind.WG_ADD, obj=self.id, info={"delta": delta})
        if self._counter == 0:
            self._release_all()

    def done(self) -> None:
        """Decrement by one, like ``wg.Done()``."""
        self._sched.schedule_point()
        self._counter -= 1
        if self._counter < 0:
            raise GoPanic("sync: negative WaitGroup counter")
        self._sched.emit(EventKind.WG_DONE, obj=self.id)
        if self._counter == 0:
            self._release_all()

    def wait(self) -> None:
        """Block until the counter reaches zero, like ``wg.Wait()``.

        If the counter is already zero — including the Figure 9 misuse where
        ``Wait`` races ahead of ``Add`` — it returns immediately.
        """
        self._sched.schedule_point()
        me = self._sched.current
        while self._counter > 0:
            ticket = _Ticket(me)
            self._waiters.append(ticket)
            while not ticket.released:
                self._sched.block(f"waitgroup.wait:{self.name}", obj=self.id)
        self._sched.emit(EventKind.WG_WAIT, obj=self.id)

    def _release_all(self) -> None:
        waiters, self._waiters = self._waiters, []
        for ticket in waiters:
            ticket.released = True
            self._sched.ready(ticket.goroutine)

    def __repr__(self) -> str:
        return f"<WaitGroup {self.name} counter={self._counter} waiters={len(self._waiters)}>"
