"""Built-in performance benchmarks: ``repro bench`` / ``python -m repro.bench``.

Times the three things the whole system's throughput hangs on:

* **single-run fast path** — one simulation with no observer and no kept
  trace, the configuration sweeps actually run in; reported per workload
  as ms/run and scheduler steps/s;
* **sweep scaling** — a 64-seed sweep at ``jobs=1`` vs ``jobs=N``
  (:mod:`repro.parallel`), with the byte-identical-results check that the
  equivalence tests also enforce.  The sweep is measured twice: *cold*
  (fresh pool, empty memo — the first sweep a process ever runs) and
  *steady-state* (persistent pool already warm, cross-run memo primed —
  every sweep after the first over the same work, which is what the study
  pipeline's repeated tables and benchmark rounds actually pay).  The
  headline ``speedup`` is the steady-state one; the cold wall time is
  recorded alongside so nothing hides.
* **exploration pruning** — systematic exploration to exhaustion on
  corpus kernels with sleep-set pruning off vs on
  (:mod:`repro.detect.systematic`): same verdicts, fewer runs.

Output is a stable JSON document (``BENCH_simulator.json`` at the repo
root holds the committed baseline; CI's non-gating perf-smoke job uploads
a fresh one per run so trends are visible without failing builds, and
``--baseline BENCH_simulator.json`` prints a delta table against the
committed numbers).  Numbers are hardware-dependent — compare runs from
the same machine.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from .runtime._hotloop import HAS_COMPILED
from .runtime.runtime import run

#: Bump when the document layout changes.
#: 2: ``sweep`` split into cold/steady-state + ``pool_reuse``; ``explore``
#: section added.
#: 3: coroutine-core scheduler.  Every ``single`` cell records the
#: resolved ``backend`` and whether the ``compiled`` hot loop could drive
#: it; the document gains top-level ``backend``/``compiled`` fields and a
#: ``spin`` workload (the pure fast-path cell the ≥1M steps/s target is
#: measured on); ``--compare-backends`` emits a ``backends`` section.
#: 4: compiled channel/select/sync fast ops.  New ``channel_fastpath``
#: section (channel-heavy cells timed compiled vs forced-pure, with the
#: schedule-digest parity witness), ``loadgen100k`` (a 100k-request echo
#: load run, compiled vs pure wall time), and ``fallbacks`` (backend
#: fallback counts plus the fast-op engage/bail counters accumulated over
#: the whole bench process); ``single`` cells gain ``fastops_per_run`` and
#: ``compiled`` now reports what the run actually had loaded.
SCHEMA = 4


# ----------------------------------------------------------------------
# Workloads (shared with benchmarks/bench_simulator_perf.py)
# ----------------------------------------------------------------------


def pingpong(rt) -> None:
    """Unbuffered rendezvous: 50 round trips between two goroutines."""
    ping = rt.make_chan()
    pong = rt.make_chan()

    def echo():
        for _ in range(50):
            ping.recv()
            pong.send(None)

    rt.go(echo)
    for _ in range(50):
        ping.send(None)
        pong.recv()


def mutex_contention(rt) -> None:
    """Four workers taking one mutex 25 times each."""
    mu = rt.mutex()
    done = rt.waitgroup()

    def worker():
        for _ in range(25):
            with mu:
                pass
        done.done()

    for _ in range(4):
        done.add(1)
        rt.go(worker)
    done.wait()


def select_fanin(rt) -> None:
    """Four feeders fanning into one select loop."""
    from .chan import recv as recv_case

    channels = [rt.make_chan(1) for _ in range(4)]

    def feeder(ch):
        for i in range(10):
            ch.send(i)

    for ch in channels:
        rt.go(feeder, ch)
    got = 0
    while got < 40:
        rt.select(*[recv_case(ch) for ch in channels])
        got += 1


def spawn_heavy(rt) -> None:
    """Forty short-lived goroutines against one waitgroup."""
    wg = rt.waitgroup()
    for _ in range(40):
        wg.add(1)
        rt.go(wg.done)
    wg.wait()


def spin(rt) -> None:
    """Pure scheduler steps: four workers yielding 2500 times each.

    Nothing blocks until the very end, so every step is pick → switch →
    requeue — the fast-path cell the compiled hot-loop target (≥1M
    steps/s single-core) is measured on.
    """
    wg = rt.waitgroup()

    def worker():
        for _ in range(2500):
            rt.gosched()
        wg.done()

    for _ in range(4):
        wg.add(1)
        rt.go(worker)
    wg.wait()


WORKLOADS: Dict[str, Callable[[Any], None]] = {
    "pingpong": pingpong,
    "mutex": mutex_contention,
    "select_fanin": select_fanin,
    "spawn": spawn_heavy,
    "spin": spin,
}


# ----------------------------------------------------------------------
# Channel-heavy workloads (the ``channel_fastpath`` cells)
#
# Long enough that per-run fixed costs (spawn, teardown) vanish and the
# time is the primitive operations themselves — the cells the ≥3x
# compiled-vs-pure fast-op target is measured on.
# ----------------------------------------------------------------------


def pingpong_heavy(rt) -> None:
    """Unbuffered rendezvous: 1000 round trips between two goroutines."""
    ping = rt.make_chan()
    pong = rt.make_chan()

    def echo():
        for _ in range(1000):
            ping.recv()
            pong.send(None)

    rt.go(echo)
    for _ in range(1000):
        ping.send(None)
        pong.recv()


def select_fanin_heavy(rt) -> None:
    """Four feeders x 250 sends fanning into one select loop.

    The case list is built once and reused — cases carry no per-select
    state — so the loop times the select operation, not case-object
    allocation.
    """
    from .chan import recv as recv_case

    channels = [rt.make_chan(1) for _ in range(4)]

    def feeder(ch):
        for i in range(250):
            ch.send(i)

    for ch in channels:
        rt.go(feeder, ch)
    cases = [recv_case(ch) for ch in channels]
    for _ in range(1000):
        rt.select(*cases)


def mutex_heavy(rt) -> None:
    """Four workers taking one mutex 500 times each."""
    mu = rt.mutex()
    done = rt.waitgroup()

    def worker():
        for _ in range(500):
            with mu:
                pass
        done.done()

    for _ in range(4):
        done.add(1)
        rt.go(worker)
    done.wait()


CHANNEL_WORKLOADS: Dict[str, Callable[[Any], None]] = {
    "pingpong_heavy": pingpong_heavy,
    "select_fanin_heavy": select_fanin_heavy,
    "mutex_heavy": mutex_heavy,
}


# ----------------------------------------------------------------------
# Network workloads (repro.net; see BENCH_net.json for the baseline)
# ----------------------------------------------------------------------


def net_pingpong(rt) -> None:
    """Fifty request/reply round trips over one fabric connection."""
    from .net import Node

    net = rt.network(name="bench", log_messages=False)
    server = Node(net, "server")
    listener = server.listen("echo")

    def serve() -> None:
        conn = listener.accept()
        server.track(conn)
        for payload in conn:
            conn.send(payload)

    server.go(serve, name="echo")
    client = Node(net, "client")
    conn = client.dial(server.addr("echo"))
    for i in range(50):
        conn.send(i)
        conn.recv_ok()
    conn.shutdown()
    client.stop()
    server.stop()


def net_rpc(rt) -> None:
    """Fifty unary echo RPCs through the multiplexed client."""
    from .net import Node, RpcClient, RpcServer

    net = rt.network(name="bench", log_messages=False)
    server = Node(net, "server")
    rpc = RpcServer(server)
    rpc.register("echo", lambda payload: payload)
    rpc.serve(server.listen("rpc"))
    client_node = Node(net, "client")
    client = RpcClient(client_node, server.addr("rpc"))
    for i in range(50):
        client.call("echo", i)
    client.close()
    client_node.stop()
    server.stop()


NET_WORKLOADS: Dict[str, Callable[[Any], None]] = {
    "net_pingpong": net_pingpong,
    "net_rpc": net_rpc,
}


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------


def bench_single(
    program: Callable[[Any], None],
    keep_trace: bool = False,
    rounds: int = 30,
    repeats: int = 3,
    seed: int = 1,
    backend: str = "coroutine",
    pure: bool = False,
) -> Dict[str, Any]:
    """Best-of-``repeats`` timing of ``rounds`` serial runs of ``program``.

    Each cell records the resolved ``backend`` (what ``"coroutine"``
    actually picked on this host), ``compiled`` — whether the run had the
    compiled accelerators loaded — and ``fastops_per_run``, how many
    channel/select/sync operations per run the compiled fast paths
    actually executed (0 on traced cells: a live trace consumer makes
    every fast op bail to the observable pure primitive).

    ``pure=True`` times the same cell under
    :class:`repro.runtime._hotloop.force_pure` — every compiled path off,
    as under ``REPRO_NO_CEXT=1`` — which is how the ``channel_fastpath``
    speedups are measured in one process.
    """
    from contextlib import nullcontext

    from .runtime._hotloop import force_pure, get_fastops

    ctx = force_pure if pure else nullcontext
    with ctx():
        # Warm-up: imports, code objects, site caches.
        for _ in range(3):
            warm = run(program, seed=seed, keep_trace=keep_trace,
                       backend=backend)
        fast = get_fastops()
        if fast is not None:
            fast.fastops_stats(True)  # reset the engage counters
        best = float("inf")
        steps = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            total_steps = 0
            for _ in range(rounds):
                total_steps += run(program, seed=seed, keep_trace=keep_trace,
                                   backend=backend).steps
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
                steps = total_steps
        engaged = 0
        if fast is not None:
            engaged = sum(fast.fastops_stats(True)["engaged"].values())
    per_run = best / rounds
    return {
        "ms_per_run": round(per_run * 1e3, 4),
        "steps_per_run": steps // rounds,
        "steps_per_s": round(steps / best, 1),
        "backend": warm.backend,
        "compiled": bool(warm.compiled),
        # Deterministic runs engage the same ops every time, so the
        # integer division over all timed runs is exact.
        "fastops_per_run": engaged // (repeats * rounds),
    }


def run_backend_comparison(repeats: int = 3, seed: int = 1) -> Dict[str, Any]:
    """The ``backends`` section: thread vs coroutine, side by side.

    For every single-run workload, fast-path steps/s on the opt-in
    ``backend="thread"`` compatibility mode next to the coroutine default,
    plus the determinism witness: one traced run per backend and whether
    the schedule digests came back byte-identical.
    """
    from .parallel.summary import schedule_digest

    rows: Dict[str, Any] = {}
    for name, program in WORKLOADS.items():
        thread = bench_single(program, keep_trace=False, repeats=repeats,
                              seed=seed, backend="thread")
        coro = bench_single(program, keep_trace=False, repeats=repeats,
                            seed=seed, backend="coroutine")
        digest_thread = schedule_digest(
            run(program, seed=seed, keep_trace=True, backend="thread"))
        digest_coro = schedule_digest(
            run(program, seed=seed, keep_trace=True, backend="coroutine"))
        rows[name] = {
            "thread_steps_per_s": thread["steps_per_s"],
            "coroutine_steps_per_s": coro["steps_per_s"],
            "coroutine_backend": coro["backend"],
            "compiled": coro["compiled"],
            "speedup": (round(coro["steps_per_s"] / thread["steps_per_s"], 2)
                        if thread["steps_per_s"] else None),
            "digests_equal": digest_thread == digest_coro,
        }
    return {
        "workloads": rows,
        "all_digests_equal": all(row["digests_equal"]
                                 for row in rows.values()),
    }


def run_fastpath_comparison(repeats: int = 5, seed: int = 1,
                            rounds: int = 15) -> Dict[str, Any]:
    """The ``channel_fastpath`` section: compiled fast ops vs forced pure.

    For every channel-heavy workload, fast-path steps/s with the compiled
    channel/select/sync ops engaged next to the same cell under
    :class:`force_pure` (every compiled path off), plus the determinism
    witness: one traced run per mode and whether the schedule digests came
    back byte-identical.  ``min_speedup`` is the rollup the ≥3x target is
    checked against.
    """
    from .parallel.summary import schedule_digest
    from .runtime._hotloop import force_pure

    rows: Dict[str, Any] = {}
    for name, program in CHANNEL_WORKLOADS.items():
        # Interleave the compiled and pure samples instead of timing one
        # side's repeats back to back: on a noisy (shared/single-core)
        # host a slow stretch then lands on both sides of the ratio
        # rather than silently deflating whichever side it hit.
        compiled: Dict[str, Any] = {}
        pure: Dict[str, Any] = {}
        for _ in range(repeats):
            c = bench_single(program, keep_trace=False, rounds=rounds,
                             repeats=1, seed=seed)
            p = bench_single(program, keep_trace=False, rounds=rounds,
                             repeats=1, seed=seed, pure=True)
            if c["steps_per_s"] > compiled.get("steps_per_s", 0):
                compiled = c
            if p["steps_per_s"] > pure.get("steps_per_s", 0):
                pure = p
        digest_compiled = schedule_digest(
            run(program, seed=seed, keep_trace=True))
        with force_pure():
            digest_pure = schedule_digest(
                run(program, seed=seed, keep_trace=True))
        rows[name] = {
            "compiled_steps_per_s": compiled["steps_per_s"],
            "pure_steps_per_s": pure["steps_per_s"],
            "speedup": (round(compiled["steps_per_s"] / pure["steps_per_s"], 2)
                        if pure["steps_per_s"] else None),
            "fastops_per_run": compiled["fastops_per_run"],
            "backend": compiled["backend"],
            "digests_equal": digest_compiled == digest_pure,
        }
    return {
        "workloads": rows,
        "all_digests_equal": all(row["digests_equal"]
                                 for row in rows.values()),
        "min_speedup": min((row["speedup"] for row in rows.values()
                            if row["speedup"] is not None), default=None),
    }


def run_loadgen_fastpath(clients: int = 8, requests: int = 12_500,
                         seed: int = 1) -> Dict[str, Any]:
    """The ``loadgen100k`` section: 100k echo requests, compiled vs pure.

    One six-figure-request load-generator run (``requests`` is per
    client) timed with the compiled fast paths engaged and again under
    :class:`force_pure`; ``deterministic`` asserts the two summaries —
    latency histogram, step count, error counts — came back identical, so
    the speedup changed the wall clock and nothing else.  Each side is
    sampled twice, interleaved, best-of — one multi-second run is
    otherwise at the mercy of whatever else the host was doing.
    """
    from .net.demo import loadgen_summary
    from .runtime._hotloop import force_pure

    compiled_s = pure_s = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        compiled = loadgen_summary(seed=seed, clients=clients,
                                   requests=requests)
        compiled_s = min(compiled_s, time.perf_counter() - t0)
        with force_pure():
            t0 = time.perf_counter()
            pure = loadgen_summary(seed=seed, clients=clients,
                                   requests=requests)
            pure_s = min(pure_s, time.perf_counter() - t0)
    total = compiled["requests"]
    return {
        "clients": clients,
        "requests": total,
        "steps": compiled["steps"],
        "status": compiled["status"],
        "errors": compiled["errors"],
        "compiled_wall_s": round(compiled_s, 4),
        "pure_wall_s": round(pure_s, 4),
        "speedup": round(pure_s / compiled_s, 2) if compiled_s else None,
        "requests_per_wall_s": (round(total / compiled_s, 1)
                                if compiled_s else None),
        "steps_per_s": (round(compiled["steps"] / compiled_s, 1)
                        if compiled_s else None),
        "deterministic": compiled == pure,
    }


def collect_runtime_fallbacks() -> Dict[str, Any]:
    """The ``fallbacks`` section: what silently ran somewhere else.

    Two kinds of quiet substitution, surfaced so a bench document never
    hides them: backend fallbacks (a requested vehicle that was
    unavailable, counted per ``requested->used`` edge; the warning itself
    fires only once per process) and the compiled fast-op engage/bail
    counters accumulated since the last reset — a run that bailed every
    op is a run measured on the pure path.
    """
    from .runtime._hotloop import get_fastops
    from .runtime.scheduler import backend_fallbacks

    fast = get_fastops()
    stats = (fast.fastops_stats() if fast is not None
             else {"engaged": {}, "bailed": {}})
    return {
        "backend_fallbacks": backend_fallbacks(),
        "fastops": stats,
    }


def bench_sweep(
    program: Callable[[Any], None],
    n_seeds: int = 64,
    jobs: int = 0,
    keep_trace: bool = True,
    warm_rounds: int = 3,
) -> Dict[str, Any]:
    """Serial vs parallel sweep of ``n_seeds`` seeds, plus the equality check.

    Three measurements:

    * ``serial_s`` — ``jobs=1``, memo off: the baseline cost of the work.
    * ``parallel_cold_s`` — ``jobs=N`` after :func:`shutdown_pool`, memo
      off: pool creation + dispatch + execution, the first sweep a process
      pays.
    * ``steady_s`` — the last of ``warm_rounds`` repeat sweeps with the
      persistent pool alive and the cross-run memo primed by the earlier
      rounds: what every subsequent identical sweep costs.  ``speedup`` is
      ``serial_s / steady_s``; ``cold_speedup`` keeps the honest
      first-sweep number next to it.

    ``keep_trace=True`` so every summary carries a schedule digest and
    "identical" means the full interleavings matched — across the serial
    sweep, the cold parallel sweep, and all warm rounds — not just
    statuses.
    """
    from .parallel import effective_jobs, sweep_seeds
    from .parallel import engine as engine_mod
    from .parallel import memo as memo_mod

    if jobs <= 0:
        jobs = os.cpu_count() or 1
    seeds = list(range(n_seeds))
    memo_key = ("bench-sweep", program, n_seeds, keep_trace)

    with memo_mod.disable():
        t0 = time.perf_counter()
        serial = sweep_seeds(program, seeds, jobs=1, keep_trace=keep_trace)
        serial_s = time.perf_counter() - t0

        engine_mod.shutdown_pool()
        t0 = time.perf_counter()
        parallel = sweep_seeds(program, seeds, jobs=jobs,
                               keep_trace=keep_trace)
        parallel_cold_s = time.perf_counter() - t0

    stats_before = engine_mod.pool_stats()
    warm_s: List[float] = []
    warm_results: List[Any] = []
    for _ in range(max(1, warm_rounds)):
        t0 = time.perf_counter()
        warm_results.append(sweep_seeds(program, seeds, jobs=jobs,
                                        keep_trace=keep_trace,
                                        memo_key=memo_key))
        warm_s.append(time.perf_counter() - t0)
    stats_after = engine_mod.pool_stats()
    steady_s = warm_s[-1]

    identical = (serial == parallel
                 and all(r == serial for r in warm_results))
    return {
        "seeds": n_seeds,
        "jobs": jobs,
        "effective_jobs": effective_jobs(jobs, n_seeds),
        "serial_s": round(serial_s, 4),
        "parallel_cold_s": round(parallel_cold_s, 4),
        "steady_s": round(steady_s, 4),
        "speedup": round(serial_s / steady_s, 2) if steady_s else None,
        "cold_speedup": (round(serial_s / parallel_cold_s, 2)
                         if parallel_cold_s else None),
        "identical": identical,
        "pool_reuse": {
            "warm_rounds": len(warm_s),
            "warm_s": [round(s, 4) for s in warm_s],
            # A healthy engine creates zero new pools across the warm
            # rounds (the cold sweep's pool is reused) and serves the
            # later rounds from the memo without dispatching at all.
            "pools_created": (stats_after["pools_created"]
                              - stats_before["pools_created"]),
            "dispatches": (stats_after["dispatches"]
                           - stats_before["dispatches"]),
            "serial_cutovers": (stats_after["serial_cutovers"]
                                - stats_before["serial_cutovers"]),
            "pool_alive": stats_after["pool_alive"],
        },
    }


# Fixed variants that explore to exhaustion quickly enough to benchmark,
# chosen across sub-causes (channel, channel+lock, message library, mutex,
# condition variable).  Savings on these are representative of the corpus.
EXPLORE_KERNELS = (
    "blocking-chan-cockroach-missing-case",
    "blocking-chan-etcd-error-path-no-send",
    "blocking-chanmix-docker-send-under-lock",
    "blocking-msglib-cockroach-ctx-no-cancel",
    "blocking-mutex-kubernetes-abba",
    "blocking-wait-kubernetes-cond-missed-signal",
)


def bench_explore(kernel_id: str, max_runs: int = 800) -> Dict[str, Any]:
    """Exploration to exhaustion on one kernel: raw tree vs pruned tree.

    Both passes run with the memo off so the times measure exploration,
    not cache hits; a third pass re-explores with the memo primed to show
    the cross-run short-circuit (``memo_runs_saved``).
    """
    from .bugs import registry
    from .detect.systematic import explore_systematic
    from .parallel import memo as memo_mod

    kernel = registry.get(kernel_id)
    kwargs = dict(kernel.run_kwargs)
    with memo_mod.disable():
        t0 = time.perf_counter()
        base = explore_systematic(kernel.fixed, stop_on=kernel.manifested,
                                  max_runs=max_runs, prune=False, memo=False,
                                  **kwargs)
        base_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        pruned = explore_systematic(kernel.fixed, stop_on=kernel.manifested,
                                    max_runs=max_runs, prune=True,
                                    memo=False, **kwargs)
        pruned_s = time.perf_counter() - t0
    # Prime, then repeat: the second memoized exploration replays the trie.
    explore_systematic(kernel.fixed, stop_on=kernel.manifested,
                       max_runs=max_runs, **kwargs)
    memoized = explore_systematic(kernel.fixed, stop_on=kernel.manifested,
                                  max_runs=max_runs, **kwargs)
    saved_pct = (100.0 * (base.runs - pruned.runs) / base.runs
                 if base.runs else 0.0)
    return {
        "runs_unpruned": base.runs,
        "runs_pruned": pruned.runs,
        "saved_pct": round(saved_pct, 1),
        "branches_pruned": pruned.pruned,
        "unpruned_s": round(base_s, 4),
        "pruned_s": round(pruned_s, 4),
        "exhausted_unpruned": base.exhausted,
        "exhausted_pruned": pruned.exhausted,
        "verdict_match": (base.found == pruned.found
                          and (not base.exhausted or pruned.exhausted)),
        "memo_runs_saved": memoized.runs_saved,
    }


def run_explore_benchmarks(kernel_ids: Sequence[str] = EXPLORE_KERNELS,
                           max_runs: int = 800) -> Dict[str, Any]:
    """The ``explore`` section: per-kernel pruning savings + the rollup."""
    kernels = {kid: bench_explore(kid, max_runs=max_runs)
               for kid in kernel_ids}
    rows = list(kernels.values())
    return {
        "max_runs": max_runs,
        "kernels": kernels,
        "min_saved_pct": min(row["saved_pct"] for row in rows),
        "all_verdicts_match": all(row["verdict_match"] for row in rows),
    }


def run_predict_benchmarks(runs_per_kernel: int = 15,
                           triage_kernel_ids: Sequence[str] = EXPLORE_KERNELS,
                           max_runs: int = 800) -> Dict[str, Any]:
    """The ``predict`` section: offline-analysis quality and triage savings.

    Two claims are measured.  *Quality*: over the whole corpus, predict
    on one recorded (preferably passing) run vs the dynamic detectors
    over manifestation sweeps — recall, precision, and the offline
    analysis wall time.  *Savings*: on the bug-free exploration bench
    kernels, the triage screen (one recorded run) vs exploring the
    schedule tree to exhaustion — runs avoided when triage says skip,
    with the buggy variants as the no-false-skip control.
    """
    from .bugs import registry
    from .detect.systematic import explore_systematic
    from .parallel import memo as memo_mod
    from .predict import (build_predict_scorecard, predict_precision,
                          predict_recall, triage_kernel)

    t0 = time.perf_counter()
    rows = build_predict_scorecard(runs_per_kernel=runs_per_kernel)
    scorecard_s = time.perf_counter() - t0
    agreements: Dict[str, int] = {}
    for row in rows:
        agreements[row.agreement] = agreements.get(row.agreement, 0) + 1

    triage: Dict[str, Any] = {}
    false_skips = []
    for kid in triage_kernel_ids:
        kernel = registry.get(kid)
        kwargs = dict(kernel.run_kwargs)
        t0 = time.perf_counter()
        clean = triage_kernel(kernel, fixed=True)
        triage_s = time.perf_counter() - t0
        with memo_mod.disable():
            exploration = explore_systematic(
                kernel.fixed, stop_on=kernel.manifested,
                max_runs=max_runs, **kwargs)
        dirty = triage_kernel(kernel, fixed=False)
        if not dirty.needs_search:
            false_skips.append(kid)
        saved = exploration.runs - 1 if not clean.needs_search else 0
        triage[kid] = {
            "explore_runs": exploration.runs,
            "explore_exhausted": exploration.exhausted,
            "triage_clean": not clean.needs_search,
            "runs_saved": saved,
            "triage_s": round(triage_s, 4),
            "buggy_flagged": dirty.needs_search,
        }

    return {
        "scorecard": {
            "kernels": len(rows),
            "runs_per_kernel": runs_per_kernel,
            "recall": round(predict_recall(rows), 4),
            "precision": round(predict_precision(rows), 4),
            "agreements": agreements,
            "predict_wall_s": round(sum(r.predict_wall_s for r in rows), 4),
            "scorecard_wall_s": round(scorecard_s, 4),
        },
        "triage": {
            "max_runs": max_runs,
            "kernels": triage,
            "total_explore_runs": sum(row["explore_runs"]
                                      for row in triage.values()),
            "total_runs_saved": sum(row["runs_saved"]
                                    for row in triage.values()),
            "all_fixed_screened_clean": all(row["triage_clean"]
                                            for row in triage.values()),
            "false_skips": false_skips,
        },
    }


def run_static_benchmarks(triage_kernel_ids: Sequence[str] = EXPLORE_KERNELS,
                          max_runs: int = 800) -> Dict[str, Any]:
    """The ``static`` section: scan quality and sweep-triage savings.

    Mirrors the predict section one tier down: *quality* is the whole
    corpus (both variants) plus the mini-apps scored against the
    ground-truth taxonomy labels — no execution at all; *savings* is the
    static screen vs exploring the schedule tree to exhaustion on the
    bug-free exploration bench kernels, with the buggy variants as the
    no-false-skip control.  Unlike predict, a clean static verdict costs
    zero recorded runs, so it saves the whole exploration budget.
    """
    from .bugs import registry
    from .detect.systematic import explore_systematic
    from .parallel import memo as memo_mod
    from .static import (build_static_scorecard, checker_timings, scan_apps,
                         static_precision, static_recall, triage_kernel)

    t0 = time.perf_counter()
    rows = build_static_scorecard()
    scorecard_s = time.perf_counter() - t0
    apps = scan_apps()

    triage: Dict[str, Any] = {}
    false_skips = []
    for kid in triage_kernel_ids:
        kernel = registry.get(kid)
        kwargs = dict(kernel.run_kwargs)
        t0 = time.perf_counter()
        clean = triage_kernel(kernel, fixed=True)
        triage_s = time.perf_counter() - t0
        with memo_mod.disable():
            exploration = explore_systematic(
                kernel.fixed, stop_on=kernel.manifested,
                max_runs=max_runs, **kwargs)
        dirty = triage_kernel(kernel, fixed=False)
        if not dirty.needs_search:
            false_skips.append(kid)
        saved = exploration.runs if not clean.needs_search else 0
        triage[kid] = {
            "explore_runs": exploration.runs,
            "explore_exhausted": exploration.exhausted,
            "triage_clean": not clean.needs_search,
            "runs_saved": saved,
            "triage_s": round(triage_s, 4),
            "buggy_flagged": dirty.needs_search,
        }

    return {
        "scorecard": {
            "kernels": len(rows),
            "caught": sum(1 for r in rows if r.caught),
            "missed": [r.kernel_id for r in rows if not r.caught],
            "false_positives": [r.kernel_id for r in rows
                                if r.fixed_flagged and r.fixed_expected_clean],
            "recall": round(static_recall(rows), 4),
            "precision": round(static_precision(rows), 4),
            "scan_wall_s": round(sum(r.wall_ms for r in rows) / 1000, 4),
            "scorecard_wall_s": round(scorecard_s, 4),
            "checker_seconds": {k: round(v, 4)
                                for k, v in checker_timings(rows).items()},
            "apps_clean": not apps.found,
            "apps_wall_s": round(apps.wall_s, 4),
        },
        "triage": {
            "max_runs": max_runs,
            "kernels": triage,
            "total_explore_runs": sum(row["explore_runs"]
                                      for row in triage.values()),
            "total_runs_saved": sum(row["runs_saved"]
                                    for row in triage.values()),
            "all_fixed_screened_clean": all(row["triage_clean"]
                                            for row in triage.values()),
            "false_skips": false_skips,
        },
    }


def run_benchmarks(jobs: int = 0, repeats: int = 3,
                   sweep_seeds_n: int = 64,
                   explore: bool = True,
                   loadgen: bool = True) -> Dict[str, Any]:
    """The full document: single-run timings + fast-path comparison +
    sweep scaling + the 100k-request load run + exploration."""
    single: Dict[str, Any] = {}
    for name, program in WORKLOADS.items():
        single[name] = {
            "fast": bench_single(program, keep_trace=False, repeats=repeats),
            "traced": bench_single(program, keep_trace=True, repeats=repeats),
        }
    document = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpus": os.cpu_count(),
        "backend": next(iter(single.values()))["fast"]["backend"],
        "compiled": HAS_COMPILED,
        "single": single,
        # Deliberately not wired to ``repeats``: the speedup ratio needs
        # the noise-resistant sampling policy (interleaved best-of-5)
        # regardless of how coarse the single-run cells are.
        "channel_fastpath": run_fastpath_comparison(),
        "sweep": bench_sweep(pingpong, n_seeds=sweep_seeds_n, jobs=jobs),
    }
    if loadgen:
        document["loadgen100k"] = run_loadgen_fastpath()
    if explore:
        document["explore"] = run_explore_benchmarks()
    # Last, so the counters cover everything the bench process ran.
    document["fallbacks"] = collect_runtime_fallbacks()
    return document


def run_net_benchmarks(repeats: int = 3, loadgen_clients: int = 8,
                       loadgen_requests: int = 250) -> Dict[str, Any]:
    """The network document: fabric/RPC timings + a loadgen throughput row.

    The loadgen row runs twice on the same seed; ``deterministic`` asserts
    the two summaries (latency histogram, fabric stats, step count — all
    of it) came back identical.
    """
    from .net.demo import loadgen_summary

    single: Dict[str, Any] = {}
    for name, program in NET_WORKLOADS.items():
        single[name] = {
            "fast": bench_single(program, keep_trace=False, repeats=repeats),
            "traced": bench_single(program, keep_trace=True, repeats=repeats),
        }

    t0 = time.perf_counter()
    first = loadgen_summary(seed=1, clients=loadgen_clients,
                            requests=loadgen_requests)
    wall = time.perf_counter() - t0
    second = loadgen_summary(seed=1, clients=loadgen_clients,
                             requests=loadgen_requests)
    loadgen = {
        "clients": loadgen_clients,
        "requests": first["requests"],
        "steps": first["steps"],
        "virtual_s": first["virtual_s"],
        "rps_virtual": first["rps_virtual"],
        "wall_s": round(wall, 4),
        "requests_per_wall_s": round(first["requests"] / wall, 1) if wall else None,
        "steps_per_s": round(first["steps"] / wall, 1) if wall else None,
        "errors": first["errors"],
        "deterministic": first == second,
    }
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpus": os.cpu_count(),
        "single": single,
        "loadgen": loadgen,
    }


def run_recovery_benchmarks(sizes: Sequence[int] = (3, 5),
                            seeds: Sequence[int] = tuple(range(4)),
                            max_steps: int = 600_000) -> Dict[str, Any]:
    """The recovery document: crash-recovery time distributions.

    Sweeps the durable, electing, supervised minietcd cluster across
    cluster sizes × two crash-fault rates (a single ``crash_restart`` and
    a recurring ``crash-storm``), recording per-cell convergence verdicts
    and the distribution of virtual-time recovery latency — how long
    after the crash the cluster was consistent and progressing again.
    """
    import statistics
    from functools import partial

    from .inject import plans
    from .inject.scenarios import net_etcd_recovery_scenario

    fault_plans = {
        "crash-restart": plans.crash_restart(delay=0.3),
        "crash-storm": plans.crash_storm(times=3, delay=0.3),
    }
    cells: Dict[str, Any] = {}
    for size in sizes:
        program = partial(net_etcd_recovery_scenario, size=size)
        for plan_name, plan in fault_plans.items():
            verdicts: Dict[str, int] = {}
            times: List[float] = []
            faults = 0
            t0 = time.perf_counter()
            for seed in seeds:
                result = run(program, seed=seed, inject=plan,
                             max_steps=max_steps)
                main = (result.main_result
                        if isinstance(result.main_result, dict) else {})
                verdict = main.get("verdict", result.status)
                verdicts[verdict] = verdicts.get(verdict, 0) + 1
                faults += len(result.injected)
                if main.get("recovery_s") is not None:
                    times.append(main["recovery_s"])
            wall = time.perf_counter() - t0
            cells[f"size{size}/{plan_name}"] = {
                "size": size,
                "plan": plan_name,
                "seeds": len(list(seeds)),
                "faults_fired": faults,
                "verdicts": verdicts,
                "recovered": verdicts.get("recovered", 0),
                "recovery_s": (None if not times else {
                    "min": round(min(times), 4),
                    "median": round(statistics.median(times), 4),
                    "max": round(max(times), 4),
                    "mean": round(statistics.fmean(times), 4),
                    "samples": len(times),
                }),
                "wall_s": round(wall, 4),
            }
    return {
        "sizes": list(sizes),
        "seeds": len(list(seeds)),
        "plans": sorted(fault_plans),
        "cells": cells,
        "all_recovered": all(
            cell["recovered"] == cell["seeds"] for cell in cells.values()),
    }


def render(document: Dict[str, Any]) -> str:
    """Human-readable table of a benchmark document."""
    lines: List[str] = []
    header = (f"simulator benchmarks (python {document['python']}, "
              f"{document['cpus']} cpu(s)")
    if "backend" in document:
        hot = ("compiled hot loop" if document.get("compiled")
               else "pure hot loop")
        header += f", backend={document['backend']}, {hot}"
    lines.append(header + ")")
    if "single" in document:
        lines.append("")
        lines.append(f"{'workload':<14} {'fast ms/run':>12} "
                     f"{'fast steps/s':>14} "
                     f"{'traced ms/run':>14} {'traced steps/s':>15}")
        for name, row in document["single"].items():
            fast, traced = row["fast"], row["traced"]
            lines.append(f"{name:<14} {fast['ms_per_run']:>12.3f} "
                         f"{fast['steps_per_s']:>14,.0f} "
                         f"{traced['ms_per_run']:>14.3f} "
                         f"{traced['steps_per_s']:>15,.0f}")
    if "channel_fastpath" in document:
        fp = document["channel_fastpath"]
        lines.append("")
        lines.append("channel fast paths (compiled ops vs forced pure, "
                     "steps/s):")
        lines.append(f"{'workload':<20} {'compiled':>12} {'pure':>12} "
                     f"{'speedup':>8} {'ops/run':>8} {'digests':>8}")
        for name, row in fp["workloads"].items():
            lines.append(
                f"{name:<20} {row['compiled_steps_per_s']:>12,.0f} "
                f"{row['pure_steps_per_s']:>12,.0f} "
                f"{row['speedup']:>7.2f}x {row['fastops_per_run']:>8} "
                f"{'equal' if row['digests_equal'] else 'DIFFER':>8}")
        lines.append(f"  min speedup {fp['min_speedup']}x, all schedule "
                     f"digests equal: {fp['all_digests_equal']}")
    if "backends" in document:
        cmp_doc = document["backends"]
        lines.append("")
        lines.append("backend comparison (fast path, steps/s):")
        lines.append(f"{'workload':<14} {'thread':>12} {'coroutine':>12} "
                     f"{'speedup':>8} {'vehicle':>10} {'digests':>8}")
        for name, row in cmp_doc["workloads"].items():
            lines.append(
                f"{name:<14} {row['thread_steps_per_s']:>12,.0f} "
                f"{row['coroutine_steps_per_s']:>12,.0f} "
                f"{row['speedup']:>7.2f}x {row['coroutine_backend']:>10} "
                f"{'equal' if row['digests_equal'] else 'DIFFER':>8}")
        lines.append(f"  all schedule digests equal: "
                     f"{cmp_doc['all_digests_equal']}")
    if "sweep" in document:
        sweep = document["sweep"]
        lines.append("")
        if "steady_s" in sweep:
            reuse = sweep["pool_reuse"]
            lines.append(
                f"sweep: {sweep['seeds']} seeds, jobs=1 "
                f"{sweep['serial_s']:.2f}s vs jobs={sweep['jobs']} cold "
                f"{sweep['parallel_cold_s']:.2f}s / steady "
                f"{sweep['steady_s']:.4f}s (steady speedup "
                f"{sweep['speedup']}x, cold {sweep['cold_speedup']}x, "
                f"identical={sweep['identical']})")
            lines.append(
                f"  pool reuse: {reuse['warm_rounds']} warm rounds, "
                f"{reuse['pools_created']} new pools, "
                f"{reuse['dispatches']} dispatches, "
                f"pool_alive={reuse['pool_alive']}")
        else:  # schema 1 document
            lines.append(
                f"sweep: {sweep['seeds']} seeds, jobs=1 "
                f"{sweep['serial_s']:.2f}s vs jobs={sweep['jobs']} "
                f"{sweep['parallel_s']:.2f}s (speedup {sweep['speedup']}x, "
                f"effective workers {sweep['effective_jobs']}, "
                f"identical={sweep['identical']})")
    if "explore" in document:
        explore = document["explore"]
        lines.append("")
        lines.append(f"exploration pruning (to exhaustion, max_runs="
                     f"{explore['max_runs']}):")
        lines.append(f"{'kernel':<45} {'unpruned':>9} {'pruned':>7} "
                     f"{'saved':>7} {'verdicts':>9}")
        for kid, row in explore["kernels"].items():
            lines.append(
                f"{kid:<45} {row['runs_unpruned']:>9} "
                f"{row['runs_pruned']:>7} {row['saved_pct']:>6.1f}% "
                f"{'match' if row['verdict_match'] else 'MISMATCH':>9}")
        lines.append(f"  min saved {explore['min_saved_pct']:.1f}%, "
                     f"all verdicts match: {explore['all_verdicts_match']}")
    if "predict" in document:
        predict = document["predict"]
        card, triage = predict["scorecard"], predict["triage"]
        lines.append("")
        lines.append(
            f"predictive analysis ({card['kernels']} kernels, one "
            f"recorded run each): recall {card['recall']:.0%} / "
            f"precision {card['precision']:.0%} vs dynamic detectors, "
            f"offline analysis {card['predict_wall_s']:.2f}s total")
        lines.append(f"triage screen vs explore-to-exhaustion "
                     f"(max_runs={triage['max_runs']}):")
        lines.append(f"{'kernel':<45} {'explore':>8} {'triage':>7} "
                     f"{'saved':>6} {'buggy':>8}")
        for kid, row in triage["kernels"].items():
            lines.append(
                f"{kid:<45} {row['explore_runs']:>8} "
                f"{'clean' if row['triage_clean'] else 'FLAG':>7} "
                f"{row['runs_saved']:>6} "
                f"{'flagged' if row['buggy_flagged'] else 'MISSED':>8}")
        lines.append(f"  total runs saved {triage['total_runs_saved']}/"
                     f"{triage['total_explore_runs']}, false skips: "
                     f"{triage['false_skips'] or 'none'}")
    if "static" in document:
        static = document["static"]
        card, triage = static["scorecard"], static["triage"]
        lines.append("")
        lines.append(
            f"static analysis ({card['kernels']} kernels, both variants, "
            f"zero executions): recall {card['recall']:.0%} / precision "
            f"{card['precision']:.0%} vs ground-truth labels, full scan "
            f"{card['scan_wall_s']:.2f}s, mini-apps "
            f"{'clean' if card['apps_clean'] else 'FLAGGED'} "
            f"({card['apps_wall_s'] * 1000:.0f}ms)")
        checker_text = " ".join(
            f"{stage}:{secs:.2f}s" for stage, secs
            in sorted(card["checker_seconds"].items()))
        lines.append(f"  per-stage wall: {checker_text}")
        if card["missed"] or card["false_positives"]:
            lines.append(f"  missed: {card['missed'] or 'none'}, "
                         f"false positives: "
                         f"{card['false_positives'] or 'none'}")
        lines.append(f"static screen vs explore-to-exhaustion "
                     f"(max_runs={triage['max_runs']}):")
        lines.append(f"{'kernel':<45} {'explore':>8} {'static':>7} "
                     f"{'saved':>6} {'buggy':>8}")
        for kid, row in triage["kernels"].items():
            lines.append(
                f"{kid:<45} {row['explore_runs']:>8} "
                f"{'clean' if row['triage_clean'] else 'FLAG':>7} "
                f"{row['runs_saved']:>6} "
                f"{'flagged' if row['buggy_flagged'] else 'MISSED':>8}")
        lines.append(f"  total runs saved {triage['total_runs_saved']}/"
                     f"{triage['total_explore_runs']}, false skips: "
                     f"{triage['false_skips'] or 'none'}")
    if "loadgen" in document:
        lg = document["loadgen"]
        lines.append("")
        lines.append(
            f"loadgen: {lg['requests']} requests from {lg['clients']} "
            f"client(s) in {lg['wall_s']:.2f}s wall "
            f"({lg['requests_per_wall_s']:,.0f} req/s wall, "
            f"{lg['rps_virtual']:,.0f} req/s virtual, errors={lg['errors']}, "
            f"deterministic={lg['deterministic']})")
    if "loadgen100k" in document:
        lg = document["loadgen100k"]
        lines.append("")
        lines.append(
            f"loadgen 100k: {lg['requests']:,} requests from "
            f"{lg['clients']} client(s), compiled {lg['compiled_wall_s']:.2f}s"
            f" vs pure {lg['pure_wall_s']:.2f}s wall "
            f"({lg['speedup']}x, {lg['requests_per_wall_s']:,.0f} req/s, "
            f"{lg['steps_per_s']:,.0f} steps/s, errors={lg['errors']}, "
            f"deterministic={lg['deterministic']})")
    if "fallbacks" in document:
        fb = document["fallbacks"]
        edges = fb.get("backend_fallbacks") or {}
        bailed = {op: n for op, n in fb["fastops"].get("bailed", {}).items()
                  if n}
        engaged = sum(fb["fastops"].get("engaged", {}).values())
        lines.append("")
        edge_text = (" ".join(f"{edge}:{n}" for edge, n
                              in sorted(edges.items())) or "none")
        bail_text = (" ".join(f"{op}:{n}" for op, n
                              in sorted(bailed.items())) or "none")
        lines.append(f"fallbacks: backend {edge_text}; fast ops engaged "
                     f"{engaged:,}, bailed {bail_text}")
    if "recovery" in document:
        recovery = document["recovery"]
        lines.append("")
        lines.append(f"crash recovery ({recovery['seeds']} seed(s) per "
                     f"cell; recovery_s is virtual time to consistent + "
                     f"progressing):")
        lines.append(f"{'cell':<24} {'recovered':>10} {'verdicts':<34} "
                     f"{'median s':>9} {'max s':>8} {'wall s':>8}")
        for name, cell in recovery["cells"].items():
            verdict_text = " ".join(f"{k}:{v}" for k, v
                                    in sorted(cell["verdicts"].items()))
            dist = cell["recovery_s"]
            lines.append(
                f"{name:<24} {cell['recovered']}/{cell['seeds']:<8} "
                f"{verdict_text:<34} "
                f"{dist['median'] if dist else '-':>9} "
                f"{dist['max'] if dist else '-':>8} "
                f"{cell['wall_s']:>8.2f}")
        lines.append(f"  all recovered: {recovery['all_recovered']}")
    return "\n".join(lines)


def _delta(current: Optional[float], baseline: Optional[float]) -> str:
    if not current or not baseline:
        return "n/a"
    pct = 100.0 * (current - baseline) / baseline
    return f"{pct:+.1f}%"


def render_delta(current: Dict[str, Any], baseline: Dict[str, Any]) -> str:
    """Baseline-vs-current table: where did this run move the numbers?

    Tolerates a schema-1 baseline (no steady-state sweep, no explore
    section) so CI keeps printing deltas across the schema bump.
    """
    lines: List[str] = []
    lines.append(f"delta vs baseline (baseline schema "
                 f"{baseline.get('schema')}, current schema "
                 f"{current.get('schema')}; negative ms = faster)")
    base_single = baseline.get("single", {})
    if "single" in current and base_single:
        lines.append(f"{'workload':<14} {'fast ms':>9} {'base':>9} "
                     f"{'delta':>8} {'traced ms':>10} {'base':>9} {'delta':>8}")
        for name, row in current["single"].items():
            if name not in base_single:
                continue
            base_row = base_single[name]
            fast, bfast = row["fast"], base_row["fast"]
            traced, btraced = row["traced"], base_row["traced"]
            lines.append(
                f"{name:<14} {fast['ms_per_run']:>9.3f} "
                f"{bfast['ms_per_run']:>9.3f} "
                f"{_delta(fast['ms_per_run'], bfast['ms_per_run']):>8} "
                f"{traced['ms_per_run']:>10.3f} "
                f"{btraced['ms_per_run']:>9.3f} "
                f"{_delta(traced['ms_per_run'], btraced['ms_per_run']):>8}")
    if "sweep" in current and "sweep" in baseline:
        sweep, bsweep = current["sweep"], baseline["sweep"]
        base_speedup = bsweep.get("speedup")
        lines.append(
            f"sweep speedup: {sweep.get('speedup')}x vs {base_speedup}x "
            f"baseline (serial {sweep.get('serial_s')}s vs "
            f"{bsweep.get('serial_s')}s, "
            f"{_delta(sweep.get('serial_s'), bsweep.get('serial_s'))})")
    if "explore" in current:
        explore = current["explore"]
        bexplore = baseline.get("explore")
        if bexplore:
            lines.append(
                f"explore min saved: {explore['min_saved_pct']:.1f}% vs "
                f"{bexplore['min_saved_pct']:.1f}% baseline; verdicts "
                f"match: {explore['all_verdicts_match']}")
        else:
            lines.append(
                f"explore min saved: {explore['min_saved_pct']:.1f}% "
                "(no baseline section)")
    return "\n".join(lines)


def check_regression(current: Dict[str, Any], baseline: Dict[str, Any],
                     threshold_pct: float = 20.0) -> List[str]:
    """Throughput drops beyond ``threshold_pct`` vs the committed baseline.

    Compares ``steps_per_s`` for every single-run cell (fast and traced)
    and every ``channel_fastpath`` cell (compiled and pure) present in
    both documents and returns one human-readable line per regression; an
    empty list means nothing dropped past the threshold.  Cells whose
    recorded backend differs between the documents are still compared —
    the committed baseline is the number users actually get, whatever
    vehicle produced it — but the line says so.
    """
    regressions: List[str] = []
    base_single = baseline.get("single", {})
    for name, row in current.get("single", {}).items():
        base_row = base_single.get(name)
        if not base_row:
            continue
        for cell in ("fast", "traced"):
            cur, base = row[cell], base_row[cell]
            cur_sps, base_sps = cur["steps_per_s"], base["steps_per_s"]
            if not base_sps or cur_sps >= base_sps * (1 - threshold_pct / 100):
                continue
            drop = 100.0 * (base_sps - cur_sps) / base_sps
            note = ""
            cur_b, base_b = cur.get("backend"), base.get("backend")
            if base_b is not None and cur_b != base_b:
                note = f" (backend {base_b} -> {cur_b})"
            regressions.append(
                f"{name}/{cell}: {cur_sps:,.0f} steps/s vs baseline "
                f"{base_sps:,.0f} (-{drop:.1f}%, threshold "
                f"{threshold_pct:.0f}%){note}")
    base_fastpath = baseline.get("channel_fastpath", {}).get("workloads", {})
    for name, row in (current.get("channel_fastpath", {})
                      .get("workloads", {}).items()):
        base_row = base_fastpath.get(name)
        if not base_row:
            continue
        for cell in ("compiled_steps_per_s", "pure_steps_per_s"):
            cur_sps, base_sps = row.get(cell), base_row.get(cell)
            if (not cur_sps or not base_sps
                    or cur_sps >= base_sps * (1 - threshold_pct / 100)):
                continue
            drop = 100.0 * (base_sps - cur_sps) / base_sps
            label = cell.removesuffix("_steps_per_s")
            regressions.append(
                f"{name}/{label}: {cur_sps:,.0f} steps/s vs baseline "
                f"{base_sps:,.0f} (-{drop:.1f}%, threshold "
                f"{threshold_pct:.0f}%)")
    return regressions


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="simulator performance benchmarks (single-run fast path "
                    "+ parallel sweep scaling + exploration pruning)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="workers for the sweep benchmark "
                             "(default: all cpus)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="timing repeats per workload; best is kept "
                             "(default: 3)")
    parser.add_argument("--sweep-seeds", type=int, default=64, metavar="N",
                        help="seeds in the sweep benchmark (default: 64)")
    parser.add_argument("--net", action="store_true",
                        help="run the network benchmarks (fabric round "
                             "trips, RPC echo, loadgen throughput) instead")
    parser.add_argument("--explore", action="store_true",
                        help="run only the exploration-pruning benchmarks "
                             "(runs to exhaustion, pruned vs unpruned)")
    parser.add_argument("--recovery", action="store_true",
                        help="run the crash-recovery benchmarks (recovery "
                             "time under cluster-size x fault-rate sweep) "
                             "instead")
    parser.add_argument("--predict", action="store_true",
                        help="run the predictive-analysis benchmarks "
                             "(offline scorecard vs dynamic detectors + "
                             "triage savings) instead")
    parser.add_argument("--static", action="store_true",
                        help="run the static-analysis benchmarks instead "
                             "(scorecard vs ground-truth labels + triage "
                             "savings; baseline: BENCH_static.json)")
    parser.add_argument("--compare-backends", action="store_true",
                        help="run only the backend comparison (thread "
                             "compatibility mode vs the coroutine default, "
                             "steps/s side by side + schedule-digest "
                             "equality) instead")
    parser.add_argument("--baseline", metavar="FILE",
                        help="print a delta table against a committed "
                             "benchmark document (e.g. BENCH_simulator.json)")
    parser.add_argument("--guard", metavar="FILE",
                        help="exit 1 when any single-run cell's steps/s "
                             "dropped more than --guard-threshold vs FILE "
                             "(CI runs this non-gating)")
    parser.add_argument("--guard-threshold", type=float, default=20.0,
                        metavar="PCT",
                        help="regression threshold for --guard, percent "
                             "(default: 20)")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON document instead of the table")
    parser.add_argument("--out", metavar="FILE",
                        help="also write the JSON document to FILE")
    args = parser.parse_args(argv)

    if args.net:
        document = run_net_benchmarks(repeats=args.repeats)
    elif args.recovery:
        document = {
            "schema": SCHEMA,
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpus": os.cpu_count(),
            "recovery": run_recovery_benchmarks(),
        }
    elif args.explore:
        document = {
            "schema": SCHEMA,
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpus": os.cpu_count(),
            "explore": run_explore_benchmarks(),
        }
    elif args.predict:
        document = {
            "schema": SCHEMA,
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpus": os.cpu_count(),
            "predict": run_predict_benchmarks(),
        }
    elif args.static:
        document = {
            "schema": SCHEMA,
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpus": os.cpu_count(),
            "static": run_static_benchmarks(),
        }
    elif args.compare_backends:
        backends = run_backend_comparison(repeats=args.repeats)
        document = {
            "schema": SCHEMA,
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpus": os.cpu_count(),
            "backend": next(iter(backends["workloads"].values()))
                       ["coroutine_backend"],
            "compiled": HAS_COMPILED,
            "backends": backends,
        }
    else:
        document = run_benchmarks(jobs=args.jobs, repeats=args.repeats,
                                  sweep_seeds_n=args.sweep_seeds)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render(document))
        if args.out:
            print(f"\nwrote {args.out}")
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"\nbaseline {args.baseline} unreadable: {exc}")
        else:
            print()
            print(render_delta(document, baseline))
    if args.guard:
        try:
            with open(args.guard, "r", encoding="utf-8") as handle:
                guard_baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"\nguard baseline {args.guard} unreadable: {exc}")
            return 1
        regressions = check_regression(document, guard_baseline,
                                       threshold_pct=args.guard_threshold)
        if regressions:
            print(f"\nperf regression guard ({args.guard}):")
            for line in regressions:
                print(f"  {line}")
            return 1
        print(f"\nperf regression guard: ok "
              f"(no cell down >{args.guard_threshold:.0f}% vs {args.guard})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
