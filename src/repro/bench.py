"""Built-in performance benchmarks: ``repro bench`` / ``python -m repro.bench``.

Times the two things the whole system's throughput hangs on:

* **single-run fast path** — one simulation with no observer and no kept
  trace, the configuration sweeps actually run in; reported per workload
  as ms/run and scheduler steps/s;
* **sweep scaling** — a 64-seed sweep at ``jobs=1`` vs ``jobs=N``
  (:mod:`repro.parallel`), with the byte-identical-results check that the
  equivalence tests also enforce.

Output is a stable JSON document (``BENCH_simulator.json`` at the repo
root holds the committed baseline; CI's non-gating perf-smoke job uploads
a fresh one per run so trends are visible without failing builds).
Numbers are hardware-dependent — compare runs from the same machine.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from .runtime.runtime import run

#: Bump when the document layout changes.
SCHEMA = 1


# ----------------------------------------------------------------------
# Workloads (shared with benchmarks/bench_simulator_perf.py)
# ----------------------------------------------------------------------


def pingpong(rt) -> None:
    """Unbuffered rendezvous: 50 round trips between two goroutines."""
    ping = rt.make_chan()
    pong = rt.make_chan()

    def echo():
        for _ in range(50):
            ping.recv()
            pong.send(None)

    rt.go(echo)
    for _ in range(50):
        ping.send(None)
        pong.recv()


def mutex_contention(rt) -> None:
    """Four workers taking one mutex 25 times each."""
    mu = rt.mutex()
    done = rt.waitgroup()

    def worker():
        for _ in range(25):
            with mu:
                pass
        done.done()

    for _ in range(4):
        done.add(1)
        rt.go(worker)
    done.wait()


def select_fanin(rt) -> None:
    """Four feeders fanning into one select loop."""
    from .chan import recv as recv_case

    channels = [rt.make_chan(1) for _ in range(4)]

    def feeder(ch):
        for i in range(10):
            ch.send(i)

    for ch in channels:
        rt.go(feeder, ch)
    got = 0
    while got < 40:
        rt.select(*[recv_case(ch) for ch in channels])
        got += 1


def spawn_heavy(rt) -> None:
    """Forty short-lived goroutines against one waitgroup."""
    wg = rt.waitgroup()
    for _ in range(40):
        wg.add(1)
        rt.go(wg.done)
    wg.wait()


WORKLOADS: Dict[str, Callable[[Any], None]] = {
    "pingpong": pingpong,
    "mutex": mutex_contention,
    "select_fanin": select_fanin,
    "spawn": spawn_heavy,
}


# ----------------------------------------------------------------------
# Network workloads (repro.net; see BENCH_net.json for the baseline)
# ----------------------------------------------------------------------


def net_pingpong(rt) -> None:
    """Fifty request/reply round trips over one fabric connection."""
    from .net import Node

    net = rt.network(name="bench", log_messages=False)
    server = Node(net, "server")
    listener = server.listen("echo")

    def serve() -> None:
        conn = listener.accept()
        server.track(conn)
        for payload in conn:
            conn.send(payload)

    server.go(serve, name="echo")
    client = Node(net, "client")
    conn = client.dial(server.addr("echo"))
    for i in range(50):
        conn.send(i)
        conn.recv_ok()
    conn.shutdown()
    client.stop()
    server.stop()


def net_rpc(rt) -> None:
    """Fifty unary echo RPCs through the multiplexed client."""
    from .net import Node, RpcClient, RpcServer

    net = rt.network(name="bench", log_messages=False)
    server = Node(net, "server")
    rpc = RpcServer(server)
    rpc.register("echo", lambda payload: payload)
    rpc.serve(server.listen("rpc"))
    client_node = Node(net, "client")
    client = RpcClient(client_node, server.addr("rpc"))
    for i in range(50):
        client.call("echo", i)
    client.close()
    client_node.stop()
    server.stop()


NET_WORKLOADS: Dict[str, Callable[[Any], None]] = {
    "net_pingpong": net_pingpong,
    "net_rpc": net_rpc,
}


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------


def bench_single(
    program: Callable[[Any], None],
    keep_trace: bool = False,
    rounds: int = 30,
    repeats: int = 3,
    seed: int = 1,
) -> Dict[str, float]:
    """Best-of-``repeats`` timing of ``rounds`` serial runs of ``program``."""
    # Warm-up: imports, code objects, site caches.
    for _ in range(3):
        run(program, seed=seed, keep_trace=keep_trace)
    best = float("inf")
    steps = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        total_steps = 0
        for _ in range(rounds):
            total_steps += run(program, seed=seed, keep_trace=keep_trace).steps
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
            steps = total_steps
    per_run = best / rounds
    return {
        "ms_per_run": round(per_run * 1e3, 4),
        "steps_per_run": steps // rounds,
        "steps_per_s": round(steps / best, 1),
    }


def bench_sweep(
    program: Callable[[Any], None],
    n_seeds: int = 64,
    jobs: int = 0,
    keep_trace: bool = True,
) -> Dict[str, Any]:
    """Serial vs parallel sweep of ``n_seeds`` seeds, plus the equality check.

    ``keep_trace=True`` so every summary carries a schedule digest and
    "identical" means the full interleavings matched, not just statuses.
    """
    from .parallel import effective_jobs, sweep_seeds

    if jobs <= 0:
        jobs = os.cpu_count() or 1
    seeds = list(range(n_seeds))

    t0 = time.perf_counter()
    serial = sweep_seeds(program, seeds, jobs=1, keep_trace=keep_trace)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = sweep_seeds(program, seeds, jobs=jobs, keep_trace=keep_trace)
    parallel_s = time.perf_counter() - t0

    return {
        "seeds": n_seeds,
        "jobs": jobs,
        "effective_jobs": effective_jobs(jobs, n_seeds),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "identical": serial == parallel,
    }


def run_benchmarks(jobs: int = 0, repeats: int = 3,
                   sweep_seeds_n: int = 64) -> Dict[str, Any]:
    """The full document: per-workload single-run timings + sweep scaling."""
    single: Dict[str, Any] = {}
    for name, program in WORKLOADS.items():
        single[name] = {
            "fast": bench_single(program, keep_trace=False, repeats=repeats),
            "traced": bench_single(program, keep_trace=True, repeats=repeats),
        }
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpus": os.cpu_count(),
        "single": single,
        "sweep": bench_sweep(pingpong, n_seeds=sweep_seeds_n, jobs=jobs),
    }


def run_net_benchmarks(repeats: int = 3, loadgen_clients: int = 8,
                       loadgen_requests: int = 250) -> Dict[str, Any]:
    """The network document: fabric/RPC timings + a loadgen throughput row.

    The loadgen row runs twice on the same seed; ``deterministic`` asserts
    the two summaries (latency histogram, fabric stats, step count — all
    of it) came back identical.
    """
    from .net.demo import loadgen_summary

    single: Dict[str, Any] = {}
    for name, program in NET_WORKLOADS.items():
        single[name] = {
            "fast": bench_single(program, keep_trace=False, repeats=repeats),
            "traced": bench_single(program, keep_trace=True, repeats=repeats),
        }

    t0 = time.perf_counter()
    first = loadgen_summary(seed=1, clients=loadgen_clients,
                            requests=loadgen_requests)
    wall = time.perf_counter() - t0
    second = loadgen_summary(seed=1, clients=loadgen_clients,
                             requests=loadgen_requests)
    loadgen = {
        "clients": loadgen_clients,
        "requests": first["requests"],
        "steps": first["steps"],
        "virtual_s": first["virtual_s"],
        "rps_virtual": first["rps_virtual"],
        "wall_s": round(wall, 4),
        "requests_per_wall_s": round(first["requests"] / wall, 1) if wall else None,
        "steps_per_s": round(first["steps"] / wall, 1) if wall else None,
        "errors": first["errors"],
        "deterministic": first == second,
    }
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpus": os.cpu_count(),
        "single": single,
        "loadgen": loadgen,
    }


def render(document: Dict[str, Any]) -> str:
    """Human-readable table of a benchmark document."""
    lines: List[str] = []
    lines.append(f"simulator benchmarks (python {document['python']}, "
                 f"{document['cpus']} cpu(s))")
    lines.append("")
    lines.append(f"{'workload':<14} {'fast ms/run':>12} {'fast steps/s':>14} "
                 f"{'traced ms/run':>14} {'traced steps/s':>15}")
    for name, row in document["single"].items():
        fast, traced = row["fast"], row["traced"]
        lines.append(f"{name:<14} {fast['ms_per_run']:>12.3f} "
                     f"{fast['steps_per_s']:>14,.0f} "
                     f"{traced['ms_per_run']:>14.3f} "
                     f"{traced['steps_per_s']:>15,.0f}")
    if "sweep" in document:
        sweep = document["sweep"]
        lines.append("")
        lines.append(
            f"sweep: {sweep['seeds']} seeds, jobs=1 {sweep['serial_s']:.2f}s "
            f"vs jobs={sweep['jobs']} {sweep['parallel_s']:.2f}s "
            f"(speedup {sweep['speedup']}x, effective workers "
            f"{sweep['effective_jobs']}, identical={sweep['identical']})")
    if "loadgen" in document:
        lg = document["loadgen"]
        lines.append("")
        lines.append(
            f"loadgen: {lg['requests']} requests from {lg['clients']} "
            f"client(s) in {lg['wall_s']:.2f}s wall "
            f"({lg['requests_per_wall_s']:,.0f} req/s wall, "
            f"{lg['rps_virtual']:,.0f} req/s virtual, errors={lg['errors']}, "
            f"deterministic={lg['deterministic']})")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="simulator performance benchmarks (single-run fast path "
                    "+ parallel sweep scaling)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="workers for the sweep benchmark "
                             "(default: all cpus)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="timing repeats per workload; best is kept "
                             "(default: 3)")
    parser.add_argument("--sweep-seeds", type=int, default=64, metavar="N",
                        help="seeds in the sweep benchmark (default: 64)")
    parser.add_argument("--net", action="store_true",
                        help="run the network benchmarks (fabric round "
                             "trips, RPC echo, loadgen throughput) instead")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON document instead of the table")
    parser.add_argument("--out", metavar="FILE",
                        help="also write the JSON document to FILE")
    args = parser.parse_args(argv)

    if args.net:
        document = run_net_benchmarks(repeats=args.repeats)
    else:
        document = run_benchmarks(jobs=args.jobs, repeats=args.repeats,
                                  sweep_seeds_n=args.sweep_seeds)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render(document))
        if args.out:
            print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
