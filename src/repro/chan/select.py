"""Go's ``select`` statement.

The two semantics the paper's bugs depend on:

* When more than one case is ready, the runtime chooses **uniformly at
  random** among them (the nondeterminism behind Figure 1's leak and
  Figure 11's extra-execution bug).  The choice is drawn from the
  scheduler's seeded RNG, so seeds reproduce it.
* A select with a ``default`` branch never blocks (the standard fix pattern
  "add a select with default" from Table 7).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..runtime.errors import GoPanic
from ..runtime.trace import EventKind
from .cases import SelectCase
from .channel import _Waiter

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class _SelectContext:
    """Shared completion token for all waiters parked by one select.

    The first channel peer to ``try_win`` a case index owns the select;
    every other parked waiter becomes dead and is lazily discarded.
    """

    __slots__ = ("goroutine", "winner", "value", "ok")

    def __init__(self, goroutine):
        self.goroutine = goroutine
        self.winner: Optional[int] = None
        self.value: Any = None
        self.ok: bool = False

    def try_win(self, case_index: int) -> bool:
        if self.winner is not None:
            return False
        self.winner = case_index
        return True


def select(rt: "Runtime", cases: Sequence[SelectCase], default: bool = False
           ) -> Tuple[int, Any, bool]:
    """Execute a select over ``cases``; see :meth:`Runtime.select`."""
    sched = rt.sched
    fast = sched._fastops
    if fast is not None:
        # The compiled op exact-type-checks every case before doing
        # anything observable (a stranger bails it out to the pure path,
        # which raises below), so validation can wait for the slow path.
        outcome = fast.select_op(sched, tuple(cases), default)
        if outcome is not NotImplemented:
            return outcome
    for case in cases:
        if not isinstance(case, SelectCase):
            raise TypeError(f"select case must be send(...)/recv(...), got {case!r}")
    sched.schedule_point()
    me = sched.current
    case_ids = tuple(cid for case in cases
                     if (cid := getattr(case.channel, "id", None)) is not None)
    sched.emit(EventKind.SELECT_BEGIN,
               info={"cases": len(cases), "default": default,
                     "chans": case_ids})

    while True:
        ready_indices = [i for i, case in enumerate(cases) if case.ready()]
        if ready_indices:
            index = ready_indices[sched.rng.randrange(len(ready_indices))]
            value, ok = cases[index].perform(me.gid)
            sched.emit(EventKind.SELECT_COMMIT, info={"chosen": index})
            return index, value, ok
        if default:
            sched.emit(EventKind.SELECT_COMMIT, info={"chosen": -1})
            return -1, None, False

        ctx = _SelectContext(me)
        registered: List[Tuple[Any, _Waiter]] = []
        for index, case in enumerate(cases):
            waiter = case.register(me, ctx, index)
            if waiter is not None:
                registered.append((case.channel, waiter))

        if not registered:
            # Every case is on a nil channel: block forever, as Go does.
            while True:
                sched.block("select.nil")

        sched.block("select", obj=case_ids)

        for channel, waiter in registered:
            if not waiter.completed:
                channel._discard(waiter)

        if ctx.winner is not None:
            index = ctx.winner
            if cases[index].is_send and not ctx.ok:
                raise GoPanic("send on closed channel")
            sched.emit(EventKind.SELECT_COMMIT, info={"chosen": index})
            return index, ctx.value, ctx.ok
        # Spurious wakeup: retry from the fast path.
