"""Go channels.

Semantics implemented (each is load-bearing for at least one studied bug):

* Unbuffered channels rendezvous: a send blocks until a receiver takes the
  value, and vice versa (Figure 1's leak needs this).
* Buffered channels block senders only when full and receivers only when
  empty and open.
* Receiving from a closed channel drains the buffer, then yields
  ``(zero, ok=False)`` immediately.
* Sending on a closed channel panics; closing a closed channel panics
  (Figure 10's double-close bug).
* Nil channels block every operation forever.

The zero value returned on a closed, drained receive is ``None``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple, TYPE_CHECKING

from ..runtime.errors import GoPanic
from ..runtime.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class _Waiter:
    """A goroutine (or one select case) parked on a channel queue."""

    __slots__ = (
        "goroutine",
        "is_send",
        "payload",
        "value",
        "ok",
        "completed",
        "select_ctx",
        "case_index",
    )

    def __init__(self, goroutine, is_send: bool, payload: Any = None,
                 select_ctx=None, case_index: int = -1):
        self.goroutine = goroutine
        self.is_send = is_send
        self.payload = payload        # value being sent (send waiters)
        self.value: Any = None        # value received (recv waiters)
        self.ok: Optional[bool] = None
        self.completed = False
        self.select_ctx = select_ctx  # _SelectContext when part of a select
        self.case_index = case_index

    def claim(self) -> bool:
        """Try to take ownership of this waiter for completion.

        Plain waiters can always be claimed once; select waiters can be
        claimed only if their select has not been won by another case.
        """
        if self.completed:
            return False
        if self.select_ctx is not None:
            return self.select_ctx.try_win(self.case_index)
        return True

    @property
    def dead(self) -> bool:
        """True when the waiter can never complete (its select already won)."""
        if self.completed:
            return True
        return self.select_ctx is not None and self.select_ctx.winner is not None


class Channel:
    """A Go channel of any element type.

    Use :meth:`send` / :meth:`recv` for the blocking operations, and
    :meth:`try_send` / :meth:`try_recv` for the non-blocking forms that a
    ``select`` with ``default`` would express.
    """

    __slots__ = (
        "_rt",
        "_sched",
        "capacity",
        "name",
        "id",
        "_buf",
        "_send_waiters",
        "_recv_waiters",
        "_closed",
        "_send_seq",
        "_reason_send",
        "_reason_recv",
    )

    def __init__(self, rt: "Runtime", capacity: int = 0, name: Optional[str] = None):
        if capacity < 0:
            raise ValueError("negative channel capacity")
        self._rt = rt
        self._sched = rt.sched
        self.capacity = capacity
        self.name = name or f"chan#{rt._next_obj_id}"
        self.id = rt.new_obj_id()
        self._buf: Deque[Any] = deque()
        self._send_waiters: Deque[_Waiter] = deque()
        self._recv_waiters: Deque[_Waiter] = deque()
        self._closed = False
        self._send_seq = 0  # per-message sequence for happens-before pairing
        self._reason_send = f"chan.send:{self.name}"
        self._reason_recv = f"chan.recv:{self.name}"
        self._sched.emit(EventKind.CHAN_MAKE, obj=self.id,
                         info={"capacity": capacity, "name": self.name})

    # ------------------------------------------------------------------
    # Introspection (Go's len() and cap())
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._buf)

    def cap(self) -> int:
        return self.capacity

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Waiter-queue helpers
    # ------------------------------------------------------------------

    def _pop_claimable(self, queue: Deque[_Waiter]) -> Optional[_Waiter]:
        while queue:
            waiter = queue[0]
            if waiter.dead:
                queue.popleft()
                continue
            if waiter.claim():
                queue.popleft()
                return waiter
            queue.popleft()  # lost select: discard
        return None

    def _discard(self, waiter: _Waiter) -> None:
        for queue in (self._send_waiters, self._recv_waiters):
            try:
                queue.remove(waiter)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------

    def _emit_send(self, gid: int, seq: int, sync: bool, partner: Optional[int] = None) -> None:
        info = {"seq": seq, "sync": sync}
        if partner is not None:
            info["partner"] = partner
        self._sched.emit(EventKind.CHAN_SEND, obj=self.id, info=info, gid=gid)

    def _emit_recv(self, gid: int, seq: Optional[int], sync: bool,
                   closed: bool = False, partner: Optional[int] = None) -> None:
        info: dict = {"sync": sync, "closed": closed}
        if seq is not None:
            info["seq"] = seq
        if partner is not None:
            info["partner"] = partner
        self._sched.emit(EventKind.CHAN_RECV, obj=self.id, info=info, gid=gid)

    # ------------------------------------------------------------------
    # Non-blocking cores (shared by blocking ops, select, and try_*)
    # ------------------------------------------------------------------

    def poll_send(self, value: Any, gid: int) -> bool:
        """Attempt a send without blocking.  True when it completed.

        Panics if the channel is closed (matching ``select`` readiness: a
        send on a closed channel is always "ready" and panics when chosen).
        """
        if self._closed:
            raise GoPanic("send on closed channel")
        waiter = self._pop_claimable(self._recv_waiters)
        if waiter is not None:
            seq = self._next_seq()
            waiter.value = value
            waiter.ok = True
            waiter.completed = True
            self._emit_send(gid, seq, sync=True, partner=waiter.goroutine.gid)
            self._emit_recv(waiter.goroutine.gid, seq, sync=True, partner=gid)
            self._complete_recv_side(waiter, seq, sync=True, sender_gid=gid)
            self._sched.ready(waiter.goroutine)
            return True
        if len(self._buf) < self.capacity:
            seq = self._next_seq()
            self._buf.append((seq, value))
            self._emit_send(gid, seq, sync=False)
            return True
        return False

    def poll_recv(self, gid: int) -> Optional[Tuple[Any, bool]]:
        """Attempt a receive without blocking.  None when it would block."""
        if self._buf:
            seq, value = self._buf.popleft()
            self._emit_recv(gid, seq, sync=False)
            # A sender blocked on a full buffer can now complete.
            waiter = self._pop_claimable(self._send_waiters)
            if waiter is not None:
                wseq = self._next_seq()
                self._buf.append((wseq, waiter.payload))
                waiter.ok = True
                waiter.completed = True
                self._emit_send(waiter.goroutine.gid, wseq, sync=False)
                self._complete_send_side(waiter)
                self._sched.ready(waiter.goroutine)
            return value, True
        waiter = self._pop_claimable(self._send_waiters)
        if waiter is not None:
            # Rendezvous with a blocked sender (unbuffered channel).
            seq = self._next_seq()
            waiter.ok = True
            waiter.completed = True
            self._emit_send(waiter.goroutine.gid, seq, sync=True, partner=gid)
            self._emit_recv(gid, seq, sync=True, partner=waiter.goroutine.gid)
            self._complete_send_side(waiter)
            self._sched.ready(waiter.goroutine)
            return waiter.payload, True
        if self._closed:
            self._emit_recv(gid, None, sync=False, closed=True)
            return None, False
        return None

    def can_send_now(self) -> bool:
        """Would a send complete (or panic) immediately?"""
        if self._closed:
            return True  # "ready": completing panics, as in Go's select
        if any(not w.dead for w in self._recv_waiters):
            return True
        return len(self._buf) < self.capacity

    def can_recv_now(self) -> bool:
        """Would a receive complete immediately?"""
        if self._buf:
            return True
        if any(not w.dead for w in self._send_waiters):
            return True
        return self._closed

    def _next_seq(self) -> int:
        self._send_seq += 1
        return self._send_seq

    def _complete_recv_side(self, waiter: _Waiter, seq: int, sync: bool, sender_gid: int) -> None:
        """Propagate a completed receive into a waiting select, if any."""
        if waiter.select_ctx is not None:
            waiter.select_ctx.value = waiter.value
            waiter.select_ctx.ok = True

    def _complete_send_side(self, waiter: _Waiter) -> None:
        if waiter.select_ctx is not None:
            waiter.select_ctx.value = None
            waiter.select_ctx.ok = True

    # ------------------------------------------------------------------
    # Blocking operations
    # ------------------------------------------------------------------

    def send(self, value: Any) -> None:
        """Send ``value``; blocks per Go semantics.  Panics if closed."""
        fast = self._sched._fastops
        if fast is not None and fast.chan_send(self, value) is not NotImplemented:
            return
        self._sched.schedule_point()
        me = self._sched.current
        while True:
            if self.poll_send(value, me.gid):
                return
            waiter = _Waiter(me, is_send=True, payload=value)
            self._send_waiters.append(waiter)
            self._sched.block(self._reason_send, obj=self.id)
            if waiter.completed:
                if waiter.ok is False:
                    raise GoPanic("send on closed channel")
                return
            self._discard(waiter)  # spurious wakeup: retry from the top

    def recv(self) -> Any:
        """Receive a value, like ``<-ch``.  Returns None once closed+drained."""
        value, _ok = self.recv_ok()
        return value

    def recv_ok(self) -> Tuple[Any, bool]:
        """Receive with the open flag, like ``v, ok := <-ch``."""
        fast = self._sched._fastops
        if fast is not None:
            outcome = fast.chan_recv(self)
            if outcome is not NotImplemented:
                return outcome
        self._sched.schedule_point()
        me = self._sched.current
        while True:
            outcome = self.poll_recv(me.gid)
            if outcome is not None:
                return outcome
            waiter = _Waiter(me, is_send=False)
            self._recv_waiters.append(waiter)
            self._sched.block(self._reason_recv, obj=self.id)
            if waiter.completed:
                return waiter.value, bool(waiter.ok)
            self._discard(waiter)

    # ------------------------------------------------------------------
    # Non-blocking operations (select-with-default shorthand)
    # ------------------------------------------------------------------

    def try_send(self, value: Any) -> bool:
        """Non-blocking send: ``select { case ch <- v: ... default: }``."""
        fast = self._sched._fastops
        if fast is not None:
            outcome = fast.chan_try_send(self, value)
            if outcome is not NotImplemented:
                return outcome
        self._sched.schedule_point()
        return self.poll_send(value, self._sched.current_gid)

    def try_recv(self) -> Tuple[Any, bool, bool]:
        """Non-blocking receive.  Returns ``(value, ok, received)``."""
        fast = self._sched._fastops
        if fast is not None:
            outcome = fast.chan_try_recv(self)
            if outcome is not NotImplemented:
                return outcome
        self._sched.schedule_point()
        outcome = self.poll_recv(self._sched.current_gid)
        if outcome is None:
            return None, False, False
        value, ok = outcome
        return value, ok, True

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the channel.  Panics on double close (Figure 10)."""
        self._sched.schedule_point()
        if self._closed:
            raise GoPanic("close of closed channel")
        self._closed = True
        self._sched.emit(EventKind.CHAN_CLOSE, obj=self.id)
        # Every parked receiver observes the close...
        while True:
            waiter = self._pop_claimable(self._recv_waiters)
            if waiter is None:
                break
            waiter.value = None
            waiter.ok = False
            waiter.completed = True
            if waiter.select_ctx is not None:
                waiter.select_ctx.value = None
                waiter.select_ctx.ok = False
            self._emit_recv(waiter.goroutine.gid, None, sync=False, closed=True)
            self._sched.ready(waiter.goroutine)
        # ...and every parked sender panics.
        while True:
            waiter = self._pop_claimable(self._send_waiters)
            if waiter is None:
                break
            waiter.ok = False
            waiter.completed = True
            if waiter.select_ctx is not None:
                waiter.select_ctx.value = None
                waiter.select_ctx.ok = False
            self._sched.ready(waiter.goroutine)

    # ------------------------------------------------------------------
    # Iteration: ``for v := range ch``
    # ------------------------------------------------------------------

    def __iter__(self):
        while True:
            value, ok = self.recv_ok()
            if not ok:
                return
            yield value

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<Channel {self.name} cap={self.capacity} len={len(self._buf)} {state}>"


class NilChannel:
    """A nil channel: all operations block forever; close panics.

    In ``select``, cases on a nil channel are never ready (the standard
    Go idiom of disabling a case by nil-ing its channel works).
    """

    def __init__(self, rt: "Runtime"):
        self._rt = rt
        self._sched = rt.sched
        self.id = rt.new_obj_id()
        self.name = "nil"
        self.capacity = 0
        self._closed = False

    def __len__(self) -> int:
        return 0

    def cap(self) -> int:
        return 0

    @property
    def closed(self) -> bool:
        return False

    def _block_forever(self, reason: str) -> None:
        while True:
            self._sched.block(reason)

    def send(self, value: Any) -> None:
        self._sched.schedule_point()
        self._block_forever("chan.send:nil")

    def recv(self) -> Any:
        self._sched.schedule_point()
        self._block_forever("chan.recv:nil")

    def recv_ok(self) -> Tuple[Any, bool]:
        self.recv()
        raise AssertionError("unreachable")  # pragma: no cover

    def try_send(self, value: Any) -> bool:
        return False

    def try_recv(self) -> Tuple[Any, bool, bool]:
        return None, False, False

    def can_send_now(self) -> bool:
        return False

    def can_recv_now(self) -> bool:
        return False

    def close(self) -> None:
        raise GoPanic("close of nil channel")

    def __repr__(self) -> str:
        return "<NilChannel>"
