"""Message passing: channels and select."""

from .cases import RecvCase, SelectCase, SendCase, recv, send
from .channel import Channel, NilChannel
from .select import select

__all__ = [
    "Channel",
    "NilChannel",
    "RecvCase",
    "SelectCase",
    "SendCase",
    "recv",
    "select",
    "send",
]
