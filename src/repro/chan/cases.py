"""Select case objects: ``send(ch, v)`` and ``recv(ch)``.

A Go ``select`` statement maps to::

    select {                       idx, val, ok = rt.select(
    case ch1 <- x:                     send(ch1, x),
    case v := <-ch2:                   recv(ch2),
    default:                           default=True,
    }                              )

``idx`` is the chosen case position (``-1`` for the default branch).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from .channel import _Waiter


class SelectCase:
    """Base class for one arm of a select."""

    __slots__ = ("channel",)

    is_send = False

    def __init__(self, channel):
        self.channel = channel

    def ready(self) -> bool:
        raise NotImplementedError

    def perform(self, gid: int) -> Tuple[Any, bool]:
        """Complete the (known-ready) operation; returns ``(value, ok)``."""
        raise NotImplementedError

    def register(self, goroutine, ctx, index: int) -> Optional[_Waiter]:
        """Park a waiter for this case; None for nil channels (never ready)."""
        raise NotImplementedError


class SendCase(SelectCase):
    """``case ch <- value``."""

    __slots__ = ("value",)

    is_send = True

    def __init__(self, channel, value: Any):
        super().__init__(channel)
        self.value = value

    def ready(self) -> bool:
        return self.channel.can_send_now()

    def perform(self, gid: int) -> Tuple[Any, bool]:
        completed = self.channel.poll_send(self.value, gid)
        assert completed, "select chose a send case that was not ready"
        return None, True

    def register(self, goroutine, ctx, index: int) -> Optional[_Waiter]:
        if not hasattr(self.channel, "_send_waiters"):  # nil channel
            return None
        waiter = _Waiter(goroutine, is_send=True, payload=self.value,
                         select_ctx=ctx, case_index=index)
        self.channel._send_waiters.append(waiter)
        return waiter

    def __repr__(self) -> str:
        return f"send({self.channel!r})"


class RecvCase(SelectCase):
    """``case v, ok := <-ch``."""

    __slots__ = ()

    def ready(self) -> bool:
        return self.channel.can_recv_now()

    def perform(self, gid: int) -> Tuple[Any, bool]:
        outcome = self.channel.poll_recv(gid)
        assert outcome is not None, "select chose a recv case that was not ready"
        return outcome

    def register(self, goroutine, ctx, index: int) -> Optional[_Waiter]:
        if not hasattr(self.channel, "_recv_waiters"):  # nil channel
            return None
        waiter = _Waiter(goroutine, is_send=False, select_ctx=ctx, case_index=index)
        self.channel._recv_waiters.append(waiter)
        return waiter

    def __repr__(self) -> str:
        return f"recv({self.channel!r})"


def send(channel, value: Any) -> SendCase:
    """Build a ``case ch <- value`` select arm."""
    return SendCase(channel, value)


def recv(channel) -> RecvCase:
    """Build a ``case <-ch`` select arm."""
    return RecvCase(channel)
