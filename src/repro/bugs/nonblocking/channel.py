"""Non-blocking kernels: channel misuse (Table 9, 16/86 bugs).

Violations of Go's channel rules that do *not* block anyone: double close
(Figure 10), send-on-closed, trusting select's order (Figure 11), and
misreading the zero value a closed channel yields.
"""

from __future__ import annotations

from ...chan.cases import recv
from ...dataset.records import (
    App,
    Behavior,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
)
from ..meta import BugKernel, KernelMeta
from ..registry import register


@register
class Docker24007DoubleClose(BugKernel):
    """Figure 10: concurrent teardowns both reach close(c.closed)."""

    meta = KernelMeta(
        kernel_id="nonblocking-chan-docker-24007",
        title="Docker#24007: channel closed twice",
        app=App.DOCKER,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.CHAN,
        fix_strategy=FixStrategy.BYPASS,  # Table 10 cites Fig 10 as bypass
        fix_primitives=(FixPrimitive.MISC,),  # sync.Once
        symptom="panic",
        description=(
            "Multiple goroutines run `select { case <-c.closed: default: "
            "close(c.closed) }`; two can take the default branch before "
            "either close lands, and the second close panics the daemon.  "
            "Docker's fix wraps the close in sync.Once."
        ),
        figure="10",
        bug_url="moby/moby#24007",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, use_once: bool):
        closed = rt.make_chan(0, name="c.closed")
        once = rt.once("close-once")
        wg = rt.waitgroup()

        def teardown():
            index, _v, _ok = rt.select(recv(closed), default=True)
            if index == -1:
                if use_once:
                    once.do(closed.close)
                else:
                    closed.close()  # BUG: second closer panics
            wg.done()

        for i in range(3):
            wg.add(1)
            rt.go(teardown, name=f"teardown-{i}")
        wg.wait()
        return False

    @staticmethod
    def buggy(rt):
        return Docker24007DoubleClose._program(rt, use_once=False)

    @staticmethod
    def fixed(rt):
        return Docker24007DoubleClose._program(rt, use_once=True)


@register
class GrpcSendOnClosed(BugKernel):
    """A sender races with the closer and panics."""

    meta = KernelMeta(
        kernel_id="nonblocking-chan-grpc-send-on-closed",
        title="gRPC: send races with close",
        app=App.GRPC,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.CHAN,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="panic",
        description=(
            "The transport's writer pushes frames into the control channel "
            "while Close() closes it; when close wins, the next send "
            "panics.  The fix guards both with a mutex and a closed flag."
        ),
        bug_url="pattern: grpc/grpc-go controlbuf send-after-close",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, guard: bool):
        frames = rt.make_chan(4, name="controlbuf")
        mu = rt.mutex("transport")
        closed_flag = rt.shared("transport.closed", False)
        wg = rt.waitgroup()

        def writer():
            for i in range(3):
                if guard:
                    with mu:
                        if not closed_flag.load():
                            frames.send(i)
                else:
                    frames.send(i)  # BUG: may hit a closed channel
                rt.gosched()
            wg.done()

        def closer():
            if guard:
                with mu:
                    closed_flag.store(True)
                    frames.close()
            else:
                frames.close()
            wg.done()

        wg.add(2)
        rt.go(writer, name="writer")
        rt.go(closer, name="closer")
        wg.wait()
        return False

    @staticmethod
    def buggy(rt):
        return GrpcSendOnClosed._program(rt, guard=False)

    @staticmethod
    def fixed(rt):
        return GrpcSendOnClosed._program(rt, guard=True)


@register
class EtcdSelectStopTicker(BugKernel):
    """Figure 11: select may service the ticker although stop was signalled."""

    meta = KernelMeta(
        kernel_id="nonblocking-chan-etcd-select-ticker",
        title="etcd: select randomly prefers the ticker over stopCh",
        app=App.ETCD,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.CHAN,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL,),
        symptom="wrong-value",
        description=(
            "When the ticker fires and stopCh is signalled simultaneously, "
            "Go's select chooses randomly; choosing the ticker runs the "
            "heavy f() once more after the stop request.  The fix adds a "
            "non-blocking stopCh check at the top of the loop."
        ),
        figure="11",
        bug_url="pattern: etcd-io/etcd compactor loop",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, precheck_stop: bool):
        stop_ch = rt.make_chan(0, name="stopCh")
        ticker = rt.new_ticker(1.0)
        runs_after_stop = rt.shared("runs-after-stop", 0)
        stop_requested = rt.shared("stop-requested", False)

        def loop():
            while True:
                if precheck_stop:
                    index, _v, _ok = rt.select(recv(stop_ch), default=True)
                    if index == 0:
                        break
                index, _v, _ok = rt.select(recv(stop_ch), recv(ticker.c))
                if index == 0:
                    break
                # The heavy f(): while it runs, the next tick queues in
                # ticker.c *and* the stop request lands, so the next select
                # sees both cases ready and chooses randomly.
                if stop_requested.peek():
                    runs_after_stop.add(1)  # f() ran after the stop request
                rt.sleep(2.5)

        def stopper():
            rt.sleep(3.0)  # lands while f() is busy
            stop_requested.store(True)
            stop_ch.close()

        rt.go(loop, name="compactor-loop")
        rt.go(stopper, name="stopper")
        rt.sleep(8.0)
        ticker.stop()
        return runs_after_stop.peek() > 0

    @staticmethod
    def buggy(rt):
        return EtcdSelectStopTicker._program(rt, precheck_stop=False)

    @staticmethod
    def fixed(rt):
        return EtcdSelectStopTicker._program(rt, precheck_stop=True)


@register
class KubernetesZeroValueFromClosed(BugKernel):
    """A receiver treats the closed channel's zero value as a real event."""

    meta = KernelMeta(
        kernel_id="nonblocking-chan-kubernetes-zero-value",
        title="Kubernetes: zero value from a closed channel misread",
        app=App.KUBERNETES,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.CHAN,
        fix_strategy=FixStrategy.CHANGE_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL,),
        symptom="wrong-value",
        description=(
            "The event processor uses `e := <-ch` in a loop; once the "
            "producer closes the channel, receives yield the zero value "
            "immediately and the processor handles phantom events.  The "
            "fix switches to `e, ok := <-ch` and exits on !ok."
        ),
        bug_url="pattern: kubernetes/kubernetes watch decode loop",
    )

    @staticmethod
    def _program(rt, check_ok: bool):
        events = rt.make_chan(2, name="events")
        phantom = rt.shared("phantom-events", 0)

        def producer():
            events.send("add")
            events.send("delete")
            events.close()

        def processor():
            handled = 0
            while handled < 3:
                if check_ok:
                    event, ok = events.recv_ok()
                    if not ok:
                        break
                else:
                    event = events.recv()  # BUG: zero value after close
                if event is None:
                    phantom.add(1)
                handled += 1

        rt.go(producer, name="producer")
        rt.go(processor, name="processor")
        rt.sleep(1.0)
        return phantom.peek() > 0

    @staticmethod
    def buggy(rt):
        return KubernetesZeroValueFromClosed._program(rt, check_ok=False)

    @staticmethod
    def fixed(rt):
        return KubernetesZeroValueFromClosed._program(rt, check_ok=True)


@register
class CockroachSelectDefaultBusyLoop(BugKernel):
    """A default branch where blocking was intended: events get skipped."""

    meta = KernelMeta(
        kernel_id="nonblocking-chan-cockroach-default-busyloop",
        title="CockroachDB: select default turns a wait into a poll",
        app=App.COCKROACHDB,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.CHAN,
        fix_strategy=FixStrategy.REMOVE_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL,),
        symptom="wrong-value",
        description=(
            "The gossip processor's select carries a default branch (added "
            "for an unrelated shutdown path), so instead of parking until "
            "an event arrives it spins, decides the queue is idle and "
            "tears down early — missing events entirely.  The fix removes "
            "the default branch."
        ),
        bug_url="pattern: cockroachdb/cockroach gossip poll-vs-wait",
        reproduced=False,
    )

    @staticmethod
    def _program(rt, with_default: bool):
        events = rt.make_chan(4, name="gossip.events")
        processed = rt.shared("processed", 0)

        def producer():
            rt.sleep(0.5)  # events arrive a bit later
            for i in range(3):
                events.send(i)
            events.close()

        def processor():
            idle_polls = 0
            while True:
                if with_default:
                    index, _v, ok = rt.select(recv(events), default=True)
                    if index == -1:
                        idle_polls += 1
                        if idle_polls > 3:
                            return  # BUG: gives up before events arrive
                        continue
                else:
                    _v, ok = events.recv_ok()
                if not ok:
                    return
                processed.add(1)

        rt.go(producer, name="producer")
        rt.go(processor, name="processor")
        rt.sleep(2.0)
        return processed.peek() != 3

    @staticmethod
    def buggy(rt):
        return CockroachSelectDefaultBusyLoop._program(rt, with_default=True)

    @staticmethod
    def fixed(rt):
        return CockroachSelectDefaultBusyLoop._program(rt, with_default=False)


@register
class DockerBufferedAssumedDelivered(BugKernel):
    """A buffered send is mistaken for an acknowledged delivery."""

    meta = KernelMeta(
        kernel_id="nonblocking-chan-docker-buffered-assumed",
        title="Docker: buffered send treated as processed",
        app=App.DOCKER,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.CHAN,
        fix_strategy=FixStrategy.CHANGE_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL,),
        symptom="wrong-value",
        description=(
            "The checkpointer sends 'flush' into a buffered channel and "
            "immediately reports the checkpoint durable; the flusher may "
            "not have run yet, so a readback sees stale state.  The fix "
            "waits for an ack on a reply channel (the buffered send only "
            "guarantees enqueue, not processing)."
        ),
        bug_url="pattern: moby/moby checkpoint ack",
        deterministic=False,
        reproduced=False,
    )

    @staticmethod
    def _program(rt, wait_for_ack: bool):
        requests = rt.make_chan(4, name="flush.requests")
        durable = rt.shared("durable", False)

        def flusher():
            for item in requests:
                rt.sleep(0.2)  # the actual disk write
                durable.store(True)
                if wait_for_ack:
                    item.send(None)  # item is the reply channel

        rt.go(flusher, name="flusher")
        if wait_for_ack:
            ack = rt.make_chan(0, name="flush.ack")
            requests.send(ack)
            ack.recv()               # delivery == processed
        else:
            requests.send(object())  # BUG: enqueue mistaken for done
        stale = not durable.load()
        requests.close()
        rt.sleep(0.5)
        return stale

    @staticmethod
    def buggy(rt):
        return DockerBufferedAssumedDelivered._program(rt, wait_for_ack=False)

    @staticmethod
    def fixed(rt):
        return DockerBufferedAssumedDelivered._program(rt, wait_for_ack=True)
