"""Non-blocking kernels: message-passing library misuse (Table 9 mp "lib").

Figure 12's ``time.Timer`` trap: a zero-duration timer's internal goroutine
signals ``timer.C`` essentially at creation.
"""

from __future__ import annotations

from ...chan.cases import recv
from ...dataset.records import (
    App,
    Behavior,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
)
from ..meta import BugKernel, KernelMeta
from ..registry import register


@register
class GrpcTimerZeroPremature(BugKernel):
    """Figure 12: NewTimer(0) fires immediately and the wait returns early."""

    meta = KernelMeta(
        kernel_id="nonblocking-msglib-grpc-timer-zero",
        title="gRPC: time.NewTimer(0) returns the wait prematurely",
        app=App.GRPC,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.MSG_LIBRARY,
        fix_strategy=FixStrategy.BYPASS,  # avoid creating the zero timer
        fix_primitives=(FixPrimitive.CHANNEL, FixPrimitive.MISC),
        symptom="wrong-value",
        description=(
            "The code creates timer := time.NewTimer(0) as a placeholder "
            "and only re-arms it when dur > 0, intending to wait for "
            "ctx.Done() otherwise.  But the zero timer's internal goroutine "
            "signals timer.C right away, so the function returns before "
            "the context is done.  The fix declares a nil-able timeout "
            "channel and creates the timer only when dur > 0."
        ),
        figure="12",
        bug_url="pattern: grpc/grpc-go keepalive zero timer",
    )

    DUR = 0.0         # the buggy configuration: no explicit duration
    CTX_DONE_AT = 2.0

    @staticmethod
    def _program(rt, nil_channel_when_no_timeout: bool):
        ctx, cancel = rt.with_cancel(rt.background())

        def canceller():
            rt.sleep(GrpcTimerZeroPremature.CTX_DONE_AT)
            cancel()

        rt.go(canceller, name="canceller")

        dur = GrpcTimerZeroPremature.DUR
        if nil_channel_when_no_timeout:
            timeout_ch = rt.nil_chan()  # never ready: the committed fix
            if dur > 0:
                timeout_ch = rt.new_timer(dur).c
        else:
            timer = rt.new_timer(0)  # BUG: starts counting down immediately
            if dur > 0:
                timer = rt.new_timer(dur)
            timeout_ch = timer.c

        index, _v, _ok = rt.select(recv(timeout_ch), recv(ctx.done()))
        returned_at = rt.now()
        # Misbehavior: returned before the context was actually done.
        return index == 0 and returned_at < GrpcTimerZeroPremature.CTX_DONE_AT

    @staticmethod
    def buggy(rt):
        return GrpcTimerZeroPremature._program(rt, nil_channel_when_no_timeout=False)

    @staticmethod
    def fixed(rt):
        return GrpcTimerZeroPremature._program(rt, nil_channel_when_no_timeout=True)
