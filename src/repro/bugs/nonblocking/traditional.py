"""Non-blocking kernels: traditional shared-memory bugs (Table 9).

Atomicity violations, order violations and plain data races — "same
mistakes made by developers across different languages" (Observation 7).
By convention every ``buggy``/``fixed`` program returns a truthy value from
main exactly when the misbehavior was observed.
"""

from __future__ import annotations

from ...dataset.records import (
    App,
    Behavior,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
)
from ..meta import BugKernel, KernelMeta
from ..registry import register


@register
class DockerLostUpdate(BugKernel):
    """Unprotected counter increments lose updates."""

    meta = KernelMeta(
        kernel_id="nonblocking-trad-docker-lost-update",
        title="Docker: unprotected reference-count increments",
        app=App.DOCKER,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.TRADITIONAL,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="wrong-value",
        description=(
            "Layer reference counts are bumped by concurrent pulls with a "
            "plain read-modify-write; interleaved increments are lost and "
            "layers get garbage-collected while in use."
        ),
        bug_url="pattern: moby/moby layer refcount race",
        deterministic=False,
    )

    WORKERS = 4
    INCREMENTS = 3

    @staticmethod
    def _program(rt, protect: bool):
        refs = rt.shared("layer.refs", 0)
        mu = rt.mutex("layer")
        wg = rt.waitgroup()

        def puller():
            for _ in range(DockerLostUpdate.INCREMENTS):
                if protect:
                    with mu:
                        refs.add(1)
                else:
                    refs.add(1)  # BUG: racy read-modify-write
            wg.done()

        for i in range(DockerLostUpdate.WORKERS):
            wg.add(1)
            rt.go(puller, name=f"puller-{i}")
        wg.wait()
        expected = DockerLostUpdate.WORKERS * DockerLostUpdate.INCREMENTS
        return refs.peek() != expected  # truthy == misbehaved

    @staticmethod
    def buggy(rt):
        return DockerLostUpdate._program(rt, protect=False)

    @staticmethod
    def fixed(rt):
        return DockerLostUpdate._program(rt, protect=True)


@register
class EtcdCheckThenAct(BugKernel):
    """Racy lazy initialization runs the constructor twice."""

    meta = KernelMeta(
        kernel_id="nonblocking-trad-etcd-check-then-act",
        title="etcd: double initialization via check-then-act",
        app=App.ETCD,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.TRADITIONAL,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="wrong-value",
        description=(
            "Two watchers lazily create the shared event buffer with "
            "`if buf == nil { buf = new(...) }`; both observe nil and both "
            "allocate, so one watcher's registrations vanish."
        ),
        bug_url="pattern: etcd-io/etcd watch buffer double-init",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, protect: bool):
        buf = rt.shared("watch.buffer", None)
        inits = rt.shared("watch.inits", 0)
        mu = rt.mutex("watch")
        wg = rt.waitgroup()

        def ensure_buffer():
            if buf.load() is None:  # BUG: check and act are not atomic
                rt.gosched()
                inits.add(1)
                buf.store([])

        def watcher():
            if protect:
                with mu:
                    ensure_buffer()
            else:
                ensure_buffer()
            wg.done()

        for i in range(2):
            wg.add(1)
            rt.go(watcher, name=f"watcher-{i}")
        wg.wait()
        return inits.peek() != 1

    @staticmethod
    def buggy(rt):
        return EtcdCheckThenAct._program(rt, protect=False)

    @staticmethod
    def fixed(rt):
        return EtcdCheckThenAct._program(rt, protect=True)


@register
class KubernetesOrderViolation(BugKernel):
    """The consumer can run before the producer's initialization.

    The *fix* uses a channel — one of Table 11's cases where message
    passing repairs a shared-memory bug.  Note the buggy version has no
    unsynchronized conflicting access pair once the atomic flag is used,
    so a pure data race detector misses it (a Table 12 miss cause: "not
    all non-blocking bugs are data races").
    """

    meta = KernelMeta(
        kernel_id="nonblocking-trad-kubernetes-order-violation",
        title="Kubernetes: use-before-init order violation",
        app=App.KUBERNETES,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.TRADITIONAL,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL,),
        symptom="wrong-value",
        description=(
            "The informer goroutine publishes `initialized` via an atomic "
            "flag but nothing orders the consumer after it; the consumer "
            "may read the default config.  Fixed by signalling readiness "
            "on a channel."
        ),
        bug_url="pattern: kubernetes/kubernetes informer init order",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, channel_signal: bool):
        config = rt.atomic_value(None, name="informer.config")
        ready = rt.make_chan(0, name="informer.ready")
        observed = []

        def informer():
            rt.sleep(0.1)  # list+watch handshake
            config.store({"resync": 30})
            if channel_signal:
                ready.close()

        def consumer():
            if channel_signal:
                ready.recv_ok()
            observed.append(config.load())  # BUG: may be None

        rt.go(informer, name="informer")
        rt.go(consumer, name="consumer")
        rt.sleep(1.0)
        return observed[0] is None

    @staticmethod
    def buggy(rt):
        return KubernetesOrderViolation._program(rt, channel_signal=False)

    @staticmethod
    def fixed(rt):
        return KubernetesOrderViolation._program(rt, channel_signal=True)


@register
class GrpcErrorOverwrite(BugKernel):
    """Concurrent error reporters overwrite the first (root-cause) error."""

    meta = KernelMeta(
        kernel_id="nonblocking-trad-grpc-error-overwrite",
        title="gRPC: concurrent writes clobber the stream error",
        app=App.GRPC,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.TRADITIONAL,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="wrong-value",
        description=(
            "The reader and writer loops both set stream.err on failure; "
            "without the first-error guard under a mutex, the secondary "
            "\"connection closing\" error masks the root cause."
        ),
        bug_url="pattern: grpc/grpc-go stream error overwrite",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, first_error_wins: bool):
        err = rt.shared("stream.err", None)
        mu = rt.mutex("stream")
        wg = rt.waitgroup()

        def report(error, delay):
            rt.sleep(delay)
            if first_error_wins:
                with mu:
                    if err.load() is None:
                        err.store(error)
            else:
                err.store(error)  # BUG: last writer wins
            wg.done()

        wg.add(2)
        rt.go(report, "rst-stream", 0.1, name="reader-loop")   # root cause
        rt.go(report, "conn-closing", 0.2, name="writer-loop")  # follow-on
        wg.wait()
        return err.peek() != "rst-stream"

    @staticmethod
    def buggy(rt):
        return GrpcErrorOverwrite._program(rt, first_error_wins=False)

    @staticmethod
    def fixed(rt):
        return GrpcErrorOverwrite._program(rt, first_error_wins=True)


@register
class Cockroach6111RefThroughChannel(BugKernel):
    """A mutable object's *reference* crosses a channel; both sides race.

    The paper names this shape explicitly: "Docker#22985 and
    CockroachDB#6111 are caused by data race on a shared variable whose
    reference is passed across goroutines through a channel."
    """

    meta = KernelMeta(
        kernel_id="nonblocking-trad-cockroach-6111",
        title="CockroachDB#6111: reference shared through a channel",
        app=App.COCKROACHDB,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.TRADITIONAL,
        fix_strategy=FixStrategy.PRIVATIZE,
        fix_primitives=(FixPrimitive.NONE,),
        symptom="wrong-value",
        description=(
            "The gossip sender keeps mutating the info struct after "
            "sending its pointer downstream; the receiver decodes a torn "
            "snapshot.  Fixed by sending a private copy."
        ),
        bug_url="cockroachdb/cockroach#6111",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, send_copy: bool):
        info = rt.shared("gossip.info", ("k", 1))
        ch = rt.make_chan(1, name="gossip.out")
        torn = []

        def sender():
            payload = info if not send_copy else rt.shared("copy", info.load())
            ch.send(payload)
            info.store(("k", 2))  # BUG: mutates after sending the reference

        def receiver():
            payload = ch.recv()
            rt.sleep(0.1)  # decode latency
            torn.append(payload.load())

        rt.go(sender, name="gossip-sender")
        rt.go(receiver, name="gossip-receiver")
        rt.sleep(1.0)
        return torn[0] != ("k", 1)

    @staticmethod
    def buggy(rt):
        return Cockroach6111RefThroughChannel._program(rt, send_copy=False)

    @staticmethod
    def fixed(rt):
        return Cockroach6111RefThroughChannel._program(rt, send_copy=True)


@register
class BoltDBTornStats(BugKernel):
    """A reader observes a two-field invariant mid-update."""

    meta = KernelMeta(
        kernel_id="nonblocking-trad-boltdb-torn-stats",
        title="BoltDB: torn read of the tx stats pair",
        app=App.BOLTDB,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.TRADITIONAL,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="wrong-value",
        description=(
            "db.Stats() reads {started, completed} while the commit path "
            "updates them without the stats lock; the snapshot can show "
            "more completed than started transactions."
        ),
        bug_url="pattern: boltdb/bolt Stats race",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, protect: bool):
        started = rt.shared("stats.started", 0)
        completed = rt.shared("stats.completed", 0)
        mu = rt.mutex("stats")
        bad = []

        def committer():
            for _ in range(3):
                if protect:
                    with mu:
                        started.add(1)
                        completed.add(1)
                else:
                    started.add(1)
                    completed.add(1)

        def stats_reader():
            for _ in range(3):
                if protect:
                    with mu:
                        snapshot = (started.load(), completed.load())
                else:
                    s = started.load()  # BUG: unlocked two-field snapshot
                    rt.gosched()
                    c = completed.load()
                    snapshot = (s, c)
                if snapshot[1] > snapshot[0]:
                    bad.append(snapshot)
                rt.gosched()

        rt.go(committer, name="committer")
        rt.go(stats_reader, name="stats-reader")
        rt.sleep(1.0)
        return bool(bad)

    @staticmethod
    def buggy(rt):
        return BoltDBTornStats._program(rt, protect=False)

    @staticmethod
    def fixed(rt):
        return BoltDBTornStats._program(rt, protect=True)


@register
class Docker22985MapRace(BugKernel):
    """Concurrent map mutation loses an entry."""

    meta = KernelMeta(
        kernel_id="nonblocking-trad-docker-22985",
        title="Docker#22985: concurrent map update loses an entry",
        app=App.DOCKER,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.TRADITIONAL,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="wrong-value",
        description=(
            "Two exec-session registrations read-copy-update the sessions "
            "map concurrently; one registration is lost and its cleanup "
            "path later panics."
        ),
        bug_url="moby/moby#22985",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, protect: bool):
        sessions = rt.shared("exec.sessions", {})
        mu = rt.mutex("exec")
        wg = rt.waitgroup()

        def register_session(sid):
            def insert():
                table = dict(sessions.load())
                rt.gosched()
                table[sid] = True
                sessions.store(table)

            if protect:
                with mu:
                    insert()
            else:
                insert()  # BUG: lost update on the map
            wg.done()

        for sid in ("exec-1", "exec-2"):
            wg.add(1)
            rt.go(register_session, sid, name=sid)
        wg.wait()
        return len(sessions.peek()) != 2

    @staticmethod
    def buggy(rt):
        return Docker22985MapRace._program(rt, protect=False)

    @staticmethod
    def fixed(rt):
        return Docker22985MapRace._program(rt, protect=True)


@register
class GrpcShadowEvictionMiss(BugKernel):
    """A race the 4-shadow-word detector misses.

    The racy write is followed by six same-goroutine reads of the same
    variable; they evict the write from the object's 4-cell shadow history
    before the racing goroutine's read arrives.  With unlimited shadow
    words the detector reports it — the Table 12 ablation kernel.
    """

    meta = KernelMeta(
        kernel_id="nonblocking-trad-grpc-shadow-eviction",
        title="gRPC: race hidden by shadow-word eviction",
        app=App.GRPC,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.TRADITIONAL,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="wrong-value",
        description=(
            "The balancer goroutine writes the ready-address slot once and "
            "then polls it in a hot loop; the resolver goroutine reads the "
            "slot unsynchronized.  The write is long gone from the 4-word "
            "shadow history by the time the conflicting read lands."
        ),
        bug_url="pattern: grpc/grpc-go balancer addr race",
        deterministic=False,
        latent=True,
    )

    @staticmethod
    def _program(rt, protect: bool):
        addr = rt.shared("balancer.addr", None)
        mu = rt.mutex("balancer")
        stale = []

        def balancer():
            if protect:
                with mu:
                    addr.store("10.0.0.1:443")
            else:
                addr.store("10.0.0.1:443")
            for _ in range(6):  # hot polling evicts the write's shadow word
                addr.load()

        def resolver():
            rt.sleep(0.2)
            if protect:
                with mu:
                    value = addr.load()
            else:
                value = addr.load()  # racy read, far from the write
            stale.append(value)

        rt.go(balancer, name="balancer")
        rt.go(resolver, name="resolver")
        rt.sleep(1.0)
        # Latent race: the read usually sees the final value, so the kernel
        # is evaluated through the race detector, not through this result.
        return None

    @staticmethod
    def buggy(rt):
        return GrpcShadowEvictionMiss._program(rt, protect=False)

    @staticmethod
    def fixed(rt):
        return GrpcShadowEvictionMiss._program(rt, protect=True)


@register
class KubernetesDoubleCheckedLocking(BugKernel):
    """Double-checked locking without the second check."""

    meta = KernelMeta(
        kernel_id="nonblocking-trad-kubernetes-double-checked",
        title="Kubernetes: double-checked init missing the re-check",
        app=App.KUBERNETES,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.TRADITIONAL,
        fix_strategy=FixStrategy.MOVE_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="wrong-value",
        description=(
            "The client-set cache checks `if cache == nil` on a plain read "
            "outside the lock, then locks and initializes without "
            "re-checking: two API callers both pass the unlocked check and "
            "the second clobbers the first's registrations.  The real fix "
            "is full double-checked locking — an *atomic* fast-path load "
            "plus a re-check under the lock."
        ),
        bug_url="pattern: kubernetes/kubernetes clientset cache init",
        deterministic=False,
        reproduced=False,
    )

    @staticmethod
    def buggy(rt):
        cache = rt.shared("clientset.cache", None)
        inits = rt.shared("clientset.inits", 0)
        mu = rt.mutex("clientset")
        wg = rt.waitgroup()

        def get_clientset():
            if cache.load() is None:   # unlocked plain read (racy)
                mu.lock()
                rt.gosched()
                inits.add(1)           # BUG: no re-check — may run twice
                cache.store({})
                mu.unlock()
            wg.done()

        for i in range(2):
            wg.add(1)
            rt.go(get_clientset, name=f"caller-{i}")
        wg.wait()
        return inits.peek() != 1

    @staticmethod
    def fixed(rt):
        cache = rt.atomic_value(None, name="clientset.cache")
        inits = rt.atomic_int(0, name="clientset.inits")
        mu = rt.mutex("clientset")
        wg = rt.waitgroup()

        def get_clientset():
            if cache.load() is None:        # atomic fast path
                mu.lock()
                if cache.load() is None:    # re-check under the lock
                    inits.add(1)
                    cache.store({})
                mu.unlock()
            wg.done()

        for i in range(2):
            wg.add(1)
            rt.go(get_clientset, name=f"caller-{i}")
        wg.wait()
        return inits.load() != 1


@register
class DockerStateTOCTOU(BugKernel):
    """Check the container state, drop the lock, then act on stale state."""

    meta = KernelMeta(
        kernel_id="nonblocking-trad-docker-toctou",
        title="Docker: stop races with exec (time-of-check-to-time-of-use)",
        app=App.DOCKER,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.TRADITIONAL,
        fix_strategy=FixStrategy.MOVE_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="wrong-value",
        description=(
            "`docker exec` checks IsRunning() under the lock, releases it, "
            "and then attaches — while `docker stop` flips the state in "
            "between, so the exec attaches to a dead container.  The fix "
            "widens the critical section over check *and* act."
        ),
        bug_url="pattern: moby/moby exec-vs-stop TOCTOU",
        deterministic=False,
        reproduced=False,
    )

    @staticmethod
    def _program(rt, act_under_lock: bool):
        mu = rt.mutex("container")
        running = rt.shared("container.running", True)
        attached_dead = rt.shared("attached-dead", False)

        def exec_attach():
            mu.lock()
            is_running = running.load()     # the check
            if not act_under_lock:
                mu.unlock()                 # BUG: lock dropped before acting
                rt.gosched()
            if is_running:
                if not running.load():      # acting on a stopped container
                    attached_dead.store(True)
            if act_under_lock:
                mu.unlock()

        def stop():
            mu.lock()
            running.store(False)
            mu.unlock()

        rt.go(exec_attach, name="exec")
        rt.go(stop, name="stop")
        rt.sleep(1.0)
        return attached_dead.peek()

    @staticmethod
    def buggy(rt):
        return DockerStateTOCTOU._program(rt, act_under_lock=False)

    @staticmethod
    def fixed(rt):
        return DockerStateTOCTOU._program(rt, act_under_lock=True)


@register
class EtcdSplitCriticalSection(BugKernel):
    """Locked read + locked write with an unlocked gap: still a lost update."""

    meta = KernelMeta(
        kernel_id="nonblocking-trad-etcd-split-critical-section",
        title="etcd: read and write locked separately, not atomically",
        app=App.ETCD,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.TRADITIONAL,
        fix_strategy=FixStrategy.MOVE_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="wrong-value",
        description=(
            "The quota checker reads usage under the lock, computes the new "
            "value unlocked, then writes under the lock again — every "
            "access is locked, yet concurrent updates vanish: an atomicity "
            "violation, not a data race.  The fix merges the two sections."
        ),
        bug_url="pattern: etcd-io/etcd quota split section",
        deterministic=False,
        reproduced=False,
    )

    WORKERS = 3

    @staticmethod
    def _program(rt, single_section: bool):
        mu = rt.mutex("quota")
        usage = rt.shared("quota.usage", 0)
        wg = rt.waitgroup()

        def charge():
            if single_section:
                with mu:
                    usage.store(usage.load() + 1)
            else:
                with mu:
                    current = usage.load()
                rt.gosched()                # compute outside the lock
                new_value = current + 1
                with mu:
                    usage.store(new_value)  # BUG: may clobber a peer's charge
            wg.done()

        for i in range(EtcdSplitCriticalSection.WORKERS):
            wg.add(1)
            rt.go(charge, name=f"charge-{i}")
        wg.wait()
        return usage.peek() != EtcdSplitCriticalSection.WORKERS

    @staticmethod
    def buggy(rt):
        return EtcdSplitCriticalSection._program(rt, single_section=False)

    @staticmethod
    def fixed(rt):
        return EtcdSplitCriticalSection._program(rt, single_section=True)


@register
class CockroachAppendRace(BugKernel):
    """Concurrent slice appends drop entries."""

    meta = KernelMeta(
        kernel_id="nonblocking-trad-cockroach-append-race",
        title="CockroachDB: concurrent appends to the intents slice",
        app=App.COCKROACHDB,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.TRADITIONAL,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="wrong-value",
        description=(
            "Parallel command evaluation appends encountered intents to a "
            "shared slice; Go's append is a read-copy-update, so "
            "interleaved appends drop intents and they never get resolved."
        ),
        bug_url="pattern: cockroachdb/cockroach intents append race",
        deterministic=False,
        reproduced=False,
    )

    @staticmethod
    def _program(rt, protect: bool):
        intents = rt.shared("intents", ())
        mu = rt.mutex("intents")
        wg = rt.waitgroup()

        def evaluate(key):
            def append():
                intents.update(lambda seen: seen + (key,))

            if protect:
                with mu:
                    append()
            else:
                append()  # BUG
            wg.done()

        for key in ("a", "b", "c", "d"):
            wg.add(1)
            rt.go(evaluate, key, name=f"eval-{key}")
        wg.wait()
        return len(intents.peek()) != 4

    @staticmethod
    def buggy(rt):
        return CockroachAppendRace._program(rt, protect=False)

    @staticmethod
    def fixed(rt):
        return CockroachAppendRace._program(rt, protect=True)


@register
class BoltDBUnlockedReadDuringCommit(BugKernel):
    """Stats read skips the lock "because it is just a read"."""

    meta = KernelMeta(
        kernel_id="nonblocking-trad-boltdb-unlocked-read",
        title="BoltDB: lock-free read overlaps a two-step commit",
        app=App.BOLTDB,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.TRADITIONAL,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="wrong-value",
        description=(
            "The commit path updates {root page, sequence} under the meta "
            "lock in two steps; a reader that skips the lock can observe "
            "the new root with the old sequence and follow a bogus page."
        ),
        bug_url="pattern: boltdb/bolt meta read race",
        deterministic=False,
        reproduced=False,
    )

    @staticmethod
    def _program(rt, reader_locks: bool):
        mu = rt.mutex("meta")
        root = rt.shared("meta.root", 1)
        sequence = rt.shared("meta.seq", 1)
        torn = rt.shared("torn", False)

        def commit():
            for n in (2, 3):
                with mu:
                    root.store(n)
                    rt.gosched()
                    sequence.store(n)

        def reader():
            for _ in range(4):
                if reader_locks:
                    with mu:
                        snapshot = (root.load(), sequence.load())
                else:
                    r = root.load()         # BUG: unlocked pair read
                    rt.gosched()
                    s = sequence.load()
                    snapshot = (r, s)
                if snapshot[0] != snapshot[1]:
                    torn.store(True)
                rt.gosched()

        rt.go(commit, name="commit")
        rt.go(reader, name="stats-reader")
        rt.sleep(1.0)
        return torn.peek()

    @staticmethod
    def buggy(rt):
        return BoltDBUnlockedReadDuringCommit._program(rt, reader_locks=False)

    @staticmethod
    def fixed(rt):
        return BoltDBUnlockedReadDuringCommit._program(rt, reader_locks=True)
