"""Non-blocking kernels: shared-memory races through special libraries
(Table 9 "lib" under shared memory).

Go libraries that implicitly share objects across goroutines: ``context``
values (etcd#7816) and ``testing.T`` (three of the studied bugs).
"""

from __future__ import annotations

from ...dataset.records import (
    App,
    Behavior,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
)
from ...stdlib.testingpkg import T
from ..meta import BugKernel, KernelMeta
from ..registry import register


@register
class Etcd7816ContextValueRace(BugKernel):
    """Goroutines attached to one context race on a value it carries."""

    meta = KernelMeta(
        kernel_id="nonblocking-lib-etcd-7816",
        title="etcd#7816: data race on a context-carried value",
        app=App.ETCD,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.SHARED_LIBRARY,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="wrong-value",
        description=(
            "The context object is *designed* to be accessed by every "
            "goroutine attached to it; here two of them append to the "
            "trace-fields value unsynchronized and updates get lost."
        ),
        bug_url="etcd-io/etcd#7816",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, protect: bool):
        fields = rt.shared("trace.fields", ())
        mu = rt.mutex("trace")
        ctx = rt.with_value(rt.background(), "trace", fields)
        wg = rt.waitgroup()

        def annotate(label):
            trace = ctx.value("trace")

            def append():
                trace.update(lambda seen: seen + (label,))

            if protect:
                with mu:
                    append()
            else:
                append()  # BUG: racy RMW on the shared context value
            wg.done()

        wg.add(2)
        rt.go(annotate, "range-begin", name="range-loop")
        rt.go(annotate, "txn-begin", name="txn-loop")
        wg.wait()
        return len(fields.peek()) != 2

    @staticmethod
    def buggy(rt):
        return Etcd7816ContextValueRace._program(rt, protect=False)

    @staticmethod
    def fixed(rt):
        return Etcd7816ContextValueRace._program(rt, protect=True)


@register
class GrpcTestingTRace(BugKernel):
    """Spawned goroutines call ``t.Errorf`` concurrently with the test body."""

    meta = KernelMeta(
        kernel_id="nonblocking-lib-grpc-testing-t",
        title="gRPC: goroutines race on testing.T",
        app=App.GRPC,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.SHARED_LIBRARY,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL,),
        symptom="wrong-value",
        description=(
            "A testing function passes its *testing.T into goroutines that "
            "report failures; T's log buffer is appended to by racy "
            "read-modify-writes and entries vanish.  The fix collects "
            "errors through a channel and reports from the test goroutine "
            "(exactly the graphql-go fix the authors' detector prompted)."
        ),
        bug_url="pattern: grpc/grpc-go testing.T race",
        deterministic=False,
    )

    CHECKS = 3

    @staticmethod
    def _program(rt, collect_via_channel: bool):
        t = T(rt, "TestConcurrentRPCs")
        wg = rt.waitgroup()
        errors_ch = rt.make_chan(GrpcTestingTRace.CHECKS, name="t.errors")

        def check(i):
            message = f"rpc-{i} failed"
            if collect_via_channel:
                errors_ch.send(message)
            else:
                t.errorf(message)  # BUG: racy append to t's log
            wg.done()

        for i in range(GrpcTestingTRace.CHECKS):
            wg.add(1)
            rt.go(check, i, name=f"check-{i}")
        wg.wait()
        if collect_via_channel:
            errors_ch.close()
            for message in errors_ch:
                t.errorf(message)
        return len(t.logs) != GrpcTestingTRace.CHECKS

    @staticmethod
    def buggy(rt):
        return GrpcTestingTRace._program(rt, collect_via_channel=False)

    @staticmethod
    def fixed(rt):
        return GrpcTestingTRace._program(rt, collect_via_channel=True)
