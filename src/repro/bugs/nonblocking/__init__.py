"""Non-blocking bug kernels, one module per Table 9 root-cause category."""

from . import (  # noqa: F401
    anonymous,
    channel,
    speciallib,
    timers,
    traditional,
    waitgroup,
)
