"""Non-blocking kernels: anonymous-function capture races (Table 9, 11/86).

Figure 8's shape — a goroutine closure capturing a loop variable by
reference — exists verbatim in Python, so these kernels are also the
positive corpus for the static capture detector
(:mod:`repro.detect.capture`), mirroring the detector the paper's authors
prototype in Section 7.
"""

from __future__ import annotations

from ...dataset.records import (
    App,
    Behavior,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
)
from ..meta import BugKernel, KernelMeta
from ..registry import register


@register
class Docker30603LoopCapture(BugKernel):
    """Figure 8: every child may read the final value of ``i``."""

    meta = KernelMeta(
        kernel_id="nonblocking-anon-docker-30603",
        title="Docker#30603: goroutines capture the loop variable",
        app=App.DOCKER,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.ANONYMOUS_FUNCTION,
        fix_strategy=FixStrategy.PRIVATIZE,
        fix_primitives=(FixPrimitive.NONE,),
        symptom="wrong-value",
        description=(
            "for i := 17; i <= 21; i++ spawns goroutines whose closures "
            "format \"v1.%d\" from the *shared* i; children that start "
            "after the loop ends all see 21.  Docker's fix passes i as a "
            "parameter (a private copy)."
        ),
        figure="8",
        bug_url="moby/moby#30603",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, pass_copy: bool):
        shared_i = rt.shared("i", 0)
        versions = rt.shared("apiVersions", ())
        record_mu = rt.mutex("record")  # the recording itself is race-free:
        wg = rt.waitgroup()             # the only bug is *which* i is read

        def record(value):
            with record_mu:
                versions.update(lambda seen: seen + (f"v1.{value}",))
            wg.done()

        for i in range(17, 22):
            shared_i.store(i)  # the loop variable lives in shared memory
            wg.add(1)
            if pass_copy:
                rt.go(record, i, name="probe")  # private copy of i
            else:
                rt.go(lambda: record(shared_i.load()), name="probe")  # BUG
        wg.wait()
        expected = tuple(f"v1.{i}" for i in range(17, 22))
        return tuple(sorted(versions.peek())) != tuple(sorted(expected))

    @staticmethod
    def buggy(rt):
        return Docker30603LoopCapture._program(rt, pass_copy=False)

    @staticmethod
    def fixed(rt):
        return Docker30603LoopCapture._program(rt, pass_copy=True)


@register
class KubernetesParentChildCapture(BugKernel):
    """Parent keeps writing a captured local after the child starts."""

    meta = KernelMeta(
        kernel_id="nonblocking-anon-kubernetes-parent-child",
        title="Kubernetes: parent mutates a captured local",
        app=App.KUBERNETES,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.ANONYMOUS_FUNCTION,
        fix_strategy=FixStrategy.PRIVATIZE,
        fix_primitives=(FixPrimitive.NONE,),
        symptom="wrong-value",
        description=(
            "The retry helper captures the request object and then mutates "
            "it for the next attempt while the in-flight goroutine still "
            "reads it; 9 of the paper's 11 capture bugs are exactly this "
            "parent/child shape."
        ),
        bug_url="pattern: kubernetes/kubernetes retry capture",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, pass_copy: bool):
        request = rt.shared("request.body", "attempt-1")
        sent = rt.shared("sent", None)

        def send_captured():
            sent.store(request.load())  # BUG: may read attempt-2

        def send_private(body):
            sent.store(body)

        if pass_copy:
            rt.go(send_private, request.peek(), name="sender")
        else:
            rt.go(send_captured, name="sender")
        request.store("attempt-2")  # parent prepares the retry
        rt.sleep(1.0)
        return sent.peek() != "attempt-1"

    @staticmethod
    def buggy(rt):
        return KubernetesParentChildCapture._program(rt, pass_copy=False)

    @staticmethod
    def fixed(rt):
        return KubernetesParentChildCapture._program(rt, pass_copy=True)


@register
class EtcdSiblingCapture(BugKernel):
    """Two child goroutines race on a local captured from the parent."""

    meta = KernelMeta(
        kernel_id="nonblocking-anon-etcd-siblings",
        title="etcd: two children race on a captured accumulator",
        app=App.ETCD,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.ANONYMOUS_FUNCTION,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="wrong-value",
        description=(
            "Both range-scan goroutines append into the revisions slice the "
            "parent declared before the anonymous functions; the "
            "read-modify-write pairs interleave and drop entries (the other "
            "2 of the paper's 11 capture bugs are child/child races)."
        ),
        bug_url="pattern: etcd-io/etcd range scan capture",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, protect: bool):
        revisions = rt.shared("revisions", ())
        mu = rt.mutex("revisions")
        wg = rt.waitgroup()

        def scan(shard):
            def append_revision():
                revisions.update(lambda seen: seen + (shard,))

            if protect:
                with mu:
                    append_revision()
            else:
                append_revision()  # BUG
            wg.done()

        wg.add(2)
        rt.go(lambda: scan("shard-a"), name="scan-a")
        rt.go(lambda: scan("shard-b"), name="scan-b")
        wg.wait()
        return len(revisions.peek()) != 2

    @staticmethod
    def buggy(rt):
        return EtcdSiblingCapture._program(rt, protect=False)

    @staticmethod
    def fixed(rt):
        return EtcdSiblingCapture._program(rt, protect=True)


@register
class GrpcIndexCapture(BugKernel):
    """Workers index a slice with the captured loop counter."""

    meta = KernelMeta(
        kernel_id="nonblocking-anon-grpc-index-capture",
        title="gRPC: captured index selects the wrong backend",
        app=App.GRPC,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.ANONYMOUS_FUNCTION,
        fix_strategy=FixStrategy.PRIVATIZE,
        fix_primitives=(FixPrimitive.NONE,),
        symptom="wrong-value",
        description=(
            "The connectivity prober loops over backends spawning probes "
            "that index addrs[idx] with the shared idx; late probes all "
            "hit the last backend, leaving the others unmonitored."
        ),
        bug_url="pattern: grpc/grpc-go prober index capture",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, pass_copy: bool):
        backends = ("b0", "b1", "b2")
        idx = rt.shared("idx", 0)
        probed = rt.shared("probed", frozenset())
        record_mu = rt.mutex("record")  # recording is race-free; the bug
        wg = rt.waitgroup()             # is *which* backend gets probed

        def probe(backend):
            with record_mu:
                probed.update(lambda seen: seen | {backend})
            wg.done()

        for i, _backend in enumerate(backends):
            idx.store(i)
            wg.add(1)
            if pass_copy:
                rt.go(probe, backends[i], name="probe")
            else:
                rt.go(lambda: probe(backends[idx.load()]), name="probe")  # BUG
        wg.wait()
        return probed.peek() != frozenset(backends)

    @staticmethod
    def buggy(rt):
        return GrpcIndexCapture._program(rt, pass_copy=False)

    @staticmethod
    def fixed(rt):
        return GrpcIndexCapture._program(rt, pass_copy=True)


@register
class BoltDBTxCapture(BugKernel):
    """A closure captures the tx variable that the loop keeps rebinding."""

    meta = KernelMeta(
        kernel_id="nonblocking-anon-boltdb-tx-capture",
        title="BoltDB: deferred closure captures the rebound tx",
        app=App.BOLTDB,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.ANONYMOUS_FUNCTION,
        fix_strategy=FixStrategy.PRIVATIZE,
        fix_primitives=(FixPrimitive.NONE,),
        symptom="wrong-value",
        description=(
            "Audit hooks are registered inside the migration loop as "
            "closures over the current tx id; the variable is rebound "
            "each iteration, so late-running hooks all audit the last "
            "transaction.  The fix passes the id as a parameter."
        ),
        bug_url="pattern: boltdb/bolt migration audit capture",
        deterministic=False,
        reproduced=False,
    )

    @staticmethod
    def _program(rt, pass_copy: bool):
        current_tx = rt.shared("current-tx", 0)
        audited = rt.shared("audited", ())
        audit_mu = rt.mutex("audit")
        wg = rt.waitgroup()

        def audit(tx_id):
            with audit_mu:
                audited.update(lambda seen: seen + (tx_id,))
            wg.done()

        for tx_id in (101, 102, 103):
            current_tx.store(tx_id)  # the loop variable, in shared memory
            wg.add(1)
            if pass_copy:
                rt.go(audit, tx_id, name="audit-hook")
            else:
                rt.go(lambda: audit(current_tx.load()), name="audit-hook")
        wg.wait()
        return tuple(sorted(audited.peek())) != (101, 102, 103)

    @staticmethod
    def buggy(rt):
        return BoltDBTxCapture._program(rt, pass_copy=False)

    @staticmethod
    def fixed(rt):
        return BoltDBTxCapture._program(rt, pass_copy=True)
