"""Non-blocking kernels: WaitGroup misuse (Table 9, 6/86 bugs).

The underlying rule: ``Add`` must happen-before ``Wait``.  Includes
Figure 9 (etcd#6371) verbatim.
"""

from __future__ import annotations

from ...dataset.records import (
    App,
    Behavior,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
)
from ..meta import BugKernel, KernelMeta
from ..registry import register


@register
class Etcd6371AddAfterWait(BugKernel):
    """Figure 9: nothing orders func1's Add before func2's Wait."""

    meta = KernelMeta(
        kernel_id="nonblocking-wg-etcd-6371",
        title="etcd#6371: Add races with Wait",
        app=App.ETCD,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.WAITGROUP,
        fix_strategy=FixStrategy.MOVE_SYNC,
        fix_primitives=(FixPrimitive.WAITGROUP, FixPrimitive.MUTEX),
        symptom="wrong-value",
        description=(
            "peer.send's Add(1) can run after the stopper's Wait() already "
            "returned, so the stopper proceeds while a sender is still "
            "active and observes a half-torn-down peer.  The fix moves Add "
            "into the mutex-protected section Wait also respects."
        ),
        figure="9",
        bug_url="etcd-io/etcd#6371",
        deterministic=False,
    )

    @staticmethod
    def _program(rt, add_in_critical_section: bool):
        mu = rt.mutex("peer")
        wg = rt.waitgroup("peer.senders")
        stopped = rt.shared("peer.stopped", False)
        sent_after_stop = rt.shared("sent-after-stop", False)

        def send():  # func1
            if add_in_critical_section:
                mu.lock()
                if not stopped.load():
                    wg.add(1)
                    mu.unlock()
                    if stopped.load():
                        sent_after_stop.store(True)
                    wg.done()
                else:
                    mu.unlock()
            else:
                wg.add(1)  # BUG: unordered with stop()'s Wait
                if stopped.load():
                    sent_after_stop.store(True)
                wg.done()

        def stop():  # func2
            mu.lock()
            wg.wait()  # may return before send()'s Add
            stopped.store(True)
            mu.unlock()

        rt.go(send, name="peer-send")
        rt.go(stop, name="peer-stop")
        rt.sleep(1.0)
        return sent_after_stop.peek()

    @staticmethod
    def buggy(rt):
        return Etcd6371AddAfterWait._program(rt, add_in_critical_section=False)

    @staticmethod
    def fixed(rt):
        return Etcd6371AddAfterWait._program(rt, add_in_critical_section=True)


@register
class DockerDoneTwice(BugKernel):
    """An error path calls Done twice, panicking the daemon."""

    meta = KernelMeta(
        kernel_id="nonblocking-wg-docker-done-twice",
        title="Docker: double Done drives the counter negative",
        app=App.DOCKER,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.WAITGROUP,
        fix_strategy=FixStrategy.REMOVE_SYNC,
        fix_primitives=(FixPrimitive.WAITGROUP,),
        symptom="panic",
        description=(
            "The attach teardown calls Done in its error branch *and* in "
            "the deferred cleanup; the second decrement makes the counter "
            "negative and Go panics the whole daemon."
        ),
        bug_url="pattern: moby/moby attach double Done",
    )

    @staticmethod
    def _program(rt, done_in_defer_only: bool):
        wg = rt.waitgroup("attach")
        wg.add(1)

        def attach_stream():
            failed = True
            try:
                if failed and not done_in_defer_only:
                    wg.done()  # BUG: the finally below decrements again
                    return
            finally:
                wg.done()

        rt.go(attach_stream, name="attach")
        wg.wait()
        return False

    @staticmethod
    def buggy(rt):
        return DockerDoneTwice._program(rt, done_in_defer_only=False)

    @staticmethod
    def fixed(rt):
        return DockerDoneTwice._program(rt, done_in_defer_only=True)


@register
class CockroachAddInsideWorker(BugKernel):
    """Add is called by the worker itself, after go — too late."""

    meta = KernelMeta(
        kernel_id="nonblocking-wg-cockroach-add-inside",
        title="CockroachDB: Add called inside the spawned worker",
        app=App.COCKROACHDB,
        behavior=Behavior.NONBLOCKING,
        subcause=NonBlockingSubCause.WAITGROUP,
        fix_strategy=FixStrategy.MOVE_SYNC,
        fix_primitives=(FixPrimitive.WAITGROUP,),
        symptom="wrong-value",
        description=(
            "Each intent resolver calls wg.Add(1) as its first statement — "
            "after `go` — so the barrier's Wait can observe counter 0 "
            "before any worker registered and the caller commits a partial "
            "resolution.  The fix moves Add before the go statement."
        ),
        bug_url="pattern: cockroachdb/cockroach intent resolver Add-after-go",
        deterministic=False,
    )

    WORKERS = 3

    @staticmethod
    def _program(rt, add_before_go: bool):
        wg = rt.waitgroup("resolvers")
        resolved = rt.atomic_int(0, name="resolved")

        def resolver():
            if not add_before_go:
                wg.add(1)  # BUG: Wait may already have returned
            resolved.add(1)
            wg.done()

        for i in range(CockroachAddInsideWorker.WORKERS):
            if add_before_go:
                wg.add(1)
            rt.go(resolver, name=f"resolver-{i}")
        wg.wait()
        return resolved.load() != CockroachAddInsideWorker.WORKERS

    @staticmethod
    def buggy(rt):
        return CockroachAddInsideWorker._program(rt, add_before_go=False)

    @staticmethod
    def fixed(rt):
        return CockroachAddInsideWorker._program(rt, add_before_go=True)
