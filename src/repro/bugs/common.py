"""Shared helpers for bug kernels."""

from __future__ import annotations


def background_activity(rt, iterations: int = 200, interval: float = 0.1) -> None:
    """Spawn a goroutine modelling "the rest of the application".

    Real Docker/Kubernetes processes always have live goroutines, which is
    the first reason Go's built-in deadlock detector misses partial
    deadlocks: it only reports when *no* goroutine can run.  Kernels whose
    paper counterpart was missed by the detector spawn this helper so the
    process never goes fully asleep within the observation window.

    The loop is finite so that *fixed* variants drain quickly after main
    returns; ``iterations * interval`` must exceed the kernel's
    ``time_limit`` for buggy variants.
    """

    def heartbeat():
        for _ in range(iterations):
            rt.sleep(interval)

    rt.go(heartbeat, name="app.background")
