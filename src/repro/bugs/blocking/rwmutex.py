"""Blocking kernels: RWMutex misuse (Table 6, 5/85 bugs).

Both kernels hinge on the Go-specific semantics Section 5.1.1 describes:
write lock requests have a higher privilege than read lock requests, so a
pending writer blocks *new* readers — including a goroutine that already
holds a read lock.  The same code under pthread's reader-preference
(``writer_priority=False``) does not block; the ablation benchmark
demonstrates it.
"""

from __future__ import annotations

from ...dataset.records import (
    App,
    Behavior,
    BlockingSubCause,
    FixPrimitive,
    FixStrategy,
)
from ..meta import BugKernel, KernelMeta
from ..registry import register


@register
class DockerRWMutexWriterPriority(BugKernel):
    """th-A holds a read lock, th-B's write lock interleaves, th-A re-RLocks."""

    meta = KernelMeta(
        kernel_id="blocking-rwmutex-docker-reentrant-rlock",
        title="Docker: re-entrant RLock interleaved by a writer",
        app=App.DOCKER,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.RWMUTEX,
        fix_strategy=FixStrategy.CHANGE_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="leak",
        description=(
            "The paper's exact RWMutex scenario: th-A's first RLock admits "
            "it; th-B's Lock then queues; th-A's second RLock queues behind "
            "the pending writer because Go privileges writers.  Neither can "
            "proceed.  The fix holds a single read lock across the whole "
            "operation."
        ),
        bug_url="pattern: moby/moby container-store RLock reentry",
    )

    @staticmethod
    def _program(rt, reentrant_rlock: bool):
        mu = rt.rwmutex("containers")
        listed = rt.shared("listed", 0)

        def lister():  # th-A
            mu.rlock()
            listed.add(1)
            rt.sleep(1.0)  # th-B's write lock arrives in this window
            if reentrant_rlock:
                mu.rlock()  # BUG: queues behind the pending writer
                listed.add(1)
                mu.runlock()
            else:
                listed.add(1)  # still under the first read lock
            mu.runlock()

        def committer():  # th-B
            rt.sleep(0.5)
            mu.lock()
            mu.unlock()

        rt.go(lister, name="lister")
        rt.go(committer, name="committer")
        rt.sleep(5.0)
        return listed.peek()

    @staticmethod
    def buggy(rt):
        return DockerRWMutexWriterPriority._program(rt, reentrant_rlock=True)

    @staticmethod
    def fixed(rt):
        return DockerRWMutexWriterPriority._program(rt, reentrant_rlock=False)


@register
class CockroachRLockUpgrade(BugKernel):
    """A goroutine tries to upgrade its own read lock to a write lock."""

    meta = KernelMeta(
        kernel_id="blocking-rwmutex-cockroach-upgrade",
        title="CockroachDB: RLock upgraded to Lock in the same goroutine",
        app=App.COCKROACHDB,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.RWMUTEX,
        fix_strategy=FixStrategy.MOVE_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="leak",
        description=(
            "The range descriptor cache reads under RLock and, on a miss, "
            "takes the write lock to fill the entry while still holding the "
            "read lock: the write lock waits for the read lock forever.  "
            "The fix releases the read lock before upgrading."
        ),
        bug_url="pattern: cockroachdb/cockroach range cache upgrade",
    )

    @staticmethod
    def _program(rt, release_before_upgrade: bool):
        mu = rt.rwmutex("rangecache")
        cache = rt.shared("rangecache.entry", None)

        def lookup():
            mu.rlock()
            entry = cache.load()
            if entry is None:
                if release_before_upgrade:
                    mu.runlock()
                mu.lock()  # BUG (when read lock still held): waits on self
                cache.store("descriptor")
                mu.unlock()
                if not release_before_upgrade:
                    mu.runlock()
            else:
                mu.runlock()

        rt.go(lookup, name="range-lookup")
        rt.sleep(5.0)
        return cache.peek()

    @staticmethod
    def buggy(rt):
        return CockroachRLockUpgrade._program(rt, release_before_upgrade=False)

    @staticmethod
    def fixed(rt):
        return CockroachRLockUpgrade._program(rt, release_before_upgrade=True)
