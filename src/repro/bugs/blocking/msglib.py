"""Blocking kernels: message-passing library misuse (Table 6 "Lib", 4/85).

Go's messaging libraries — ``context`` and ``io.Pipe`` here — wrap channels
and goroutines, so misusing them blocks goroutines *inside* library calls.
Includes Figure 6 (the context overwrite leak) verbatim.
"""

from __future__ import annotations

from ...dataset.records import (
    App,
    Behavior,
    BlockingSubCause,
    FixPrimitive,
    FixStrategy,
)
from ...stdlib.iopipe import EOF
from ..meta import BugKernel, KernelMeta
from ..registry import register


@register
class Grpc1460ContextOverwrite(BugKernel):
    """Figure 6: the WithCancel context (and its watcher goroutine) is
    overwritten before anyone can ever cancel it."""

    meta = KernelMeta(
        kernel_id="blocking-msglib-grpc-1460-context",
        title="gRPC: hcancel overwritten by the timeout context",
        app=App.GRPC,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.MSG_LIBRARY,
        fix_strategy=FixStrategy.MOVE_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL, FixPrimitive.MISC),
        symptom="leak",
        description=(
            "context.WithCancel attaches a goroutine to hctx; when timeout "
            "> 0 the code immediately creates a second context and loses "
            "the only reference to the first one's cancel function, so its "
            "goroutine can never be released.  The patch creates exactly "
            "one context via if/else."
        ),
        figure="6",
        bug_url="grpc/grpc-go#1460",
    )

    TIMEOUT = 2.0

    @staticmethod
    def _program(rt, create_extra_context: bool):
        parent, parent_cancel = rt.with_cancel(rt.background())
        timeout = Grpc1460ContextOverwrite.TIMEOUT

        if create_extra_context:
            # BUG: always creates the cancel context first...
            hctx, hcancel = rt.with_cancel(parent)
            if timeout > 0:
                # ...then overwrites both names; the first context's
                # watcher goroutine is now unreachable and leaks.
                hctx, hcancel = rt.with_timeout(parent, timeout)
        else:
            if timeout > 0:
                hctx, hcancel = rt.with_timeout(parent, timeout)
            else:
                hctx, hcancel = rt.with_cancel(parent)

        rt.sleep(0.5)  # issue the HTTP request against hctx
        hcancel()
        return hctx.err()

    @staticmethod
    def buggy(rt):
        return Grpc1460ContextOverwrite._program(rt, create_extra_context=True)

    @staticmethod
    def fixed(rt):
        return Grpc1460ContextOverwrite._program(rt, create_extra_context=False)


@register
class DockerPipeWriterLeak(BugKernel):
    """A writer blocks on an io.Pipe whose reader gave up without Close."""

    meta = KernelMeta(
        kernel_id="blocking-msglib-docker-pipe-writer",
        title="Docker: pipe reader returns without Close",
        app=App.DOCKER,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.MSG_LIBRARY,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MISC,),
        symptom="leak",
        description=(
            "The image-export goroutine streams layers into an io.Pipe; the "
            "HTTP handler reads one chunk, errors out and returns without "
            "CloseWithError, leaving the exporter blocked in Write forever."
        ),
        bug_url="pattern: moby/moby image export pipe leak",
    )

    @staticmethod
    def _program(rt, close_on_error: bool):
        pr, pw = rt.pipe()
        exported = rt.shared("exported.chunks", 0)

        def exporter():
            try:
                for chunk in ("layer0", "layer1", "layer2"):
                    pw.write(chunk)
                    exported.add(1)
                pw.close()
            except Exception:
                pass  # pipe torn down by the reader

        def handler():
            pr.read()  # first chunk OK
            # simulated downstream error...
            if close_on_error:
                pr.close()  # unblocks the exporter with ErrClosedPipe
            # BUG: plain return leaves the exporter's next write stuck

        rt.go(exporter, name="image-exporter")
        rt.go(handler, name="http-handler")
        rt.sleep(5.0)
        return exported.peek()

    @staticmethod
    def buggy(rt):
        return DockerPipeWriterLeak._program(rt, close_on_error=False)

    @staticmethod
    def fixed(rt):
        return DockerPipeWriterLeak._program(rt, close_on_error=True)


@register
class EtcdPipeReaderLeak(BugKernel):
    """A reader blocks on an io.Pipe whose writer forgot to Close."""

    meta = KernelMeta(
        kernel_id="blocking-msglib-etcd-pipe-reader",
        title="etcd: pipe writer returns without Close",
        app=App.ETCD,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.MSG_LIBRARY,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MISC,),
        symptom="leak",
        description=(
            "The snapshot streamer writes its payload into an io.Pipe and "
            "returns; without pw.Close() the decoder goroutine never sees "
            "EOF and blocks in Read forever."
        ),
        bug_url="pattern: etcd-io/etcd snapshot pipe leak",
    )

    @staticmethod
    def _program(rt, close_when_done: bool):
        pr, pw = rt.pipe()
        decoded = rt.shared("decoded.chunks", 0)

        def streamer():
            for chunk in ("meta", "kvs"):
                pw.write(chunk)
            if close_when_done:
                pw.close()
            # BUG: plain return, no EOF for the decoder

        def decoder():
            try:
                while True:
                    pr.read()
                    decoded.add(1)
            except EOF:
                pass

        rt.go(streamer, name="snapshot-streamer")
        rt.go(decoder, name="snapshot-decoder")
        rt.sleep(5.0)
        return decoded.peek()

    @staticmethod
    def buggy(rt):
        return EtcdPipeReaderLeak._program(rt, close_when_done=False)

    @staticmethod
    def fixed(rt):
        return EtcdPipeReaderLeak._program(rt, close_when_done=True)


@register
class CockroachContextNeverCancelled(BugKernel):
    """Per-request WithTimeout contexts whose cancel is never called."""

    meta = KernelMeta(
        kernel_id="blocking-msglib-cockroach-ctx-no-cancel",
        title="CockroachDB: WithCancel without defer cancel()",
        app=App.COCKROACHDB,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.MSG_LIBRARY,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MISC,),
        symptom="leak",
        description=(
            "The retry helper derives a WithCancel context per attempt "
            "under a long-lived parent but never calls cancel(); every "
            "attempt leaks its watcher goroutine, which waits on a parent "
            "that only ends with the process.  The fix is the canonical "
            "`defer cancel()`."
        ),
        bug_url="pattern: cockroachdb/cockroach dist-sender retry ctx",
        reproduced=False,
    )

    ATTEMPTS = 3

    @staticmethod
    def _program(rt, defer_cancel: bool):
        parent, _parent_cancel = rt.with_cancel(rt.background())

        def attempt(i):
            ctx, cancel = rt.with_cancel(parent)
            rt.sleep(0.1)  # the RPC completes quickly
            if defer_cancel:
                cancel()
            # BUG: without cancel, ctx's watcher is stranded forever

        for i in range(CockroachContextNeverCancelled.ATTEMPTS):
            attempt(i)
        return rt.now()

    @staticmethod
    def buggy(rt):
        return CockroachContextNeverCancelled._program(rt, defer_cancel=False)

    @staticmethod
    def fixed(rt):
        return CockroachContextNeverCancelled._program(rt, defer_cancel=True)
