"""Blocking kernels: Wait misuse — Cond.Wait and WaitGroup.Wait
(Table 6, 3/85 bugs; no circular wait involved in any of them).

Includes Figure 5 (Docker#25384) verbatim.
"""

from __future__ import annotations

from ...dataset.records import (
    App,
    Behavior,
    BlockingSubCause,
    FixPrimitive,
    FixStrategy,
)
from ..common import background_activity
from ..meta import BugKernel, KernelMeta
from ..registry import register


@register
class Docker25384WaitInLoop(BugKernel):
    """Figure 5: WaitGroup.Wait called inside the goroutine-spawning loop."""

    meta = KernelMeta(
        kernel_id="blocking-wait-docker-25384",
        title="Docker#25384: wg.Wait() inside the plugin loop",
        app=App.DOCKER,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.WAIT,
        fix_strategy=FixStrategy.MOVE_SYNC,
        fix_primitives=(FixPrimitive.WAITGROUP,),
        symptom="leak",
        description=(
            "group.Add(len(pm.plugins)) runs once, but Wait() sits inside "
            "the loop: after the first plugin's Done() the counter is still "
            "len-1, so Wait blocks and no further plugin goroutine is ever "
            "created.  The fix moves Wait() out of the loop."
        ),
        figure="5",
        bug_url="moby/moby#25384",
    )
    run_kwargs = {"time_limit": 10.0}

    @staticmethod
    def _program(rt, wait_in_loop: bool):
        background_activity(rt)
        plugins = ["volume", "network", "auth"]
        group = rt.waitgroup("plugins")
        disabled = rt.atomic_int(0, name="plugins.disabled")
        group.add(len(plugins))

        def disable_plugin(name):
            disabled.add(1)
            group.done()

        for name in plugins:
            rt.go(disable_plugin, name, name=f"disable-{name}")
            if wait_in_loop:
                group.wait()  # BUG: blocks with counter == len(plugins) - 1
        if not wait_in_loop:
            group.wait()
        return disabled.load()

    @staticmethod
    def buggy(rt):
        return Docker25384WaitInLoop._program(rt, wait_in_loop=True)

    @staticmethod
    def fixed(rt):
        return Docker25384WaitInLoop._program(rt, wait_in_loop=False)


@register
class KubernetesCondMissedSignal(BugKernel):
    """Cond.Wait with no Signal/Broadcast after the state change."""

    meta = KernelMeta(
        kernel_id="blocking-wait-kubernetes-cond-missed-signal",
        title="Kubernetes: state change without Cond.Signal",
        app=App.KUBERNETES,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.WAIT,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.COND,),
        symptom="leak",
        description=(
            "The work-queue consumer waits on a Cond for items; the producer "
            "appends an item under the lock but forgets to Signal, so the "
            "consumer sleeps forever even though its predicate is satisfied."
        ),
        bug_url="pattern: kubernetes/kubernetes workqueue missed signal",
    )

    @staticmethod
    def _program(rt, signal_after_add: bool):
        mu = rt.mutex("queue")
        cond = rt.cond(mu, "queue.items")
        queue = rt.shared("queue.items", ())
        processed = rt.shared("queue.processed", 0)

        def consumer():
            mu.lock()
            while not queue.load():
                cond.wait()  # BUG: never signalled
            items = queue.load()
            queue.store(items[1:])
            mu.unlock()
            processed.add(1)

        def producer():
            rt.sleep(0.5)
            mu.lock()
            queue.store(queue.load() + ("pod-sync",))
            if signal_after_add:
                cond.signal()
            mu.unlock()

        rt.go(consumer, name="consumer")
        rt.go(producer, name="producer")
        rt.sleep(5.0)
        return processed.peek()

    @staticmethod
    def buggy(rt):
        return KubernetesCondMissedSignal._program(rt, signal_after_add=False)

    @staticmethod
    def fixed(rt):
        return KubernetesCondMissedSignal._program(rt, signal_after_add=True)


@register
class CockroachWaitGroupMiscount(BugKernel):
    """Add() counts a worker that is never started."""

    meta = KernelMeta(
        kernel_id="blocking-wait-cockroach-miscounted-add",
        title="CockroachDB: Add counts a conditionally-skipped worker",
        app=App.COCKROACHDB,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.WAIT,
        fix_strategy=FixStrategy.CHANGE_SYNC,
        fix_primitives=(FixPrimitive.WAITGROUP,),
        symptom="leak",
        description=(
            "The stopper adds one per registered task up front, but a "
            "feature gate skips starting one task; Done() is called once "
            "too few times and Wait() blocks while the node keeps serving."
        ),
        bug_url="pattern: cockroachdb/cockroach stopper miscount",
    )
    run_kwargs = {"time_limit": 10.0}

    @staticmethod
    def _program(rt, add_per_started: bool):
        background_activity(rt)
        wg = rt.waitgroup("stopper")
        ran = rt.shared("tasks.ran", 0)
        tasks = [("compactor", True), ("gc", True), ("replicate", False)]

        def task(name):
            ran.add(1)
            wg.done()

        if not add_per_started:
            wg.add(len(tasks))  # BUG: counts the gated-off task
        for name, enabled in tasks:
            if not enabled:
                continue
            if add_per_started:
                wg.add(1)
            rt.go(task, name, name=name)
        wg.wait()
        return ran.peek()

    @staticmethod
    def buggy(rt):
        return CockroachWaitGroupMiscount._program(rt, add_per_started=False)

    @staticmethod
    def fixed(rt):
        return CockroachWaitGroupMiscount._program(rt, add_per_started=True)


@register
class GrpcWaitUnderLock(BugKernel):
    """wg.Wait() while holding the mutex the workers' Done path needs."""

    meta = KernelMeta(
        kernel_id="blocking-wait-grpc-wait-under-lock",
        title="gRPC: Wait() inside the critical section workers need",
        app=App.GRPC,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.WAIT,
        fix_strategy=FixStrategy.MOVE_SYNC,
        fix_primitives=(FixPrimitive.WAITGROUP, FixPrimitive.MUTEX),
        symptom="leak",
        description=(
            "Close() takes the transport lock and then waits for the "
            "stream workers, but each worker's teardown takes the same "
            "lock before calling Done(): Close never returns while the "
            "client keeps issuing RPCs.  The fix moves Wait() after the "
            "unlock."
        ),
        bug_url="pattern: grpc/grpc-go transport close wait-under-lock",
        reproduced=False,
    )
    run_kwargs = {"time_limit": 10.0}

    @staticmethod
    def _program(rt, wait_after_unlock: bool):
        background_activity(rt)
        mu = rt.mutex("transport")
        wg = rt.waitgroup("streams")
        closed_streams = rt.atomic_int(0, name="closed")

        def stream_worker(i):
            rt.sleep(0.2)
            mu.lock()            # worker teardown needs the lock
            closed_streams.add(1)
            mu.unlock()
            wg.done()

        for i in range(2):
            wg.add(1)
            rt.go(stream_worker, i, name=f"stream-{i}")

        mu.lock()
        if wait_after_unlock:
            mu.unlock()
            wg.wait()
        else:
            wg.wait()            # BUG: workers need mu to reach Done
            mu.unlock()
        return closed_streams.load()

    @staticmethod
    def buggy(rt):
        return GrpcWaitUnderLock._program(rt, wait_after_unlock=False)

    @staticmethod
    def fixed(rt):
        return GrpcWaitUnderLock._program(rt, wait_after_unlock=True)
