"""Blocking kernels: channel operations entangled with other primitives
(Table 6 "Chan w/", 16/85 bugs).

Includes Figure 7 (channel send under a mutex vs. a lock waiter) and the
global-deadlock variant standing in for BoltDB#240 — the second of the two
bugs Go's built-in detector catches in Table 8.
"""

from __future__ import annotations

from ...chan.cases import recv, send
from ...dataset.records import (
    App,
    Behavior,
    BlockingSubCause,
    FixPrimitive,
    FixStrategy,
)
from ..common import background_activity
from ..meta import BugKernel, KernelMeta
from ..registry import register


@register
class DockerChanUnderLock(BugKernel):
    """Figure 7: goroutine1 blocks sending while holding the mutex
    goroutine2 needs before it can ever receive."""

    meta = KernelMeta(
        kernel_id="blocking-chanmix-docker-send-under-lock",
        title="Docker: channel send inside a critical section",
        app=App.DOCKER,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.CHAN_WITH_OTHER,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL,),
        symptom="leak",
        description=(
            "goroutine1 holds m and blocks on ch <- request; goroutine2 "
            "blocks on m.Lock() before it would drain ch.  The committed "
            "fix wraps the send in a select with a default branch so it "
            "never blocks."
        ),
        figure="7",
        bug_url="pattern: moby/moby Figure 7",
    )

    @staticmethod
    def _program(rt, select_with_default: bool):
        mu = rt.mutex("state")
        ch = rt.make_chan(0, name="requests")
        handled = rt.shared("handled", 0)

        def goroutine1():
            mu.lock()
            if select_with_default:
                rt.select(send(ch, "request"), default=True)
            else:
                ch.send("request")  # BUG: blocks holding mu
            mu.unlock()

        def goroutine2():
            rt.sleep(0.2)
            mu.lock()  # blocked by goroutine1
            mu.unlock()
            _value, _ok, received = ch.try_recv()
            if received:
                handled.add(1)

        rt.go(goroutine1, name="goroutine1")
        rt.go(goroutine2, name="goroutine2")
        rt.sleep(5.0)
        return handled.peek()

    @staticmethod
    def buggy(rt):
        return DockerChanUnderLock._program(rt, select_with_default=False)

    @staticmethod
    def fixed(rt):
        return DockerChanUnderLock._program(rt, select_with_default=True)


@register
class BoltDB240GlobalChanLock(BugKernel):
    """BoltDB#240 stand-in: main receives while holding the lock the only
    sender needs — every goroutine asleep, the built-in detector fires."""

    meta = KernelMeta(
        kernel_id="blocking-chanmix-boltdb-240",
        title="BoltDB#240: recv under the lock the sender needs",
        app=App.BOLTDB,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.CHAN_WITH_OTHER,
        fix_strategy=FixStrategy.MOVE_SYNC,
        fix_primitives=(FixPrimitive.MUTEX, FixPrimitive.CHANNEL),
        symptom="deadlock",
        description=(
            "The embedded store's Close() holds db.mu while waiting for the "
            "writer goroutine's completion message, but the writer needs "
            "db.mu to finish.  BoltDB is a library: nothing else runs, so "
            "this is a true global deadlock — one of the two Table 8 "
            "detections.  The fix releases the lock before receiving."
        ),
        bug_url="boltdb/bolt#240",
    )

    @staticmethod
    def _program(rt, unlock_before_recv: bool):
        mu = rt.mutex("db")
        done = rt.make_chan(0, name="writer.done")

        def writer():
            rt.sleep(0.1)  # finishes its batch first
            mu.lock()  # needs the lock Close() is holding
            mu.unlock()
            done.send("flushed")

        rt.go(writer, name="tx-writer")
        mu.lock()
        if unlock_before_recv:
            mu.unlock()
            result = done.recv()
        else:
            result = done.recv()  # BUG: blocks holding mu; writer stuck too
            mu.unlock()
        return result

    @staticmethod
    def buggy(rt):
        return BoltDB240GlobalChanLock._program(rt, unlock_before_recv=False)

    @staticmethod
    def fixed(rt):
        return BoltDB240GlobalChanLock._program(rt, unlock_before_recv=True)


@register
class KubernetesWaitBeforeDrain(BugKernel):
    """wg.Wait() runs before the channel the workers send to is drained."""

    meta = KernelMeta(
        kernel_id="blocking-chanmix-kubernetes-wait-before-drain",
        title="Kubernetes: Wait() ordered before the channel drain",
        app=App.KUBERNETES,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.CHAN_WITH_OTHER,
        fix_strategy=FixStrategy.MOVE_SYNC,
        fix_primitives=(FixPrimitive.WAITGROUP, FixPrimitive.CHANNEL),
        symptom="leak",
        description=(
            "Fan-out workers send results on an unbuffered channel and then "
            "call Done(); the collector calls wg.Wait() before receiving, "
            "so workers block on their sends and Wait never returns while "
            "the controller keeps running.  The fix drains in a goroutine "
            "started before Wait (equivalently: moves Wait after the "
            "drain)."
        ),
        bug_url="pattern: kubernetes/kubernetes fan-out wait-before-drain",
    )
    run_kwargs = {"time_limit": 10.0}

    @staticmethod
    def _program(rt, drain_concurrently: bool):
        background_activity(rt)
        wg = rt.waitgroup("workers")
        results = rt.make_chan(0, name="results")
        collected = rt.shared("collected", 0)
        n = 3

        def worker(i):
            results.send(i)  # BUG: blocks until someone receives
            wg.done()

        for i in range(n):
            wg.add(1)
            rt.go(worker, i, name=f"worker-{i}")

        def drain():
            for _ in range(n):
                results.recv()
                collected.add(1)

        if drain_concurrently:
            rt.go(drain, name="drain")
            wg.wait()
        else:
            wg.wait()  # BUG: workers are stuck sending
            drain()
        return collected.peek()

    @staticmethod
    def buggy(rt):
        return KubernetesWaitBeforeDrain._program(rt, drain_concurrently=False)

    @staticmethod
    def fixed(rt):
        return KubernetesWaitBeforeDrain._program(rt, drain_concurrently=True)
