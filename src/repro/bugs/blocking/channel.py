"""Blocking kernels: channel misuse (Table 6, 29/85 bugs — the largest
message-passing category).

Includes Figure 1 (the Kubernetes finishReq leak) verbatim, with both of
its manifestation modes: the timeout firing first, and select choosing the
timeout when both cases are ready.
"""

from __future__ import annotations

from ...chan.cases import recv
from ...dataset.records import (
    App,
    Behavior,
    BlockingSubCause,
    FixPrimitive,
    FixStrategy,
)
from ..common import background_activity
from ..meta import BugKernel, KernelMeta
from ..registry import register


@register
class Kubernetes5316FinishReq(BugKernel):
    """Figure 1: child sends the result on an unbuffered channel; the parent
    may return on timeout, leaving the child blocked forever."""

    meta = KernelMeta(
        kernel_id="blocking-chan-kubernetes-5316",
        title="Kubernetes#5316: finishReq timeout leaks the worker",
        app=App.KUBERNETES,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.CHAN,
        fix_strategy=FixStrategy.CHANGE_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL,),
        symptom="leak",
        description=(
            "finishReq spawns an anonymous goroutine that sends fn()'s "
            "result into ch.  If the parent's select takes the time.After "
            "case, nobody ever receives and the child blocks on the send "
            "forever.  The fix makes ch buffered with capacity 1."
        ),
        figure="1",
        bug_url="kubernetes/kubernetes#5316",
        deterministic=False,
    )

    #: fn() runs this long; the parent also does post-processing before its
    #: select, so by selection time both the result and the timeout can be
    #: ready — Go picks randomly.
    FN_DURATION = 0.5
    TIMEOUT = 1.0
    PARENT_EXTRA_WORK = 1.5

    @staticmethod
    def _finish_req(rt, capacity: int):
        ch = rt.make_chan(capacity, name="result")

        def handler():
            rt.sleep(Kubernetes5316FinishReq.FN_DURATION)  # fn()
            ch.send("response")

        rt.go(handler, name="request-handler")
        timer = rt.new_timer(Kubernetes5316FinishReq.TIMEOUT)
        rt.sleep(Kubernetes5316FinishReq.PARENT_EXTRA_WORK)
        index, value, _ok = rt.select(recv(ch), recv(timer.c))
        if index == 0:
            return value
        return "timeout"

    @staticmethod
    def buggy(rt):
        return Kubernetes5316FinishReq._finish_req(rt, capacity=0)

    @staticmethod
    def fixed(rt):
        return Kubernetes5316FinishReq._finish_req(rt, capacity=1)


@register
class DockerMissingCloseRange(BugKernel):
    """A producer finishes without closing; the range consumer never ends."""

    meta = KernelMeta(
        kernel_id="blocking-chan-docker-missing-close",
        title="Docker: producer returns without close(ch)",
        app=App.DOCKER,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.CHAN,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL,),
        symptom="leak",
        description=(
            "The log streamer ranges over the message channel; the producer "
            "sends its batch and returns without close(ch), so the consumer "
            "blocks on the next receive forever."
        ),
        bug_url="pattern: moby/moby log follower leak",
    )

    @staticmethod
    def _program(rt, close_when_done: bool):
        ch = rt.make_chan(0, name="loglines")
        delivered = rt.shared("delivered", 0)

        def producer():
            for line in ("l1", "l2", "l3"):
                ch.send(line)
            if close_when_done:
                ch.close()

        def consumer():
            for _line in ch:  # `for line := range ch`
                delivered.add(1)

        rt.go(producer, name="producer")
        rt.go(consumer, name="consumer")
        rt.sleep(5.0)
        return delivered.peek()

    @staticmethod
    def buggy(rt):
        return DockerMissingCloseRange._program(rt, close_when_done=False)

    @staticmethod
    def fixed(rt):
        return DockerMissingCloseRange._program(rt, close_when_done=True)


@register
class EtcdNoSenderOnErrorPath(BugKernel):
    """An error path skips the send the receiver is waiting for."""

    meta = KernelMeta(
        kernel_id="blocking-chan-etcd-error-path-no-send",
        title="etcd: error return skips the result send",
        app=App.ETCD,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.CHAN,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL,),
        symptom="leak",
        description=(
            "The snapshot sender writes its status into a channel the "
            "raft loop receives from — but on marshal errors it returns "
            "early, so the raft loop waits forever while the node keeps "
            "heartbeating."
        ),
        bug_url="pattern: etcd-io/etcd snapshot status leak",
    )
    run_kwargs = {"time_limit": 10.0}

    @staticmethod
    def _program(rt, send_on_error: bool):
        background_activity(rt)
        status_ch = rt.make_chan(0, name="snap.status")

        def send_snapshot(payload):
            if payload is None:  # marshal error
                if send_on_error:
                    status_ch.send("failed")
                return
            status_ch.send("ok")

        rt.go(send_snapshot, None, name="snapshot-sender")
        return status_ch.recv()  # BUG: blocks forever on the error path

    @staticmethod
    def buggy(rt):
        return EtcdNoSenderOnErrorPath._program(rt, send_on_error=False)

    @staticmethod
    def fixed(rt):
        return EtcdNoSenderOnErrorPath._program(rt, send_on_error=True)


@register
class GrpcDoubleReceive(BugKernel):
    """Two receives race for one message; the loser blocks forever."""

    meta = KernelMeta(
        kernel_id="blocking-chan-grpc-double-recv",
        title="gRPC: one signal consumed by two receivers",
        app=App.GRPC,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.CHAN,
        fix_strategy=FixStrategy.CHANGE_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL,),
        symptom="leak",
        description=(
            "Two teardown paths both receive from the per-stream done "
            "channel, but the sender signals once; whichever path loses the "
            "race leaks.  The fix closes the channel instead of sending "
            "(close is a broadcast)."
        ),
        bug_url="pattern: grpc/grpc-go stream teardown double-recv",
    )

    @staticmethod
    def _program(rt, close_instead_of_send: bool):
        done = rt.make_chan(0, name="stream.done")
        observed = rt.shared("teardowns", 0)

        def teardown(path):
            done.recv_ok()
            observed.add(1)

        rt.go(teardown, "reader", name="teardown-reader")
        rt.go(teardown, "writer", name="teardown-writer")
        rt.sleep(0.5)
        if close_instead_of_send:
            done.close()
        else:
            done.send(None)  # BUG: only one receiver gets it
        rt.sleep(5.0)
        return observed.peek()

    @staticmethod
    def buggy(rt):
        return GrpcDoubleReceive._program(rt, close_instead_of_send=False)

    @staticmethod
    def fixed(rt):
        return GrpcDoubleReceive._program(rt, close_instead_of_send=True)


@register
class CockroachNilChannel(BugKernel):
    """Receiving from a channel field that was never initialized."""

    meta = KernelMeta(
        kernel_id="blocking-chan-cockroach-nil-channel",
        title="CockroachDB: receive on a nil channel field",
        app=App.COCKROACHDB,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.CHAN,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL,),
        symptom="leak",
        description=(
            "A gossip client struct embeds a notification channel that one "
            "constructor path forgets to make(); receiving from the nil "
            "channel blocks the worker forever (a Go channel rule: nil "
            "channel operations never proceed)."
        ),
        bug_url="pattern: cockroachdb/cockroach gossip nil channel",
    )

    @staticmethod
    def _program(rt, initialize: bool):
        class GossipClient:
            def __init__(self):
                self.updates = rt.make_chan(1, name="gossip") if initialize \
                    else rt.nil_chan()  # BUG: nil channel field

        client = GossipClient()
        got = rt.shared("gossip.got", None)

        def watcher():
            got.store(client.updates.recv())

        rt.go(watcher, name="gossip-watcher")
        rt.sleep(0.2)
        client.updates.try_send("node-joined")
        rt.sleep(5.0)
        return got.peek()

    @staticmethod
    def buggy(rt):
        return CockroachNilChannel._program(rt, initialize=False)

    @staticmethod
    def fixed(rt):
        return CockroachNilChannel._program(rt, initialize=True)


@register
class CockroachSelectMissingCase(BugKernel):
    """The select waits on two channels; the decisive event arrives on a
    third one nobody listens to."""

    meta = KernelMeta(
        kernel_id="blocking-chan-cockroach-missing-case",
        title="CockroachDB: select lacks the error-channel case",
        app=App.COCKROACHDB,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.CHAN,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.CHANNEL,),
        symptom="leak",
        description=(
            "The replica-change waiter selects on {applied, timeout-less "
            "abort} but the raft layer reports failures on errCh; on "
            "error the waiter blocks forever while the node keeps "
            "serving.  The committed fix adds the errCh case."
        ),
        bug_url="pattern: cockroachdb/cockroach replica change waiter",
        reproduced=False,
    )
    run_kwargs = {"time_limit": 10.0}

    @staticmethod
    def _program(rt, include_error_case: bool):
        background_activity(rt)
        applied = rt.make_chan(0, name="applied")
        aborted = rt.make_chan(0, name="aborted")
        err_ch = rt.make_chan(1, name="errCh")

        def raft_layer():
            rt.sleep(0.5)
            err_ch.send("raft: proposal dropped")  # failure path

        rt.go(raft_layer, name="raft")
        if include_error_case:
            index, value, _ok = rt.select(
                recv(applied), recv(aborted), recv(err_ch)
            )
            return (index, value)
        index, value, _ok = rt.select(recv(applied), recv(aborted))  # BUG
        return (index, value)

    @staticmethod
    def buggy(rt):
        return CockroachSelectMissingCase._program(rt, include_error_case=False)

    @staticmethod
    def fixed(rt):
        return CockroachSelectMissingCase._program(rt, include_error_case=True)
