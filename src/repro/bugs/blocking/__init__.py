"""Blocking bug kernels, one module per Table 6 root-cause category."""

from . import chan_mixed, channel, msglib, mutex, rwmutex, wait  # noqa: F401
