"""Blocking kernels: Mutex misuse (Table 6, 28/85 bugs).

The paper's three Mutex shapes all appear: double locking, acquiring locks
in conflicting orders, and forgetting to unlock.  All are "traditional"
bugs; the fixes mirror Section 5.2's breakdown (8 add-unlock, 9 move,
11 remove-extra-lock among the Mutex/RWMutex bugs).
"""

from __future__ import annotations

from ...dataset.records import (
    App,
    Behavior,
    BlockingSubCause,
    FixPrimitive,
    FixStrategy,
)
from ..common import background_activity
from ..meta import BugKernel, KernelMeta
from ..registry import register


@register
class DockerDoubleLock(BugKernel):
    """A helper re-acquires a mutex its caller already holds."""

    meta = KernelMeta(
        kernel_id="blocking-mutex-docker-double-lock",
        title="Docker: double lock through a helper function",
        app=App.DOCKER,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.MUTEX,
        fix_strategy=FixStrategy.REMOVE_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="leak",
        description=(
            "The device-set helper locks the mutex the exported entry point "
            "already holds.  Go mutexes are not reentrant, so the daemon's "
            "main loop self-deadlocks while the rest of the process keeps "
            "serving — invisible to the built-in detector."
        ),
        bug_url="pattern: moby/moby device-mapper double lock",
    )
    run_kwargs = {"time_limit": 10.0}

    @staticmethod
    def _program(rt, helper_locks: bool):
        background_activity(rt)
        mu = rt.mutex("devices")
        devices = rt.shared("devices.count", 0)

        def activate_device_locked():
            devices.add(1)

        def activate_device():
            mu.lock()
            try:
                activate_device_locked()
            finally:
                mu.unlock()

        mu.lock()
        try:
            if helper_locks:
                activate_device()  # BUG: locks `mu` again
            else:
                activate_device_locked()
        finally:
            mu.unlock()
        return devices.peek()

    @staticmethod
    def buggy(rt):
        return DockerDoubleLock._program(rt, helper_locks=True)

    @staticmethod
    def fixed(rt):
        return DockerDoubleLock._program(rt, helper_locks=False)


@register
class EtcdMissingUnlock(BugKernel):
    """An early-return error path forgets to unlock."""

    meta = KernelMeta(
        kernel_id="blocking-mutex-etcd-missing-unlock",
        title="etcd: error path returns without Unlock",
        app=App.ETCD,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.MUTEX,
        fix_strategy=FixStrategy.ADD_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="leak",
        description=(
            "The store's apply path takes the lock, hits a validation error "
            "and returns without unlocking; every later request blocks on "
            "the poisoned lock forever."
        ),
        bug_url="pattern: etcd-io/etcd store lock leak on error path",
    )
    run_kwargs = {"time_limit": 10.0}

    @staticmethod
    def _program(rt, forget_unlock: bool):
        background_activity(rt)
        mu = rt.mutex("store")
        applied = rt.shared("store.applied", 0)

        def apply(entry, poisoned: bool):
            mu.lock()
            if poisoned:
                if forget_unlock:
                    return "validation error"  # BUG: lock still held
                mu.unlock()
                return "validation error"
            applied.add(1)
            mu.unlock()
            return None

        apply("bad-entry", poisoned=True)
        apply("good-entry", poisoned=False)  # blocks forever in the bug
        return applied.peek()

    @staticmethod
    def buggy(rt):
        return EtcdMissingUnlock._program(rt, forget_unlock=True)

    @staticmethod
    def fixed(rt):
        return EtcdMissingUnlock._program(rt, forget_unlock=False)


@register
class KubernetesABBADeadlock(BugKernel):
    """Two goroutines acquire two locks in conflicting orders."""

    meta = KernelMeta(
        kernel_id="blocking-mutex-kubernetes-abba",
        title="Kubernetes: AB/BA lock ordering deadlock",
        app=App.KUBERNETES,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.MUTEX,
        fix_strategy=FixStrategy.MOVE_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="leak",
        description=(
            "The scheduler cache and the node-info store lock each other in "
            "opposite orders.  Both worker goroutines hang; main (the "
            "controller loop) keeps running, so only the workers leak."
        ),
        bug_url="pattern: kubernetes/kubernetes scheduler ABBA",
    )

    @staticmethod
    def _program(rt, consistent_order: bool):
        cache_mu = rt.mutex("cache")
        nodes_mu = rt.mutex("nodes")

        def update_cache():
            cache_mu.lock()
            rt.sleep(1.0)  # window in which the other worker grabs nodes_mu
            nodes_mu.lock()
            nodes_mu.unlock()
            cache_mu.unlock()

        def update_nodes():
            if consistent_order:
                cache_mu.lock()
                rt.sleep(1.0)
                nodes_mu.lock()
                nodes_mu.unlock()
                cache_mu.unlock()
            else:
                nodes_mu.lock()  # BUG: opposite order
                rt.sleep(1.0)
                cache_mu.lock()
                cache_mu.unlock()
                nodes_mu.unlock()

        rt.go(update_cache, name="cache-worker")
        rt.go(update_nodes, name="nodes-worker")
        rt.sleep(5.0)  # main moves on; in the bug both workers are stuck

    @staticmethod
    def buggy(rt):
        return KubernetesABBADeadlock._program(rt, consistent_order=False)

    @staticmethod
    def fixed(rt):
        return KubernetesABBADeadlock._program(rt, consistent_order=True)


@register
class BoltDB392GlobalDeadlock(BugKernel):
    """BoltDB#392: remap path re-locks the metadata lock — all asleep.

    One of the only two reproduced blocking bugs Go's built-in detector
    catches (Table 8): the whole process participates, so every goroutine
    really is asleep.
    """

    meta = KernelMeta(
        kernel_id="blocking-mutex-boltdb-392",
        title="BoltDB#392: global deadlock on metadata lock",
        app=App.BOLTDB,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.MUTEX,
        fix_strategy=FixStrategy.REMOVE_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="deadlock",
        description=(
            "db.Update begins a transaction holding the meta lock, then the "
            "grow path calls db.mmap which takes the same lock.  BoltDB is "
            "an embedded library: nothing else runs, the built-in detector "
            "fires."
        ),
        bug_url="boltdb/bolt#392",
    )

    @staticmethod
    def _program(rt, remap_locks: bool):
        meta_mu = rt.mutex("db.meta")
        pages = rt.shared("db.pages", 4)

        def mmap_locked():
            pages.update(lambda n: n * 2)

        def mmap():
            meta_mu.lock()
            try:
                mmap_locked()
            finally:
                meta_mu.unlock()

        def update():
            meta_mu.lock()
            try:
                if remap_locks:
                    mmap()  # BUG: meta lock already held by this goroutine
                else:
                    mmap_locked()
            finally:
                meta_mu.unlock()

        update()
        return pages.peek()

    @staticmethod
    def buggy(rt):
        return BoltDB392GlobalDeadlock._program(rt, remap_locks=True)

    @staticmethod
    def fixed(rt):
        return BoltDB392GlobalDeadlock._program(rt, remap_locks=False)


@register
class GrpcUnlockSkippedInLoop(BugKernel):
    """A `continue` path skips the unlock, deadlocking the next iteration."""

    meta = KernelMeta(
        kernel_id="blocking-mutex-grpc-loop-continue",
        title="gRPC: continue path skips Unlock inside a loop",
        app=App.GRPC,
        behavior=Behavior.BLOCKING,
        subcause=BlockingSubCause.MUTEX,
        fix_strategy=FixStrategy.MOVE_SYNC,
        fix_primitives=(FixPrimitive.MUTEX,),
        symptom="leak",
        description=(
            "The connection janitor locks per iteration but a retry branch "
            "continues without unlocking; the second iteration self-blocks "
            "while the client keeps issuing RPCs."
        ),
        bug_url="pattern: grpc/grpc-go picker loop lock leak",
    )
    run_kwargs = {"time_limit": 10.0}

    @staticmethod
    def _program(rt, unlock_before_continue: bool):
        background_activity(rt)
        mu = rt.mutex("conns")
        scanned = rt.shared("janitor.scanned", 0)

        conns = ["healthy", "retry", "healthy"]
        for state in conns:
            mu.lock()
            if state == "retry":
                if unlock_before_continue:
                    mu.unlock()
                continue  # BUG: lock still held on the next iteration
            scanned.add(1)
            mu.unlock()
        return scanned.peek()

    @staticmethod
    def buggy(rt):
        return GrpcUnlockSkippedInLoop._program(rt, unlock_before_continue=False)

    @staticmethod
    def fixed(rt):
        return GrpcUnlockSkippedInLoop._program(rt, unlock_before_continue=True)
