"""Kernel metadata and the base class for executable bug reproductions.

Every kernel packages a GoBench-style minimal reproduction of one studied
bug pattern: a ``buggy`` program, the developers' ``fixed`` program, the
paper's taxonomy labels, and a symptom predicate used by tests, benchmarks
and detector evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..dataset.records import (
    App,
    Behavior,
    BlockingSubCause,
    Cause,
    FixPrimitive,
    FixStrategy,
    NonBlockingSubCause,
)
from ..runtime.runtime import RunResult, run

#: Symptom kinds a kernel can declare.
SYMPTOMS = ("deadlock", "leak", "panic", "wrong-value")


@dataclass(frozen=True)
class KernelMeta:
    """Taxonomy labels and reproduction notes for one kernel."""

    kernel_id: str
    title: str
    app: App
    behavior: Behavior
    subcause: object  # BlockingSubCause | NonBlockingSubCause
    fix_strategy: FixStrategy
    fix_primitives: Tuple[FixPrimitive, ...]
    symptom: str
    description: str
    figure: Optional[str] = None       # paper figure it reproduces, if any
    bug_url: Optional[str] = None      # upstream issue/PR the pattern mirrors
    reproduced: bool = True            # part of the Table 8 / 12 corpora
    deterministic: bool = True         # manifests under every seed
    #: The bug is a latent data race whose wrong value may never surface;
    #: its evaluation is detector-based (e.g. the shadow-eviction kernel).
    latent: bool = False

    def __post_init__(self) -> None:
        if self.symptom not in SYMPTOMS:
            raise ValueError(f"{self.kernel_id}: unknown symptom {self.symptom!r}")
        if self.behavior == Behavior.BLOCKING:
            assert isinstance(self.subcause, BlockingSubCause), self.kernel_id
        else:
            assert isinstance(self.subcause, NonBlockingSubCause), self.kernel_id

    @property
    def cause(self) -> Cause:
        return self.subcause.cause


class BugKernel:
    """Base class: subclass, set ``meta``, implement ``buggy`` and ``fixed``.

    ``buggy``/``fixed`` are programs in the :func:`repro.run` sense.  By
    convention, ``wrong-value`` kernels return a truthy value from main
    exactly when the misbehavior was observed.
    """

    meta: KernelMeta
    #: Extra keyword arguments for :func:`repro.run` (e.g. ``time_limit``
    #: for kernels that model a long-running server around a stuck main).
    run_kwargs: Dict[str, Any] = {}

    @staticmethod
    def buggy(rt) -> Any:
        raise NotImplementedError

    @staticmethod
    def fixed(rt) -> Any:
        raise NotImplementedError

    # ------------------------------------------------------------------

    @classmethod
    def manifested(cls, result: RunResult) -> bool:
        """Did the bug's symptom appear in this run?"""
        symptom = cls.meta.symptom
        if symptom == "deadlock":
            return result.status == "deadlock"
        if symptom == "leak":
            return result.status in ("deadlock", "hang") or bool(result.leaked)
        if symptom == "panic":
            return result.status == "panic"
        # wrong-value: the program reports its own misbehavior.
        return result.status == "panic" or bool(result.main_result)

    @classmethod
    def run_buggy(cls, seed: int = 0, **kwargs: Any) -> RunResult:
        merged = dict(cls.run_kwargs)
        merged.update(kwargs)
        return run(cls.buggy, seed=seed, **merged)

    @classmethod
    def run_fixed(cls, seed: int = 0, **kwargs: Any) -> RunResult:
        merged = dict(cls.run_kwargs)
        merged.update(kwargs)
        return run(cls.fixed, seed=seed, **merged)

    @classmethod
    def manifestation_seeds(cls, seeds, jobs: int = 1, **kwargs: Any):
        """Seeds (from ``seeds``) under which the buggy program misbehaves.

        ``jobs > 1`` sweeps across worker processes (:mod:`repro.parallel`);
        ``manifested`` is evaluated worker-side, and the returned seed list
        is identical to the serial one.

        Results are memoized per ``(kernel, seed, options)`` through
        :mod:`repro.parallel.memo` — tables and benchmarks that revisit the
        same kernels re-run only seeds they have never seen.
        """
        from ..parallel import sweep_seeds

        merged = dict(cls.run_kwargs)
        merged.update(kwargs)
        summaries = sweep_seeds(
            cls.buggy, seeds, jobs=jobs, predicate=cls.manifested,
            memo_key=("kernel", cls.meta.kernel_id, "buggy"), **merged)
        return [s.seed for s in summaries if s.manifested]
