"""The executable bug-kernel corpus.

Importing this package loads every kernel module, populating the registry
(:mod:`repro.bugs.registry`).  Query the corpus via::

    from repro.bugs import registry
    for kernel in registry.blocking_kernels():
        result = kernel.run_buggy(seed=0)
        assert kernel.manifested(result)
"""

from . import registry
from .meta import BugKernel, KernelMeta

_LOADED = False


def _load_all() -> None:
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from . import blocking  # noqa: F401
    from . import nonblocking  # noqa: F401


__all__ = ["BugKernel", "KernelMeta", "registry"]
