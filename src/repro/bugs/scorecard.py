"""Corpus scorecard: every kernel against every detector.

The GoBench-style artifact downstream detector authors want: a matrix of
(kernel × detector) outcomes over the executable corpus, with
manifestation rates.  Used by the scorecard benchmark and available
programmatically::

    from repro.bugs.scorecard import build_scorecard, render_scorecard
    rows = build_scorecard(runs_per_kernel=25)
    print(render_scorecard(rows))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..detect import (
    BuiltinDeadlockDetector,
    ChannelRuleChecker,
    GoroutineLeakDetector,
    LockOrderDetector,
    RaceDetector,
)
from ..runtime.runtime import run
from . import registry
from .meta import BugKernel


@dataclass(frozen=True)
class ScorecardRow:
    """One kernel's outcomes across the detector suite."""

    kernel_id: str
    behavior: str
    subcause: str
    manifestation_rate: float     # fraction of seeds the bug showed
    builtin_deadlock: bool
    leak_detector: bool
    race_detector: bool
    lock_order: bool
    rule_checker: bool

    @property
    def caught_by_any(self) -> bool:
        return (self.builtin_deadlock or self.leak_detector
                or self.race_detector or self.lock_order or self.rule_checker)


def evaluate_kernel(kernel: BugKernel, runs: int = 25) -> ScorecardRow:
    """Run one kernel's buggy variant through every detector."""
    meta = kernel.meta
    manifest_seeds = kernel.manifestation_seeds(range(runs))
    seed = manifest_seeds[0] if manifest_seeds else 0

    race = RaceDetector()
    rules = ChannelRuleChecker()
    lockorder = LockOrderDetector()
    kwargs = dict(kernel.run_kwargs)
    result = run(kernel.buggy, seed=seed,
                 observers=[race, rules, lockorder], **kwargs)

    # The race detector deserves the same multi-run chance the paper
    # gives it: scan the sweep until it fires once.
    race_hit = race.detected
    if not race_hit:
        for extra_seed in range(min(runs, 10)):
            probe = RaceDetector()
            run(kernel.buggy, seed=extra_seed, observers=[probe],
                **dict(kernel.run_kwargs))
            if probe.detected:
                race_hit = True
                break

    return ScorecardRow(
        kernel_id=meta.kernel_id,
        behavior=str(meta.behavior),
        subcause=str(meta.subcause),
        manifestation_rate=len(manifest_seeds) / runs,
        builtin_deadlock=BuiltinDeadlockDetector().classify(result),
        leak_detector=GoroutineLeakDetector().classify(result),
        race_detector=race_hit,
        lock_order=lockorder.detected,
        rule_checker=rules.detected,
    )


def build_scorecard(kernels: Optional[Sequence[BugKernel]] = None,
                    runs_per_kernel: int = 25) -> List[ScorecardRow]:
    targets = list(kernels) if kernels is not None else registry.all_kernels()
    return [evaluate_kernel(kernel, runs_per_kernel) for kernel in targets]


def render_scorecard(rows: Sequence[ScorecardRow]) -> str:
    from ..study.tables import render

    def mark(hit: bool) -> str:
        return "X" if hit else "."

    body = [
        [
            row.kernel_id,
            f"{row.manifestation_rate:.0%}",
            mark(row.builtin_deadlock),
            mark(row.leak_detector),
            mark(row.race_detector),
            mark(row.lock_order),
            mark(row.rule_checker),
        ]
        for row in rows
    ]
    caught = sum(row.caught_by_any for row in rows)
    table = render(
        ["kernel", "manifests", "builtin", "leak", "race", "lockord", "rules"],
        body,
        title="Corpus scorecard (X = detector fires on the buggy variant)",
    )
    return table + f"\n\ncaught by at least one detector: {caught}/{len(rows)}"
