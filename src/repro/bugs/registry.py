"""Kernel registry.

Kernels self-register via the :func:`register` decorator; the corpus is
materialized by importing :mod:`repro.bugs` (which pulls in every kernel
module).  Query helpers slice the corpus the way the paper's tables do.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

from ..dataset.records import App, Behavior, Cause
from .meta import BugKernel

_REGISTRY: Dict[str, Type[BugKernel]] = {}


def register(cls: Type[BugKernel]) -> Type[BugKernel]:
    """Class decorator adding a kernel to the corpus."""
    kernel_id = cls.meta.kernel_id
    if kernel_id in _REGISTRY:
        raise ValueError(f"duplicate kernel id: {kernel_id}")
    _REGISTRY[kernel_id] = cls
    return cls


def get(kernel_id: str) -> Type[BugKernel]:
    _ensure_loaded()
    return _REGISTRY[kernel_id]


def all_kernels() -> List[Type[BugKernel]]:
    _ensure_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def blocking_kernels(reproduced_only: bool = False) -> List[Type[BugKernel]]:
    return [k for k in all_kernels()
            if k.meta.behavior == Behavior.BLOCKING
            and (k.meta.reproduced or not reproduced_only)]


def nonblocking_kernels(reproduced_only: bool = False) -> List[Type[BugKernel]]:
    return [k for k in all_kernels()
            if k.meta.behavior == Behavior.NONBLOCKING
            and (k.meta.reproduced or not reproduced_only)]


def by_subcause(subcause) -> List[Type[BugKernel]]:
    return [k for k in all_kernels() if k.meta.subcause == subcause]


def by_app(app: App) -> List[Type[BugKernel]]:
    return [k for k in all_kernels() if k.meta.app == app]


def by_cause(cause: Cause) -> List[Type[BugKernel]]:
    return [k for k in all_kernels() if k.meta.cause == cause]


def figures() -> Dict[str, Type[BugKernel]]:
    """Kernels that reproduce a specific paper figure, keyed by figure id."""
    return {k.meta.figure: k for k in all_kernels() if k.meta.figure}


def _ensure_loaded() -> None:
    # Importing the package populates the registry exactly once.
    from . import _load_all

    _load_all()
