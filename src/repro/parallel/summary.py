"""Picklable run summaries: what a sweep worker sends back to the parent.

A :class:`repro.runtime.runtime.RunResult` is deliberately rich — it holds
live :class:`Goroutine` objects, the full trace, attached observers — and
none of that crosses a process boundary.  :class:`RunSummary` is the flat,
picklable projection a sweep actually consumes: status, leak/deadlock
descriptions, panic text, injected-fault records, and a SHA-256 digest of
the schedule fingerprint so serial and parallel sweeps can be compared
bit-for-bit.

Both the serial and the parallel sweep paths reduce results through the
same :func:`summarize_result`, which is what makes ``jobs=N`` output
byte-identical to ``jobs=1``: a deterministic run produces the same
summary no matter which process executed it.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Optional, Tuple


def schedule_digest(result: Any) -> Optional[str]:
    """SHA-256 over the run's schedule fingerprint, or None without a trace.

    The fingerprint is the ``(step, gid, kind, obj)`` projection of every
    trace event (the same projection
    :func:`repro.observe.overhead.schedule_fingerprint` uses): it pins the
    complete interleaving while ignoring payload details.  A stable hex
    digest — not Python's salted ``hash()`` — so digests compare across
    processes and sessions.
    """
    if result.trace is None:
        return None
    h = hashlib.sha256()
    for e in result.trace:
        h.update(f"{e.step}|{e.gid}|{e.kind}|{e.obj}\n".encode())
    return h.hexdigest()


def _json_safe(value: Any) -> Any:
    if isinstance(value, (type(None), bool, int, float, str)):
        return value
    return repr(value)


@dataclass(frozen=True)
class RunSummary:
    """Flat, picklable outcome of one simulated run.

    Mirrors :meth:`RunResult.to_dict` field-for-field, plus:

    Attributes:
        trace_digest: SHA-256 of the schedule fingerprint (None when the
            run kept no trace) — the cross-process equality witness.
        manifested: result of the sweep's predicate over the full
            :class:`RunResult`, evaluated worker-side where the rich object
            still exists; None when the sweep had no predicate.
        metrics: optional small numeric dict computed worker-side (chaos
            sweeps fold observation metrics here).
        backend: the resolved goroutine vehicle that ran the simulation
            (``result.backend``); lets cross-backend parity checks compare
            ``trace_digest`` while still recording who produced it.
        compiled: whether the run had compiled accelerators loaded
            (``result.compiled``).  Worker processes record their *own*
            resolution here, so a sweep whose forked children failed to
            load the extension the parent had is visible in the summaries
            rather than silently slower.
    """

    status: str
    seed: int
    steps: int
    virtual_time: float
    goroutines: int
    main_result: Any = None
    leaked: Tuple[str, ...] = ()
    abandoned: Tuple[str, ...] = ()
    panic: Optional[str] = None
    deadlock: Optional[Tuple[str, ...]] = None
    stuck_host_threads: Tuple[str, ...] = ()
    faults_injected: Tuple[Any, ...] = ()
    trace_digest: Optional[str] = None
    manifested: Optional[bool] = None
    metrics: Optional[dict] = field(default=None)
    backend: Optional[str] = None
    compiled: Optional[bool] = None

    @property
    def completed(self) -> bool:
        """True when the main goroutine returned normally."""
        return self.status in ("ok", "leak")

    @property
    def leak_count(self) -> int:
        return len(self.leaked)

    def to_dict(self) -> dict:
        """JSON-serializable form (same shape as ``RunResult.to_dict`` plus
        the summary-only fields)."""
        out = asdict(self)
        out["leaked"] = list(self.leaked)
        out["abandoned"] = list(self.abandoned)
        out["deadlock"] = None if self.deadlock is None else list(self.deadlock)
        out["stuck_host_threads"] = list(self.stuck_host_threads)
        out["faults_injected"] = list(self.faults_injected)
        return out


def summarize_result(
    result: Any,
    predicate: Optional[Callable[[Any], bool]] = None,
    metrics: Optional[dict] = None,
) -> RunSummary:
    """Reduce a :class:`RunResult` to its picklable :class:`RunSummary`.

    ``predicate`` (e.g. a kernel's ``manifested``) runs here, in the worker,
    against the full result — so sweeps can ask arbitrary questions of the
    trace without shipping it back to the parent.
    """
    return RunSummary(
        status=result.status,
        seed=result.seed,
        steps=result.steps,
        virtual_time=result.end_time,
        goroutines=len(result.goroutines),
        main_result=_json_safe(result.main_result),
        leaked=tuple(g.describe() for g in result.leaked),
        abandoned=tuple(g.describe() for g in result.abandoned),
        panic=None if result.panic_value is None else str(result.panic_value),
        deadlock=(tuple(result.deadlock.blocked)
                  if result.deadlock is not None else None),
        stuck_host_threads=tuple(g.describe()
                                 for g in result.stuck_host_threads),
        faults_injected=tuple(record.to_dict() if hasattr(record, "to_dict")
                              else record for record in result.injected),
        trace_digest=schedule_digest(result),
        manifested=None if predicate is None else bool(predicate(result)),
        metrics=metrics,
        backend=getattr(result, "backend", None),
        compiled=getattr(result, "compiled", None),
    )
