"""Cross-run memoization: never pay for the same deterministic run twice.

Every simulation in this codebase is a pure function of its inputs — the
program, the seed (or scripted schedule), and the run options.  The study
pipeline nevertheless repeats runs constantly: ``manifestation_seeds``
sweeps the same kernels per table, chaos scorecards revisit ``(target,
plan, seed)`` cells across invocations, and systematic exploration replays
shared schedule prefixes every round.  :class:`RunMemo` is the shared
result cache behind all of those: callers build a stable key for the unit
of work, and a completed unit's picklable summary is stored for reuse.

Keys must capture *everything* the result depends on.  The built-in
consumers key on registry-stable identity (kernel id + variant, chaos
target name + kind) plus a repr fingerprint of the options, which assumes
registry names uniquely identify behavior within a process — true for the
corpus and apps, and the reason arbitrary user programs are keyed by
object identity instead.  Set :data:`enabled` to ``False`` (or use
:func:`disable` as a context manager) to rule the cache out of a
measurement, and :func:`clear` to drop entries, e.g. after monkeypatching
a kernel in tests.

The cache is process-local.  Sweep workers forked from a warm parent
inherit its entries; parent-side consumers consult the cache *before*
dispatch so memoized units never travel to the pool at all.
"""

from __future__ import annotations

import contextlib
from collections import OrderedDict
from typing import Any, Dict, Iterator, Tuple

__all__ = ["RunMemo", "memo", "fingerprint", "clear", "disable"]

#: Global kill switch consulted by every consumer.
enabled = True


def fingerprint(kwargs: Dict[str, Any]) -> Tuple[Any, ...]:
    """A hashable, order-insensitive fingerprint of run options.

    Values are folded through ``repr`` — stable for the plain data that
    run options are made of (ints, bools, strings, fault plans with
    dataclass reprs).  Callers with unreprable options should key by
    object identity instead of using the shared memo.
    """
    return tuple(sorted((k, repr(v)) for k, v in kwargs.items()))


class RunMemo:
    """A bounded LRU mapping of work-unit keys to picklable results."""

    def __init__(self, max_entries: int = 65536) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Any) -> Any:
        """The stored result for ``key``, or ``None`` (and a recorded miss)."""
        if not enabled:
            return None
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        if not enabled:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses}


#: The process-wide instance shared by sweeps, chaos cells, and exploration.
memo = RunMemo()


def clear() -> None:
    """Drop every memoized result (hit/miss counters survive)."""
    memo.clear()


@contextlib.contextmanager
def disable() -> Iterator[None]:
    """Context manager: run a block with memoization switched off."""
    global enabled
    previous = enabled
    enabled = False
    try:
        yield
    finally:
        enabled = previous
