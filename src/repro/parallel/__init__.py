"""Parallel seed sweeps: scale "run it a lot of times" with cores.

The paper's detection reality is statistical — a blocking bug that
manifests on a few percent of real executions manifests on a similar
fraction of seeds — so sweep throughput *is* the system's effective speed.
This package fans independent ``(seed, plan)`` simulation units across a
process pool (:mod:`repro.parallel.engine`) and merges their picklable
summaries (:mod:`repro.parallel.summary`) in seed order.

Determinism contract: ``jobs=N`` output is **byte-identical** to
``jobs=1`` — both paths reduce runs through the same
:func:`summarize_result`, the unit list is fixed before any worker starts,
and ``Pool.map`` preserves submission order.  The equivalence tests in
``tests/parallel`` assert this for every sweep consumer.

What parallelism cannot preserve: in-process side effects.  A shared
Observer, a subscribed detector accumulating across seeds, or a program
mutating parent-process globals will not see worker writes (children are
forked copies).  Sweep-level predicates run *worker-side* against the full
:class:`RunResult` (``RunSummary.manifested``), which covers the common
cases; anything needing cross-seed aggregation in one address space should
use ``jobs=1``.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Iterable, List, Optional

from .engine import effective_jobs, map_units
from .summary import RunSummary, schedule_digest, summarize_result

__all__ = [
    "DEFAULT_SWEEP_JOIN_TIMEOUT",
    "RunSummary",
    "effective_jobs",
    "map_units",
    "schedule_digest",
    "summarize_result",
    "sweep_seeds",
]

#: Host-thread join bound applied to sweep runs (seconds).  The interactive
#: default (:data:`repro.runtime.goroutine.HOST_JOIN_TIMEOUT`) is generous;
#: inside a sweep one pathological seed with a stuck host thread should cost
#: about a second, not five, so the engine shrinks it — in the serial path
#: too, keeping jobs=1 and jobs=N byte-identical.
DEFAULT_SWEEP_JOIN_TIMEOUT = 1.0


def _run_unit(
    program: Callable[..., Any],
    seed: int,
    predicate: Optional[Callable[[Any], bool]],
    run_kwargs: dict,
) -> RunSummary:
    from ..runtime.runtime import run

    result = run(program, seed=seed, **run_kwargs)
    return summarize_result(result, predicate=predicate)


def sweep_seeds(
    program: Callable[..., Any],
    seeds: Iterable[int],
    *,
    jobs: int = 1,
    predicate: Optional[Callable[[Any], bool]] = None,
    memo_key: Optional[Any] = None,
    **run_kwargs: Any,
) -> List[RunSummary]:
    """Run ``program`` under every seed, optionally across processes.

    Args:
        program: a ``main(rt)`` program (also accepts kernel variants).
        seeds: the seeds to sweep, in the order results are returned.
        jobs: worker processes; 1 (the default) runs in-process.  Output is
            identical either way.
        predicate: optional test over each full :class:`RunResult`
            (e.g. ``kernel.manifested``), evaluated in the worker; lands on
            ``RunSummary.manifested``.
        memo_key: opt into cross-run memoization (:mod:`repro.parallel.memo`)
            under this stable identity (e.g. ``("kernel", kernel_id,
            variant)``).  Seeds already in the cache are served without
            running; only misses are dispatched, and their summaries are
            stored for the next sweep.  The key must uniquely identify the
            *program's behavior* — registry ids qualify, closures do not.
        run_kwargs: forwarded to :func:`repro.run`.  ``host_join_timeout``
            defaults to :data:`DEFAULT_SWEEP_JOIN_TIMEOUT` here.

    Returns:
        One :class:`RunSummary` per seed, in seed order.
    """
    from . import memo as memo_mod

    run_kwargs.setdefault("host_join_timeout", DEFAULT_SWEEP_JOIN_TIMEOUT)
    if "backend" in run_kwargs:
        # Resolve in the parent so every forked worker inherits the same
        # concrete vehicle (and the fallback warning fires once, here, not
        # once per worker process).  Schedules are backend-invariant, so
        # this only pins *which* vehicle runs, never what it produces.
        from ..runtime.scheduler import resolve_backend

        run_kwargs["backend"] = resolve_backend(run_kwargs["backend"])
    seeds = list(seeds)
    use_memo = memo_key is not None and memo_mod.enabled
    if not use_memo:
        units = [partial(_run_unit, program, seed, predicate, run_kwargs)
                 for seed in seeds]
        return map_units(units, jobs=jobs)

    options = memo_mod.fingerprint(run_kwargs)
    keys = [("sweep", memo_key, seed, predicate, options) for seed in seeds]
    results: List[Optional[RunSummary]] = [memo_mod.memo.get(key)
                                           for key in keys]
    misses = [i for i, summary in enumerate(results) if summary is None]
    if misses:
        executed = map_units(
            [partial(_run_unit, program, seeds[i], predicate, run_kwargs)
             for i in misses],
            jobs=jobs,
        )
        for i, summary in zip(misses, executed):
            results[i] = summary
            memo_mod.memo.put(keys[i], summary)
    return results  # type: ignore[return-value]
