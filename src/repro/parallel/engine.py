"""The process-pool sweep engine: fan work units across cores, merge in order.

Seed sweeps are embarrassingly parallel — every ``(seed, plan)`` unit is an
independent deterministic simulation — so the only interesting problems are
*overhead* problems.  The first engine forked a fresh pool per call and
dispatched one task per unit; at simulator unit costs (a few ms) the fork +
IPC tax swamped the win and ``jobs=4`` benchmarked *slower* than serial.
This version keeps three levers:

* **Persistent pool** — the fork pool is created lazily on first use and
  reused by every later :func:`map_units` call with the same worker count,
  amortizing process startup across the repeated sweeps that dominate real
  workloads (manifestation repeats, exploration rounds, chaos cells).
  An :mod:`atexit` hook tears it down; :func:`shutdown_pool` does so
  eagerly (tests use it to assert reuse behavior).
* **Chunked dispatch** — units travel in ``chunksize`` batches instead of
  one task per unit, cutting per-task IPC round trips.
* **Adaptive serial cutover** — the first few units run serially in the
  parent as a probe; if the projected cost of the remainder cannot pay for
  dispatch overhead, the whole call stays serial.  Tiny sweeps no longer
  pay fan-out tax at all.

Dispatch needs picklable units.  ``functools.partial`` over module-level
functions (every internal sweep consumer) pickles fine and goes to the
persistent pool; closures and lambdas do not pickle, so they fall back to
the original fork-per-call path: the unit list is published in a
module-level slot, children inherit it through the fork, and only unit
*indices* travel through the pool.

Both paths preserve submission order (``Pool.map`` merges in order), so
``jobs=N`` results stay byte-identical to ``jobs=1``.

Degrades to serial execution automatically when:

* ``jobs <= 1`` or there is at most one unit,
* the platform has no ``fork`` start method (e.g. Windows), or
* we are already *inside* a sweep worker (the worker-side ``_IN_WORKER``
  flag, set by the pool initializer): nested sweeps run serially instead
  of forking recursively.
"""

from __future__ import annotations

import atexit
import multiprocessing
import pickle
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["map_units", "effective_jobs", "shutdown_pool", "pool_stats"]

#: Set to True in pool workers by the pool initializer.  This — not the
#: unit slot below — is the "am I a worker?" signal, so a parent process
#: between persistent-pool reuses can never misclassify itself as nested.
_IN_WORKER = False

#: Unit list published for forked workers on the closure (non-picklable)
#: fallback path.  Non-None only while that ephemeral pool is alive.
_ACTIVE_UNITS: Optional[Sequence[Callable[[], Any]]] = None

#: The persistent pool (picklable-unit path), created lazily.
_POOL: Optional[Any] = None
_POOL_WORKERS = 0
_STATS: Dict[str, int] = {"pools_created": 0, "dispatches": 0,
                          "serial_cutovers": 0, "fallback_pools": 0}

#: Units executed serially in the parent to estimate per-unit cost.
PROBE_UNITS = 4

#: Projected remaining serial cost (seconds) below which fan-out cannot
#: pay for dispatch overhead and the call stays serial.
MIN_PARALLEL_COST_S = 0.05


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic hosts
        return False


def effective_jobs(jobs: int, n_units: int) -> int:
    """How many worker processes :func:`map_units` would actually use."""
    if jobs <= 1 or n_units <= 1 or not _fork_available():
        return 1
    if _IN_WORKER:  # nested inside a worker
        return 1
    return min(jobs, n_units)


def _mark_worker() -> None:
    # Pool initializer: runs once in each freshly forked worker.
    global _IN_WORKER, _POOL, _POOL_WORKERS
    _IN_WORKER = True
    # The worker inherited the parent's pool handle through the fork; it is
    # unusable (and unused — nested sweeps degrade to serial) but dropping
    # it keeps worker-side state honest.
    _POOL = None
    _POOL_WORKERS = 0


def _call_unit(unit: Callable[[], Any]) -> Any:
    return unit()


def _execute_unit(index: int) -> Any:
    # Closure fallback: _ACTIVE_UNITS was inherited through the fork.
    return _ACTIVE_UNITS[index]()


def _get_pool(workers: int):
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS != workers:
        shutdown_pool()
    if _POOL is None:
        ctx = multiprocessing.get_context("fork")
        _POOL = ctx.Pool(processes=workers, initializer=_mark_worker)
        _POOL_WORKERS = workers
        _STATS["pools_created"] += 1
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent pool (no-op when none is alive)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def pool_stats() -> Dict[str, int]:
    """Counters for pool lifecycle (tests and ``repro bench`` read these)."""
    stats = dict(_STATS)
    stats["pool_alive"] = 1 if _POOL is not None else 0
    stats["pool_workers"] = _POOL_WORKERS
    return stats


def _chunksize(n_units: int, workers: int) -> int:
    # A few chunks per worker balances load without per-unit IPC.
    return max(1, -(-n_units // (workers * 4)))


def map_units(units: Sequence[Callable[[], Any]], jobs: int = 1) -> List[Any]:
    """Run every zero-arg unit; return their results in submission order.

    With ``jobs > 1`` units execute across a fork pool; each unit's return
    value must be picklable.  Exceptions raised by a unit propagate to the
    caller either way.  Order of the result list never depends on worker
    timing, and the merged list is byte-identical to a ``jobs=1`` run.
    """
    workers = effective_jobs(jobs, len(units))
    if workers <= 1:
        return [unit() for unit in units]

    # Probe: run the first few units serially to estimate per-unit cost.
    probe_n = min(PROBE_UNITS, len(units) - 1)
    t0 = time.perf_counter()
    results: List[Any] = [unit() for unit in units[:probe_n]]
    probe_s = time.perf_counter() - t0
    rest = units[probe_n:]
    per_unit = probe_s / probe_n if probe_n else 0.0
    if per_unit * len(rest) < MIN_PARALLEL_COST_S:
        # Fan-out cannot pay for itself; finish serially.
        _STATS["serial_cutovers"] += 1
        results.extend(unit() for unit in rest)
        return results

    chunk = _chunksize(len(rest), workers)
    try:
        pickle.dumps(rest)
    except Exception:
        results.extend(_map_units_fallback(rest, workers, chunk))
        return results
    pool = _get_pool(workers)
    _STATS["dispatches"] += 1
    try:
        results.extend(pool.map(_call_unit, rest, chunksize=chunk))
    except Exception:
        # A worker died mid-map (or the pool was torn down under us):
        # discard the pool so the next call starts clean, then re-raise.
        shutdown_pool()
        raise
    return results


def _map_units_fallback(units: Sequence[Callable[[], Any]], workers: int,
                        chunk: int) -> List[Any]:
    # Closures can't pickle: publish the unit list, fork an ephemeral pool
    # that inherits it, and send only indices through the queue.
    global _ACTIVE_UNITS
    ctx = multiprocessing.get_context("fork")
    _ACTIVE_UNITS = units
    _STATS["fallback_pools"] += 1
    try:
        with ctx.Pool(processes=workers, initializer=_mark_worker) as pool:
            return pool.map(_execute_unit, range(len(units)), chunksize=chunk)
    finally:
        _ACTIVE_UNITS = None
