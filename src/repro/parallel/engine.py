"""The process-pool sweep engine: fan work units across cores, merge in order.

Seed sweeps are embarrassingly parallel — every ``(seed, plan)`` unit is an
independent deterministic simulation — but a unit of work is a *closure*
(program + options), and closures do not pickle.  The engine sidesteps
pickling entirely with the fork start method: the unit list is published in
a module-level slot in the parent, children inherit it through the fork,
and only the unit *index* travels through the pool.  Results (picklable
:class:`repro.parallel.summary.RunSummary` objects) come back via
``Pool.map``, which preserves submission order, so the merged list is
deterministic and identical to a serial sweep's.

Degrades to serial execution automatically when:

* ``jobs <= 1`` or there is at most one unit,
* the platform has no ``fork`` start method (e.g. Windows), or
* we are already *inside* a sweep worker (the inherited slot is non-None):
  nested sweeps run serially instead of forking recursively.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["map_units", "effective_jobs"]

#: Unit list published for forked workers.  Non-None only while a pool is
#: alive in this process — which is also the "am I a worker?" signal that
#: makes nested sweeps degrade to serial.
_ACTIVE_UNITS: Optional[Sequence[Callable[[], Any]]] = None


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic hosts
        return False


def effective_jobs(jobs: int, n_units: int) -> int:
    """How many worker processes :func:`map_units` would actually use."""
    if jobs <= 1 or n_units <= 1 or not _fork_available():
        return 1
    if _ACTIVE_UNITS is not None:  # nested inside a worker
        return 1
    return min(jobs, n_units)


def _execute_unit(index: int) -> Any:
    # Runs in a forked child: _ACTIVE_UNITS was inherited from the parent.
    return _ACTIVE_UNITS[index]()


def map_units(units: Sequence[Callable[[], Any]], jobs: int = 1) -> List[Any]:
    """Run every zero-arg unit; return their results in submission order.

    With ``jobs > 1`` units execute across a fork pool; each unit's return
    value must be picklable.  Exceptions raised by a unit propagate to the
    caller either way.  Order of the result list never depends on worker
    timing.
    """
    global _ACTIVE_UNITS
    workers = effective_jobs(jobs, len(units))
    if workers <= 1:
        return [unit() for unit in units]
    ctx = multiprocessing.get_context("fork")
    _ACTIVE_UNITS = units
    try:
        with ctx.Pool(processes=workers) as pool:
            return pool.map(_execute_unit, range(len(units)))
    finally:
        _ACTIVE_UNITS = None
