"""The self-overhead accountant: what does watching a run cost?

An observability layer for a *deterministic* runtime gets to make a claim
ordinary profilers cannot: observation is provably inert.  This module
measures both halves of that claim for a given program:

* **inertness** — the observed run's schedule fingerprint (the exact
  ``(step, gid, kind, obj)`` sequence) is identical to the unobserved
  run's, and
* **cost** — wall-clock overhead ratio of observed vs. unobserved runs,
  best-of-N to damp host noise.

Wall-clock times are the only nondeterministic values in this subsystem
and are clearly segregated here; they never enter a metrics dump.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..runtime.runtime import RunResult, run
from .observer import Observer


def schedule_fingerprint(result: RunResult) -> Tuple[Tuple[int, int, str, Any], ...]:
    """The schedule-defining projection of a trace.

    Event ``info`` is deliberately excluded: observation adds attribution
    fields (sites, stacks) to block events without altering what ran when.
    """
    if result.trace is None:
        raise ValueError("fingerprinting needs keep_trace=True")
    return tuple((e.step, e.gid, e.kind, e.obj) for e in result.trace)


@dataclass
class OverheadReport:
    """Measured cost of observing one program at one seed."""

    program: str
    seed: int
    repeats: int
    base_seconds: float          # best-of-N unobserved wall time
    observed_seconds: float      # best-of-N observed wall time
    steps: int
    identical_schedule: bool

    @property
    def ratio(self) -> float:
        if self.base_seconds <= 0:
            return 1.0
        return self.observed_seconds / self.base_seconds

    def render(self) -> str:
        verdict = "identical" if self.identical_schedule else "DIVERGED"
        return (f"observer overhead [{self.program} seed={self.seed}]: "
                f"{self.base_seconds * 1e3:.2f}ms -> "
                f"{self.observed_seconds * 1e3:.2f}ms "
                f"({self.ratio:.2f}x over {self.steps} steps, "
                f"best of {self.repeats}; schedule {verdict})")

    def to_dict(self) -> dict:
        return {"program": self.program, "seed": self.seed,
                "repeats": self.repeats,
                "base_seconds": self.base_seconds,
                "observed_seconds": self.observed_seconds,
                "ratio": self.ratio, "steps": self.steps,
                "identical_schedule": self.identical_schedule}


def measure_overhead(program: Callable[..., Any], seed: int = 0,
                     repeats: int = 3,
                     observer_factory: Optional[Callable[[], Observer]] = None,
                     name: Optional[str] = None,
                     **run_kwargs: Any) -> OverheadReport:
    """Time ``program`` unobserved and observed; verify schedules match.

    The observed run uses a fresh observer per repeat (observers are
    single-run by contract).  ``run_kwargs`` pass through to
    :func:`repro.run` for both variants.
    """
    factory = observer_factory or Observer
    run_kwargs.setdefault("keep_trace", True)

    base_times: List[float] = []
    base_result: Optional[RunResult] = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        base_result = run(program, seed=seed, **run_kwargs)
        base_times.append(time.perf_counter() - t0)

    observed_times: List[float] = []
    observed_result: Optional[RunResult] = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        observed_result = run(program, seed=seed, observe=factory(),
                              **run_kwargs)
        observed_times.append(time.perf_counter() - t0)

    assert base_result is not None and observed_result is not None
    identical = (schedule_fingerprint(base_result)
                 == schedule_fingerprint(observed_result))
    return OverheadReport(
        program=name or getattr(program, "__name__", "program"),
        seed=seed,
        repeats=repeats,
        base_seconds=min(base_times),
        observed_seconds=min(observed_times),
        steps=base_result.steps,
        identical_schedule=identical,
    )
