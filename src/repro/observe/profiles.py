"""pprof-style profiles aggregated from the trace stream.

Three profiles mirror the ones Go developers reach for when debugging the
paper's bug classes:

* **goroutine profile** — final state × creation-site snapshot: the view
  ``pprof/goroutine`` gives, and the one that names a leak's origin.
* **block profile** — time parked per (primitive, call-site): where the
  program waited, measured in *scheduler steps* (the simulator's unit of
  progress) and virtual seconds.  Spans still open when the run ends are
  flagged ``still_blocked`` — those rows are the leaking call-sites.
* **mutex profile** — contended Mutex/RWMutex acquisitions per (lock,
  call-site), the ``pprof/mutex`` analogue.

Weights use scheduler steps as the primary unit because the virtual clock
only advances when timers fire: a heavily contended lock can burn thousands
of steps at virtual time zero.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Aggregation key: a small tuple of labels, e.g. ("chan.send", "file.py:12").
Key = Tuple[str, ...]


class ProfileEntry:
    """One aggregated row of a profile."""

    __slots__ = ("key", "count", "steps", "seconds", "still_blocked")

    def __init__(self, key: Key):
        self.key = key
        self.count = 0
        self.steps = 0
        self.seconds = 0.0
        self.still_blocked = 0

    def to_dict(self) -> dict:
        return {"key": list(self.key), "count": self.count,
                "steps": self.steps, "seconds": self.seconds,
                "still_blocked": self.still_blocked}


class Profile:
    """An aggregated multiset of keyed samples with top-N rendering."""

    def __init__(self, name: str, columns: Tuple[str, ...]):
        self.name = name
        #: Labels for the key components, e.g. ("primitive", "site").
        self.columns = columns
        self.entries: Dict[Key, ProfileEntry] = {}

    def add(self, key: Key, count: int = 1, steps: int = 0,
            seconds: float = 0.0, still_blocked: int = 0) -> ProfileEntry:
        entry = self.entries.get(key)
        if entry is None:
            entry = ProfileEntry(key)
            self.entries[key] = entry
        entry.count += count
        entry.steps += steps
        entry.seconds += seconds
        entry.still_blocked += still_blocked
        return entry

    # ------------------------------------------------------------------

    def top(self, n: Optional[int] = None) -> List[ProfileEntry]:
        """Entries by weight: steps, then count, then key (deterministic)."""
        ranked = sorted(self.entries.values(),
                        key=lambda e: (-e.steps, -e.count, e.key))
        return ranked if n is None else ranked[:n]

    @property
    def total_steps(self) -> int:
        return sum(e.steps for e in self.entries.values())

    def render(self, n: int = 10) -> str:
        """An aligned ``pprof -top``-style table."""
        total = self.total_steps or 1
        header = f"{self.name} profile — top {min(n, len(self.entries))} of " \
                 f"{len(self.entries)} (weight = scheduler steps waiting)"
        lines = [header]
        lines.append(f"{'steps':>8} {'share':>6} {'count':>6} {'secs':>8}  "
                     + " / ".join(self.columns))
        for entry in self.top(n):
            label = " / ".join(entry.key)
            if entry.still_blocked:
                label += f"  [STILL BLOCKED x{entry.still_blocked}]"
            lines.append(f"{entry.steps:>8} {entry.steps / total:>6.1%} "
                         f"{entry.count:>6} {entry.seconds:>8g}  {label}")
        if not self.entries:
            lines.append("   (no samples)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"name": self.name, "columns": list(self.columns),
                "entries": [e.to_dict() for e in self.top(None)]}


class GoroutineProfile:
    """Final goroutine states grouped Go-``pprof/goroutine``-style."""

    def __init__(self) -> None:
        #: (state, name, creation_site) -> gids
        self.groups: Dict[Tuple[str, str, str], List[int]] = {}

    def add(self, gid: int, state: str, name: str, site: str) -> None:
        self.groups.setdefault((state, name, site), []).append(gid)

    def total(self) -> int:
        return sum(len(gids) for gids in self.groups.values())

    def _ranked(self) -> List[Tuple[Tuple[str, str, str], List[int]]]:
        # Blocked groups first (they are the story), then by size.
        def rank(item):
            (state, name, site), gids = item
            blocked = 0 if state.startswith("blocked") else 1
            return (blocked, -len(gids), state, name, site)
        return sorted(self.groups.items(), key=rank)

    def render(self) -> str:
        lines = [f"goroutine profile — {self.total()} goroutines "
                 f"in {len(self.groups)} groups"]
        for (state, name, site), gids in self._ranked():
            ids = ",".join(f"g{gid}" for gid in sorted(gids)[:6])
            if len(gids) > 6:
                ids += ",…"
            lines.append(f"{len(gids):>4} × [{state}] {name} "
                         f"created at {site}  ({ids})")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"total": self.total(),
                "groups": [{"state": state, "name": name, "site": site,
                            "count": len(gids), "gids": sorted(gids)}
                           for (state, name, site), gids in self._ranked()]}


# ----------------------------------------------------------------------
# Text flamegraph
# ----------------------------------------------------------------------


class _FlameNode:
    __slots__ = ("label", "weight", "children")

    def __init__(self, label: str):
        self.label = label
        self.weight = 0
        self.children: Dict[str, "_FlameNode"] = {}

    def child(self, label: str) -> "_FlameNode":
        node = self.children.get(label)
        if node is None:
            node = _FlameNode(label)
            self.children[label] = node
        return node


def flamegraph(stacks: Iterable[Tuple[Tuple[str, ...], int]],
               width: int = 40,
               title: str = "flamegraph (weight = scheduler steps blocked)"
               ) -> str:
    """Render root-first stacks into an indented text flamegraph.

    ``stacks`` yields ``(frames, weight)`` pairs with the outermost frame
    first.  Sibling order is weight-descending then label, so the render
    is deterministic for a deterministic trace.
    """
    root = _FlameNode("root")
    for frames, weight in stacks:
        root.weight += weight
        node = root
        for frame in frames:
            node = node.child(frame)
            node.weight += weight

    total = root.weight or 1
    lines = [title, f"total weight: {root.weight}"]

    def visit(node: _FlameNode, depth: int) -> None:
        ordered = sorted(node.children.values(),
                         key=lambda child: (-child.weight, child.label))
        for child in ordered:
            bar = "#" * max(1, round(width * child.weight / total))
            lines.append(f"{'  ' * depth}{child.label:<48} "
                         f"{child.weight:>8} {child.weight / total:>6.1%} |{bar}")
            visit(child, depth + 1)

    visit(root, 0)
    if not root.children:
        lines.append("  (no blocked stacks recorded)")
    return "\n".join(lines)
