"""The Observer: one attachable trace consumer that builds every view.

Contract (the same one detectors follow, see DESIGN.md): the observer
subscribes to the run's :class:`repro.runtime.trace.Trace` and two inert
scheduler hooks (``on_step``, ``capture_sites``).  It never touches the
RNG, the runnable set, or primitive state — attaching an observer is
guaranteed not to change the schedule, which the determinism tests assert
bit-for-bit.

Everything it derives — the metrics registry, the goroutine/block/mutex
profiles, the flamegraph stacks — is a pure function of the trace, so two
same-seed runs produce byte-identical dumps.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..runtime.trace import EventKind, TraceEvent
from .metrics import MetricsRegistry
from .profiles import GoroutineProfile, Profile, flamegraph

#: Block reasons whose spans feed the mutex-contention profile.
_LOCK_REASONS = ("mutex.lock:", "rwmutex.lock:", "rwmutex.rlock:")

#: Event kind -> counter name (simple tallies).
_TALLY = {
    EventKind.CHAN_SEND: "chan.sends",
    EventKind.CHAN_RECV: "chan.recvs",
    EventKind.CHAN_CLOSE: "chan.closes",
    EventKind.CHAN_MAKE: "chan.made",
    EventKind.SELECT_COMMIT: "select.commits",
    EventKind.MU_LOCK: "mutex.acquires",
    EventKind.MU_UNLOCK: "mutex.releases",
    EventKind.RW_LOCK: "rwmutex.wlocks",
    EventKind.RW_RLOCK: "rwmutex.rlocks",
    EventKind.WG_WAIT: "waitgroup.waits",
    EventKind.ONCE_DO: "once.dos",
    EventKind.COND_WAIT: "cond.waits",
    EventKind.ATOMIC_OP: "atomic.ops",
    EventKind.MEM_READ: "mem.reads",
    EventKind.MEM_WRITE: "mem.writes",
    EventKind.SLEEP: "time.sleeps",
    EventKind.TIMER_FIRE: "time.timer_fires",
    EventKind.EXTERNAL_WAIT: "external.waits",
    EventKind.INJECT: "inject.faults",
    EventKind.GO_PANIC: "go.panics",
    EventKind.NET_SEND: "net.sends",
    EventKind.NET_RECV: "net.recvs",
    EventKind.NET_DROP: "net.drops",
    EventKind.NET_DIAL: "net.dials",
    EventKind.NET_PARTITION: "net.partitions",
    EventKind.NET_HEAL: "net.heals",
}

#: Bucket bounds for per-link delivery latency (virtual seconds).
_NET_LATENCY_BOUNDS = (0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
                       0.2, 0.5, 1.0)


class _OpenSpan:
    """One in-flight block: a goroutine parked since (step, time)."""

    __slots__ = ("reason", "site", "stack", "step", "time")

    def __init__(self, reason: str, site: str, stack: Tuple[str, ...],
                 step: int, time: float):
        self.reason = reason
        self.site = site
        self.stack = stack
        self.step = step
        self.time = time


class Observer:
    """pprof/expvar-style observability over one deterministic run.

    Attach via ``run(main, observe=Observer(...))`` (or ``observe=True``
    for the defaults).  After the run, the observer exposes:

    * ``metrics`` — the :class:`MetricsRegistry`.
    * ``block_profile`` / ``mutex_profile`` / ``goroutine_profile``.
    * ``render()`` — the full text report; ``flamegraph()`` — text flame.
    * ``to_dict()`` / ``to_json()`` — stable machine-readable dumps.

    Args:
        capture_sites: record user call-site stacks on every block (the
            pprof-style attribution); off saves the frame walk.
        max_series: cap per time series (runnable depth, occupancy).
        track_occupancy: per-channel occupancy histograms + series.
    """

    def __init__(self, capture_sites: bool = True, max_series: int = 4096,
                 track_occupancy: bool = True):
        self.capture_sites = capture_sites
        self.max_series = max_series
        self.track_occupancy = track_occupancy

        self.metrics = MetricsRegistry()
        self.block_profile = Profile("block", ("primitive", "site"))
        self.mutex_profile = Profile("mutex", ("lock", "site"))
        self.goroutine_profile = GoroutineProfile()

        # Trace-derived goroutine book-keeping.
        self._g_state: Dict[int, str] = {}
        self._g_name: Dict[int, str] = {}
        self._g_site: Dict[int, str] = {}
        self._open: Dict[int, _OpenSpan] = {}
        self._flame: Dict[Tuple[str, ...], int] = {}

        # Channel book-keeping.
        self._chan_label: Dict[int, str] = {}
        self._chan_occ: Dict[int, int] = {}

        self._last_gid: Optional[int] = None
        self._attached = False
        self._finished = False
        self.result: Optional[Any] = None

        # Hot-path instrument handles (bound once; ``_on_step`` runs every
        # scheduler step and must not pay a registry lookup each time).
        self._steps_counter = self.metrics.counter("sched.steps")
        self._switch_counter = self.metrics.counter("sched.switches")
        self._depth_hist = self.metrics.histogram("sched.runnable_depth")
        self._depth_series = self.metrics.timeseries(
            "sched.runnable_depth.series", self.max_series)
        self._tally_cache: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Attachment (the observers=/observe= protocol)
    # ------------------------------------------------------------------

    def attach(self, rt: Any) -> None:
        if self._attached:
            raise RuntimeError(
                "Observer instances are single-run; create a fresh one "
                "per run so dumps stay a pure function of (program, seed)")
        self._attached = True
        sched = rt.sched
        if self.capture_sites:
            sched.capture_sites = True
        prev = sched.on_step
        if prev is None:
            sched.on_step = self._on_step
        else:  # chain politely with an already-installed hook
            def chained(step: int, depth: int, gid: int) -> None:
                prev(step, depth, gid)
                self._on_step(step, depth, gid)
            sched.on_step = chained
        sched.trace.subscribe(self._on_event)

    # ------------------------------------------------------------------
    # Scheduler hook
    # ------------------------------------------------------------------

    def _on_step(self, step: int, depth: int, gid: int) -> None:
        self._steps_counter.value += 1
        self._depth_hist.observe(depth)
        self._depth_series.sample(step, depth)
        if self._last_gid is not None and gid != self._last_gid:
            self._switch_counter.value += 1
        self._last_gid = gid

    # ------------------------------------------------------------------
    # Trace consumption
    # ------------------------------------------------------------------

    def _on_event(self, e: TraceEvent) -> None:
        kind = e.kind
        tally = _TALLY.get(kind)
        if tally is not None:
            counter = self._tally_cache.get(tally)
            if counter is None:
                counter = self.metrics.counter(tally)
                self._tally_cache[tally] = counter
            counter.value += 1

        if kind == EventKind.GO_CREATE:
            gid = int(e.obj)  # type: ignore[arg-type]
            self._g_state[gid] = "runnable"
            self._g_name[gid] = str(e.info.get("name", f"g{gid}"))
            self._g_site[gid] = str(e.info.get("site") or "?")
            live = self.metrics.gauge("go.live")
            live.add(1)
            self.metrics.counter("go.spawned").inc()
            if e.info.get("anonymous"):
                self.metrics.counter("go.spawned_anonymous").inc()
        elif kind == EventKind.GO_BLOCK:
            reason = str(e.info.get("reason", "?"))
            site = str(e.info.get("site", "?"))
            stack = tuple(e.info.get("stack") or ())
            self._g_state[e.gid] = f"blocked:{reason}"
            self._open[e.gid] = _OpenSpan(reason, site, stack, e.step, e.time)
            self.metrics.counter("go.blocks").inc()
        elif kind == EventKind.GO_UNBLOCK:
            gid = int(e.obj)  # type: ignore[arg-type]
            self._g_state[gid] = "runnable"
            span = self._open.pop(gid, None)
            if span is not None:
                self._close_span(gid, span, e.step, e.time, still_blocked=False)
        elif kind in (EventKind.GO_END, EventKind.GO_PANIC):
            self._g_state[e.gid] = ("done" if kind == EventKind.GO_END
                                    else "panicked")
            self._open.pop(e.gid, None)
            self.metrics.gauge("go.live").add(-1)
        elif kind == EventKind.CHAN_MAKE:
            cid = int(e.obj)  # type: ignore[arg-type]
            name = e.info.get("name", f"chan#{cid}")
            self._chan_label[cid] = f"{name}#{cid}"
            self._chan_occ[cid] = 0
        elif kind == EventKind.CHAN_SEND:
            if self.track_occupancy and not e.info.get("sync", False):
                self._occupancy(int(e.obj), +1, e.step)  # type: ignore[arg-type]
        elif kind == EventKind.CHAN_RECV:
            if (self.track_occupancy and not e.info.get("sync", False)
                    and "seq" in e.info):
                self._occupancy(int(e.obj), -1, e.step)  # type: ignore[arg-type]
        elif kind == EventKind.NET_RECV:
            link = e.info.get("link")
            latency = e.info.get("latency")
            if link is not None and latency is not None:
                self.metrics.histogram(f"net.latency_s[{link}]",
                                       bounds=_NET_LATENCY_BOUNDS
                                       ).observe(latency)
        elif kind == EventKind.NET_DROP:
            link = e.info.get("link")
            if link is not None:
                self.metrics.counter(f"net.drops[{link}]").inc()

    def _occupancy(self, cid: int, delta: int, step: int) -> None:
        occ = self._chan_occ.get(cid, 0) + delta
        self._chan_occ[cid] = occ
        label = self._chan_label.get(cid, f"chan#{cid}")
        self.metrics.histogram(f"chan.occupancy[{label}]").observe(occ)
        self.metrics.timeseries(f"chan.occupancy[{label}].series",
                                self.max_series).sample(step, occ)

    # ------------------------------------------------------------------

    def _close_span(self, gid: int, span: _OpenSpan, step: int, time: float,
                    still_blocked: bool) -> None:
        wait_steps = step - span.step
        wait_seconds = time - span.time
        primitive = span.reason.split(":", 1)[0]
        self.block_profile.add(
            (primitive, span.site), steps=wait_steps, seconds=wait_seconds,
            still_blocked=1 if still_blocked else 0)
        self.metrics.histogram(
            f"block.wait_steps[{primitive}]").observe(wait_steps)
        if wait_seconds > 0:
            self.metrics.histogram(
                f"block.wait_seconds[{primitive}]").observe(wait_seconds)
        if span.reason.startswith(_LOCK_REASONS):
            lock = span.reason.split(":", 1)[1] or "?"
            self.mutex_profile.add(
                (lock, span.site), steps=wait_steps, seconds=wait_seconds,
                still_blocked=1 if still_blocked else 0)
        # Flamegraph stack: outermost user frame first, reason as the leaf.
        if span.stack:
            frames = tuple(reversed(span.stack)) + (span.reason,)
        else:
            frames = (self._g_name.get(gid, f"g{gid}"), span.reason)
        self._flame[frames] = self._flame.get(frames, 0) + wait_steps

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------

    def finish(self, result: Any) -> None:
        """Close open spans against the end of the run and snapshot states."""
        if self._finished:
            return
        self._finished = True
        self.result = result
        end_step = result.steps
        end_time = result.end_time
        for gid in sorted(self._open):
            span = self._open[gid]
            self._close_span(gid, span, end_step, end_time, still_blocked=True)
        self._open.clear()
        for gid in sorted(self._g_state):
            self.goroutine_profile.add(
                gid, self._g_state[gid],
                self._g_name.get(gid, f"g{gid}"),
                self._g_site.get(gid, "?"))
        peak = self.metrics.gauge("go.live").max
        self.metrics.gauge("go.peak_live").set(peak)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def flamegraph(self, width: int = 40) -> str:
        return flamegraph(sorted(self._flame.items()), width=width,
                          title="blocked-time flamegraph "
                                "(weight = scheduler steps blocked)")

    def _run_summary(self) -> dict:
        if self.result is None:
            return {}
        return {"status": self.result.status, "seed": self.result.seed,
                "steps": self.result.steps,
                "virtual_time": self.result.end_time}

    def render(self, top: int = 10) -> str:
        """The full text report (`repro profile` output)."""
        sections: List[str] = []
        summary = self._run_summary()
        if summary:
            sections.append(
                "run: " + " ".join(f"{k}={v}" for k, v in summary.items()))
        sections.append(self.goroutine_profile.render())
        sections.append(self.block_profile.render(top))
        sections.append(self.mutex_profile.render(top))
        sections.append("metrics:\n" + self.metrics.render())
        return "\n\n".join(sections)

    def to_dict(self) -> dict:
        """Stable, JSON-serializable dump of every derived view."""
        return {
            "run": self._run_summary(),
            "metrics": self.metrics.to_dict(),
            "profiles": {
                "goroutine": self.goroutine_profile.to_dict(),
                "block": self.block_profile.to_dict(),
                "mutex": self.mutex_profile.to_dict(),
            },
            "flame": [{"stack": list(stack), "steps": steps}
                      for stack, steps in sorted(self._flame.items())],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)
