"""repro.observe — pprof/expvar-style observability for deterministic runs.

The subsystem that turns the simulator from a substrate into a study
instrument: a metrics registry, goroutine/block/mutex profiles with text
flamegraphs, Chrome ``trace_event`` export, and a self-overhead
accountant.  Everything except the (clearly segregated) wall-clock
overhead numbers is a pure function of ``(program, seed, options)``.

Quickstart::

    from repro import run

    result = run(main, seed=7, observe=True)
    obs = result.observation
    print(obs.render())            # goroutine/block/mutex profiles + metrics
    print(obs.flamegraph())        # where the program waited, as a flame
    obs.to_json()                  # stable machine-readable dump

    from repro.observe import chrome_trace_json
    chrome_trace_json(result)      # load in about:tracing / Perfetto
"""

from .export import (
    SYNC_EVENT_KINDS,
    chrome_trace,
    chrome_trace_json,
    metrics_json,
    sync_events,
    sync_events_json,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from .observer import Observer
from .overhead import OverheadReport, measure_overhead, schedule_fingerprint
from .profiles import GoroutineProfile, Profile, ProfileEntry, flamegraph

__all__ = [
    "Counter",
    "SYNC_EVENT_KINDS",
    "Gauge",
    "GoroutineProfile",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "OverheadReport",
    "Profile",
    "ProfileEntry",
    "TimeSeries",
    "chrome_trace",
    "chrome_trace_json",
    "flamegraph",
    "measure_overhead",
    "metrics_json",
    "schedule_fingerprint",
    "sync_events",
    "sync_events_json",
]
