"""Trace and metrics exporters.

:func:`chrome_trace` converts a finished run's trace into the Chrome
``trace_event`` JSON format (the JSON-array flavour with a ``traceEvents``
top-level key), loadable in ``about:tracing`` and Perfetto:

* one *thread* per goroutine (named via metadata events),
* a duration (``B``/``E``) slice for every block span,
* instant events for channel/select/timer/inject actions,
* flow arrows (``s``/``f``) linking every channel send to its receive,
* optional counter events for the runnable-queue depth (from an Observer).

Timestamps: the virtual clock only advances when timers fire, so a pure
virtual-time axis would collapse thousands of scheduling steps into one
instant.  Exported ``ts`` is ``virtual_seconds * 1e6 + step`` — microsecond
virtual time with the step counter breaking ties — which is monotone and
keeps both sleeps and contention visible.  The raw pair is preserved in
each event's ``args``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..runtime.trace import EventKind, TraceEvent

#: Kinds exported as instant events (name shown at a single tick).
_INSTANT = {
    EventKind.CHAN_SEND: "send",
    EventKind.CHAN_RECV: "recv",
    EventKind.CHAN_CLOSE: "close",
    EventKind.CHAN_MAKE: "make",
    EventKind.SELECT_COMMIT: "select",
    EventKind.TIMER_FIRE: "timer",
    EventKind.INJECT: "inject",
    EventKind.GO_CREATE: "go",
    EventKind.GO_START: "go.start",
    EventKind.GO_END: "go.end",
    EventKind.WG_ADD: "wg.add",
    EventKind.WG_DONE: "wg.done",
    EventKind.ONCE_DO: "once",
    EventKind.COND_SIGNAL: "cond.signal",
    EventKind.COND_BROADCAST: "cond.broadcast",
    EventKind.NET_DROP: "net.drop",
    EventKind.NET_DIAL: "net.dial",
    EventKind.NET_CLOSE: "net.close",
    EventKind.NET_PARTITION: "net.partition",
    EventKind.NET_HEAL: "net.heal",
}

_PID = 1


def _ts(e: TraceEvent) -> float:
    return e.time * 1e6 + e.step


def _base(e: TraceEvent, ph: str, name: str, cat: str) -> Dict[str, Any]:
    return {"name": name, "cat": cat, "ph": ph, "pid": _PID, "tid": e.gid,
            "ts": _ts(e), "args": {"step": e.step, "virtual_time": e.time}}


def chrome_trace(result: Any, observation: Any = None,
                 include_memory: bool = False) -> Dict[str, Any]:
    """Build the ``trace_event`` document for one finished run.

    Args:
        result: a :class:`repro.runtime.runtime.RunResult` with a trace
            (``keep_trace=True``, the default).
        observation: optional :class:`repro.observe.Observer` from the same
            run; contributes runnable-depth counter events.
        include_memory: also export MEM_READ/MEM_WRITE instants (noisy).
    """
    if result.trace is None:
        raise ValueError("run was executed with keep_trace=False; "
                         "re-run with keep_trace=True to export a trace")

    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": f"repro simulator (seed={result.seed}, "
                         f"status={result.status})"},
    }]
    for g in result.goroutines:
        events.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": g.gid,
            "args": {"name": f"g{g.gid} {g.name}"},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": _PID,
            "tid": g.gid, "args": {"sort_index": g.gid},
        })

    open_blocks: Dict[int, TraceEvent] = {}
    end_ts = result.end_time * 1e6 + result.steps

    # Pre-pass for goroutine fork/join flow arrows.  Flows must pair (one
    # ``s`` start with one ``f`` finish), so eligibility is decided up
    # front: a *fork* pair needs the GO_CREATE plus the child's first own
    # event to anchor the finish to (the moment the child actually runs);
    # a *join* pair needs the child's GO_END plus a later event on the
    # creator's timeline (the moment the parent can first observe the
    # exit).  Children killed at teardown before running get no fork
    # edge; runs that end before the parent resumes get no join edge.
    creator: Dict[int, int] = {}            # child gid -> creating gid
    steps_by_gid: Dict[int, List[TraceEvent]] = {}
    for e in result.trace:
        steps_by_gid.setdefault(e.gid, []).append(e)
        if e.kind == EventKind.GO_CREATE:
            creator.setdefault(int(e.obj), e.gid)  # type: ignore[arg-type]
    fork_anchor: Dict[int, TraceEvent] = {}  # child gid -> child's 1st event
    join_anchor: Dict[int, TraceEvent] = {}  # child gid -> creator event
    for e in result.trace:
        if e.kind == EventKind.GO_CREATE:
            child = int(e.obj)  # type: ignore[arg-type]
            anchor = next((ce for ce in steps_by_gid.get(child, ())
                           if ce.step > e.step), None)
            if anchor is not None:
                fork_anchor[child] = anchor
        elif e.kind == EventKind.GO_END:
            parent = creator.get(e.gid)
            if parent is None:
                continue
            anchor = next((pe for pe in steps_by_gid.get(parent, ())
                           if pe.step > e.step), None)
            if anchor is not None:
                join_anchor[e.gid] = anchor

    for e in result.trace:
        kind = e.kind
        if kind == EventKind.GO_BLOCK:
            reason = str(e.info.get("reason", "?"))
            begin = _base(e, "B", f"blocked: {reason}", "block")
            site = e.info.get("site")
            if site:
                begin["args"]["site"] = site
            events.append(begin)
            open_blocks[e.gid] = e
        elif kind == EventKind.GO_UNBLOCK:
            gid = int(e.obj)  # type: ignore[arg-type]
            blocked = open_blocks.pop(gid, None)
            if blocked is not None:
                end = _base(e, "E", "", "block")
                end["tid"] = gid
                events.append(end)
        elif kind in (EventKind.CHAN_SEND, EventKind.CHAN_RECV):
            label = _INSTANT[kind]
            inst = _base(e, "i", f"{label} chan#{e.obj}", "chan")
            inst["s"] = "t"
            inst["args"].update(
                {k: v for k, v in e.info.items() if k != "stack"})
            events.append(inst)
            # Flow arrows pair each message's send with its receive.
            seq = e.info.get("seq")
            if seq is not None:
                flow = _base(e, "s" if kind == EventKind.CHAN_SEND else "f",
                             f"chan#{e.obj} msg", "chan.flow")
                flow["id"] = f"chan{e.obj}-{seq}"
                if kind == EventKind.CHAN_RECV:
                    flow["bp"] = "e"
                events.append(flow)
        elif kind in (EventKind.NET_SEND, EventKind.NET_RECV):
            label = "net.send" if kind == EventKind.NET_SEND else "net.recv"
            link = e.info.get("link", "?")
            inst = _base(e, "i", f"{label} {link}", "net")
            inst["s"] = "t"
            inst["args"].update(
                {k: v for k, v in e.info.items() if k != "stack"})
            events.append(inst)
            # Flow arrows pair each network message's send with its receive
            # across goroutines (and nodes), like the channel arrows.
            seq = e.info.get("seq")
            if seq is not None:
                flow = _base(e, "s" if kind == EventKind.NET_SEND else "f",
                             f"net {link} msg", "net.flow")
                flow["id"] = f"net-{link}-{seq}"
                if kind == EventKind.NET_RECV:
                    flow["bp"] = "e"
                events.append(flow)
        elif kind in (EventKind.MEM_READ, EventKind.MEM_WRITE):
            if include_memory:
                inst = _base(e, "i", kind, "mem")
                inst["s"] = "t"
                events.append(inst)
        elif kind in (EventKind.GO_CREATE, EventKind.GO_START,
                      EventKind.GO_END):
            inst = _base(e, "i", f"{_INSTANT[kind]}"
                         + (f" #{e.obj}" if e.obj is not None else ""),
                         "go")
            inst["s"] = "t"
            inst["args"].update(
                {k: v for k, v in e.info.items() if k != "stack"})
            events.append(inst)
            if kind == EventKind.GO_CREATE:
                child = int(e.obj)  # type: ignore[arg-type]
                anchor = fork_anchor.get(child)
                if anchor is not None:
                    flow = _base(e, "s", f"fork g{child}", "go.flow")
                    flow["id"] = f"go-{child}"
                    events.append(flow)
                    finish = _base(anchor, "f", f"fork g{child}", "go.flow")
                    finish["id"] = f"go-{child}"
                    finish["bp"] = "e"
                    events.append(finish)
            elif kind == EventKind.GO_END:
                # The parent-observes-child-exit join edge.
                anchor = join_anchor.get(e.gid)
                if anchor is not None:
                    flow = _base(e, "s", f"join g{e.gid}", "go.flow")
                    flow["id"] = f"join-{e.gid}"
                    events.append(flow)
                    finish = _base(anchor, "f", f"join g{e.gid}", "go.flow")
                    finish["id"] = f"join-{e.gid}"
                    finish["bp"] = "e"
                    events.append(finish)
        elif kind in _INSTANT:
            inst = _base(e, "i", f"{_INSTANT[kind]}"
                         + (f" #{e.obj}" if e.obj is not None else ""),
                         kind.split(".", 1)[0])
            inst["s"] = "t"
            inst["args"].update(
                {k: v for k, v in e.info.items() if k != "stack"})
            events.append(inst)

    # Close every span still open when the run ended (leaked goroutines).
    for gid, blocked in sorted(open_blocks.items()):
        events.append({"name": "", "cat": "block", "ph": "E", "pid": _PID,
                       "tid": gid, "ts": end_ts,
                       "args": {"still_blocked": True}})

    if observation is not None:
        series = observation.metrics.timeseries("sched.runnable_depth.series")
        for step, depth in series.samples:
            events.append({"name": "runnable goroutines", "ph": "C",
                           "pid": _PID, "tid": 0, "ts": float(step),
                           "args": {"runnable": depth}})

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.observe",
            "seed": result.seed,
            "status": result.status,
            "steps": result.steps,
            "virtual_time": result.end_time,
        },
    }


def chrome_trace_json(result: Any, observation: Any = None,
                      include_memory: bool = False,
                      indent: Optional[int] = None) -> str:
    """The :func:`chrome_trace` document serialized deterministically."""
    return json.dumps(chrome_trace(result, observation, include_memory),
                      sort_keys=True, indent=indent)


def metrics_json(observation: Any, indent: Optional[int] = None) -> str:
    """Stable JSON dump of an Observer's full derived state."""
    return observation.to_json(indent=indent)


# ----------------------------------------------------------------------
# Sync-event export: the first-class synchronization record consumed by
# the offline predictive analyses in :mod:`repro.predict`.
# ----------------------------------------------------------------------

#: Every event kind that carries happens-before or blocking information:
#: goroutine lifecycle (fork/join/block), channel operations, select
#: commits, every lock/waitgroup/once/cond/atomic transition, and the raw
#: memory accesses the race predictor reasons about.
SYNC_EVENT_KINDS = frozenset({
    EventKind.GO_CREATE, EventKind.GO_START, EventKind.GO_END,
    EventKind.GO_PANIC, EventKind.GO_BLOCK, EventKind.GO_UNBLOCK,
    EventKind.CHAN_MAKE, EventKind.CHAN_SEND, EventKind.CHAN_RECV,
    EventKind.CHAN_CLOSE, EventKind.SELECT_BEGIN, EventKind.SELECT_COMMIT,
    EventKind.MU_REQUEST, EventKind.MU_LOCK, EventKind.MU_UNLOCK,
    EventKind.RW_REQUEST, EventKind.RW_LOCK, EventKind.RW_UNLOCK,
    EventKind.RW_RLOCK, EventKind.RW_RUNLOCK,
    EventKind.WG_ADD, EventKind.WG_DONE, EventKind.WG_WAIT,
    EventKind.ONCE_DO, EventKind.COND_WAIT, EventKind.COND_SIGNAL,
    EventKind.COND_BROADCAST, EventKind.ATOMIC_OP,
    EventKind.MEM_READ, EventKind.MEM_WRITE,
})

#: ``info`` keys preserved in the export (JSON-safe scalars only).
_SYNC_INFO_KEYS = ("seq", "sync", "partner", "closed", "delta", "ran",
                   "name", "reason", "site", "chosen", "anonymous", "objs",
                   "cases", "default", "chans")


def sync_events(result: Any) -> List[Dict[str, Any]]:
    """The run's synchronization record as a list of plain dicts.

    Each entry mirrors one :class:`~repro.runtime.trace.TraceEvent`
    (``step``/``time``/``gid``/``kind``/``obj`` plus whitelisted ``info``
    fields), restricted to :data:`SYNC_EVENT_KINDS`.  The stream is
    self-contained: :func:`repro.predict.SyncTrace.from_json` rebuilds an
    identical happens-before closure from it (see the round-trip test).
    """
    if result.trace is None:
        raise ValueError("run was executed with keep_trace=False; "
                         "re-run with keep_trace=True to export sync events")
    out: List[Dict[str, Any]] = []
    for e in result.trace:
        if e.kind not in SYNC_EVENT_KINDS:
            continue
        entry: Dict[str, Any] = {"step": e.step, "time": e.time,
                                 "gid": e.gid, "kind": e.kind}
        if e.obj is not None:
            entry["obj"] = e.obj
        if e.info:
            info = {k: list(e.info[k]) if isinstance(e.info[k], tuple)
                    else e.info[k]
                    for k in _SYNC_INFO_KEYS if k in e.info}
            if info:
                entry["info"] = info
        out.append(entry)
    return out


def sync_events_json(result: Any, indent: Optional[int] = None) -> str:
    """Stable JSON document wrapping :func:`sync_events` with run metadata."""
    doc = {
        "schema": 1,
        "source": "repro.observe.sync_events",
        "seed": result.seed,
        "status": result.status,
        "steps": result.steps,
        "virtual_time": result.end_time,
        "goroutines": {str(g.gid): g.name for g in result.goroutines},
        "events": sync_events(result),
    }
    return json.dumps(doc, sort_keys=True, indent=indent)
