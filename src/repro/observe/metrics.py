"""An expvar-style metrics registry over the deterministic runtime.

Four instrument kinds, all driven exclusively by trace events and the
virtual clock so that a metrics dump is a pure function of ``(program,
seed, options)``:

* :class:`Counter` — monotonically increasing event count.
* :class:`Gauge` — last-write-wins level with min/max tracking.
* :class:`Histogram` — bucketed distribution (virtual-clock wait times,
  queue depths); buckets are fixed at construction so dumps are stable.
* :class:`TimeSeries` — change-compressed ``(step, value)`` samples, for
  "over time" views (runnable-queue depth, channel occupancy).

Everything renders to a deterministic dict: keys sorted, floats left
exactly as the simulation produced them, no wall-clock anywhere.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds (last bucket is +Inf, implicit).
#: Powers of two cover both step counts and small queue depths well.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A level that can go up and down; remembers its extremes."""

    __slots__ = ("name", "help", "value", "max", "min", "_touched")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0
        self.max: Number = 0
        self.min: Number = 0
        self._touched = False

    def set(self, value: Number) -> None:
        if not self._touched:
            self.max = self.min = value
            self._touched = True
        self.value = value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value

    def add(self, delta: Number) -> None:
        self.set(self.value + delta)

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value,
                "max": self.max, "min": self.min}


class Histogram:
    """A fixed-bucket distribution of observed values.

    ``bounds`` are inclusive upper edges; one overflow bucket catches the
    rest.  Count, sum, min and max ride along so means and tails can be
    reported without the raw samples.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str, bounds: Optional[Sequence[Number]] = None,
                 help: str = ""):
        self.name = name
        self.help = help
        self.bounds: Tuple[Number, ...] = tuple(bounds if bounds is not None
                                                else DEFAULT_BOUNDS)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"{name}: histogram bounds must be ascending")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum: float = 0.0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        buckets = {f"le={bound:g}": count
                   for bound, count in zip(self.bounds, self.bucket_counts)
                   if count}
        if self.bucket_counts[-1]:
            buckets["le=+Inf"] = self.bucket_counts[-1]
        return {"type": "histogram", "count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max, "buckets": buckets}


class TimeSeries:
    """Change-compressed samples of one value over scheduler steps.

    A sample is recorded only when the value changes, and the series is
    capped: once ``max_samples`` is hit, further changes only update the
    drop counter (the aggregate view lives in a companion histogram).
    """

    __slots__ = ("name", "help", "max_samples", "samples", "dropped", "_last")

    def __init__(self, name: str, max_samples: int = 4096, help: str = ""):
        self.name = name
        self.help = help
        self.max_samples = max_samples
        self.samples: List[Tuple[Number, Number]] = []
        self.dropped = 0
        self._last: Optional[Number] = None

    def sample(self, step: Number, value: Number) -> None:
        if value == self._last:
            return
        self._last = value
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            return
        self.samples.append((step, value))

    def to_dict(self) -> dict:
        return {"type": "timeseries",
                "samples": [list(s) for s in self.samples],
                "dropped": self.dropped}


Metric = Union[Counter, Gauge, Histogram, TimeSeries]


class MetricsRegistry:
    """Named metrics with get-or-create accessors and a stable dump."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get(name, lambda: Counter(name, help))
        if not isinstance(metric, Counter):
            raise TypeError(f"{name} is a {type(metric).__name__}, not Counter")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get(name, lambda: Gauge(name, help))
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name} is a {type(metric).__name__}, not Gauge")
        return metric

    def histogram(self, name: str, bounds: Optional[Sequence[Number]] = None,
                  help: str = "") -> Histogram:
        metric = self._get(name, lambda: Histogram(name, bounds, help))
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name} is a {type(metric).__name__}, not Histogram")
        return metric

    def timeseries(self, name: str, max_samples: int = 4096,
                   help: str = "") -> TimeSeries:
        metric = self._get(name, lambda: TimeSeries(name, max_samples, help))
        if not isinstance(metric, TimeSeries):
            raise TypeError(f"{name} is a {type(metric).__name__}, not TimeSeries")
        return metric

    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Metric:
        return self._metrics[name]

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def to_dict(self) -> Dict[str, dict]:
        return {name: self._metrics[name].to_dict()
                for name in sorted(self._metrics)}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def render(self) -> str:
        """A flat, aligned text dump (counters and gauges; histogram means)."""
        lines = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                lines.append(f"{name:<44} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"{name:<44} {metric.value} (max {metric.max})")
            elif isinstance(metric, Histogram):
                lines.append(f"{name:<44} n={metric.count} mean={metric.mean:g} "
                             f"max={metric.max if metric.max is not None else '-'}")
            else:
                lines.append(f"{name:<44} {len(metric.samples)} samples")
        return "\n".join(lines)
