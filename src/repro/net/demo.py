"""Backends for ``repro net-demo`` and ``repro loadgen``.

Both commands run complete multi-node workloads on the simulated fabric
and reduce them to flat, picklable summaries — so the CLI's ``--jobs``
seed sweeps fan out over :func:`repro.parallel.map_units` and come back
byte-identical to the serial order.

The demo's determinism witness is double: the schedule digest (the exact
interleaving) and a SHA-256 over the fabric's message log (every SEND /
RECV / DROP line with virtual timestamps).  Replaying a seed must
reproduce both.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional

from ..runtime.runtime import run
from .load import echo_load_program


def cluster_demo(rt) -> Dict[str, Any]:
    """The showcase workload: a 3-node minietcd cluster over the fabric.

    A writer client pushes six keys through the leader (one under a
    lease), a second client watches the prefix over a server-streaming
    RPC, replication fans out to both followers with retries, and the
    run ends with a range query and a convergence check.
    """
    from ..apps.minietcd.cluster import EtcdCluster
    from ..chan.cases import recv as recv_case
    from .rpc import RpcError

    cluster = EtcdCluster(rt, size=3)
    client = cluster.client("client")
    watch_client = cluster.client("watchcli")

    events: List[Any] = []
    watch_done = rt.make_chan(1, name="watch-done")

    def watcher() -> None:
        try:
            for event in watch_client.watch("job/", count=6, timeout=20.0):
                events.append(event)
        except RpcError:
            pass
        watch_done.try_send(True)

    rt.go(watcher, name="demo-watcher")

    lease = client.grant_lease(ttl=120.0)
    puts = 0
    for i in range(6):
        try:
            client.put(f"job/{i}", i, lease=lease if i == 0 else None,
                       attempts=10)
            puts += 1
        except RpcError:
            pass

    converged = cluster.await_convergence("job/", timeout=120.0)
    timer = rt.new_timer(60.0)
    rt.select(recv_case(watch_done), recv_case(timer.c))
    timer.stop()
    try:
        rows = len(client.range("job/", timeout=20.0))
    except RpcError:
        rows = -1

    log_text = cluster.net.format_message_log()
    stats = dict(cluster.net.stats)
    replicated = [m.replicated.load() for m in cluster.members]
    cluster.stop()
    return {
        "puts": puts,
        "converged": converged,
        "watch_events": len(events),
        "range_rows": rows,
        "replicated": replicated,
        "net": stats,
        "message_log_bytes": len(log_text),
        "message_log_sha256": hashlib.sha256(log_text.encode()).hexdigest(),
        "healthy": bool(puts == 6 and converged
                        and len(events) == 6 and rows == 6),
    }


def demo_summary(seed: int, plan: Any = None) -> Dict[str, Any]:
    """One demo run reduced to a flat dict (picklable; sweepable)."""
    from ..parallel.summary import schedule_digest

    result = run(cluster_demo, seed=seed, inject=plan, max_steps=400_000)
    summary: Dict[str, Any] = dict(result.main_result or {})
    summary.update({
        "seed": seed,
        "status": result.status,
        "steps": result.steps,
        "virtual_s": round(result.end_time, 6),
        "goroutines": len(result.goroutines),
        "leaked": len(result.leaked),
        "faults_fired": len(result.injected),
        "schedule_sha256": schedule_digest(result),
    })
    return summary


def loadgen_summary(seed: int = 0, clients: int = 8, requests: int = 100,
                    rate: Optional[float] = 200.0,
                    arrival: str = "poisson") -> Dict[str, Any]:
    """One echo load run reduced to a flat dict (picklable; sweepable).

    ``requests`` is per client.  The step budget scales with the offered
    load so six-figure request counts stay inside one deterministic run.
    """

    def main(rt):
        return echo_load_program(rt, clients=clients, requests=requests,
                                 rate=rate, arrival=arrival)

    max_steps = max(100_000, clients * requests * 60)
    result = run(main, seed=seed, max_steps=max_steps, keep_trace=False)
    summary: Dict[str, Any] = dict(result.main_result or {})
    summary.update({
        "seed": seed,
        "status": result.status,
        "steps": result.steps,
        "goroutines": len(result.goroutines),
        "leaked": len(result.leaked),
    })
    return summary
