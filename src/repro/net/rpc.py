"""A small RPC layer over :class:`repro.net.Conn`, modeled on gRPC.

Unary calls and server-side streaming over one multiplexed connection.
The wire format is tagged tuples — ``("req", id, method, payload,
streaming)``, ``("res", id, code, payload)``, ``("frm", id, value)``,
``("eos", id)`` — and the concurrency structure copies gRPC-Go's:

* the **server** runs one goroutine per connection and one per request
  (the paper's leaked-handler shape — here every handler exits because
  ``Conn`` close unblocks it with EOF);
* the **client** runs one receive pump demultiplexing responses by
  request id into per-request **capacity-1** channels, the Figure 1 fix
  applied as library policy: a caller that times out and walks away never
  strands the pump on the handoff.

Deadlines are virtual-clock selects over (response, timer); retries reuse
:class:`repro.patterns.resilience.Backoff` so all jitter is seeded.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, TYPE_CHECKING

from ..chan.cases import recv as recv_case
from ..runtime.errors import GoPanic
from ..patterns.resilience import Backoff
from .conn import Conn
from .fabric import NetError

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime
    from .node import Node


class Status:
    """gRPC-style status codes (the subset the mini-apps need)."""

    OK = "OK"
    NOT_FOUND = "NOT_FOUND"
    INTERNAL = "INTERNAL"
    UNAVAILABLE = "UNAVAILABLE"
    DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
    FAILED_PRECONDITION = "FAILED_PRECONDITION"


class RpcError(Exception):
    """A non-OK RPC outcome."""

    def __init__(self, code: str, detail: str = ""):
        super().__init__(f"rpc {code}: {detail}" if detail else f"rpc {code}")
        self.code = code
        self.detail = detail

    @property
    def retryable(self) -> bool:
        return self.code in (Status.UNAVAILABLE, Status.DEADLINE_EXCEEDED)


# Handler signatures:
#   unary:     handler(payload) -> response payload
#   streaming: handler(payload, send) -> None, calling send(value) per frame
Handler = Callable[..., Any]


class RpcServer:
    """Serves registered methods on a node's listener."""

    def __init__(self, node: "Node", name: str = "rpc"):
        self._node = node
        self._rt: "Runtime" = node._rt
        self.name = name
        self._unary: Dict[str, Handler] = {}
        self._streaming: Dict[str, Handler] = {}
        self.served = 0
        self.errors = 0

    def register(self, method: str, handler: Handler) -> None:
        self._unary[method] = handler

    def register_streaming(self, method: str, handler: Handler) -> None:
        self._streaming[method] = handler

    def serve(self, listener) -> None:
        """Start the accept loop (returns immediately; runs on the node)."""

        def accept_loop() -> None:
            for conn in listener.accept_loop():
                self._node.track(conn)
                self._node.go(self._serve_conn, conn, name=f"{self.name}.conn")

        self._node.go(accept_loop, name=f"{self.name}.accept")

    # ------------------------------------------------------------------

    def _serve_conn(self, conn: Conn) -> None:
        for frame in conn:
            if not isinstance(frame, tuple) or len(frame) != 5 or frame[0] != "req":
                continue  # unknown frame: drop, like an HTTP/2 protocol error
            _, rid, method, payload, streaming = frame
            self._node.go(self._handle, conn, rid, method, payload, streaming,
                          name=f"{self.name}.call")

    def _handle(self, conn: Conn, rid: int, method: str, payload: Any,
                streaming: bool) -> None:
        self.served += 1
        try:
            if streaming:
                handler = self._streaming.get(method)
                if handler is None:
                    self._respond(conn, rid, Status.NOT_FOUND, method)
                    return
                handler(payload, lambda value: conn.send(("frm", rid, value)))
                conn.send(("eos", rid))
                self._respond(conn, rid, Status.OK, None)
            else:
                handler = self._unary.get(method)
                if handler is None:
                    self._respond(conn, rid, Status.NOT_FOUND, method)
                    return
                self._respond(conn, rid, Status.OK, handler(payload))
        except RpcError as err:
            self.errors += 1
            self._respond(conn, rid, err.code, err.detail)
        except (GoPanic, NetError):
            # The connection died under us (node stop, peer crash, chaos
            # close): nothing to respond on.
            self.errors += 1
        except Exception as err:  # handler bug -> INTERNAL, like gRPC
            self.errors += 1
            self._respond(conn, rid, Status.INTERNAL, repr(err))

    def _respond(self, conn: Conn, rid: int, code: str, payload: Any) -> None:
        try:
            conn.send(("res", rid, code, payload))
        except (GoPanic, NetError):
            self.errors += 1


class RpcClient:
    """One multiplexed client connection with a demultiplexing pump."""

    def __init__(self, node: "Node", addr: str, name: str = "rpc"):
        self._node = node
        self._rt: "Runtime" = node._rt
        self.addr = addr
        self.name = name
        self.conn = node.dial(addr)
        self._next_id = 0
        self._pending: Dict[int, Any] = {}   # rid -> cap-1 response channel
        self._streams: Dict[int, Any] = {}   # rid -> frame channel
        self._broken = False                 # pump saw EOF: peer gone
        node.go(self._pump, name=f"{name}.pump")

    @property
    def broken(self) -> bool:
        """True once the transport died under the client (peer crash/stop).
        Every subsequent call fails fast with UNAVAILABLE — the
        deterministic connection-reset surface redial loops key off."""
        return self._broken or self.conn.closed

    def _pump(self) -> None:
        for frame in self.conn:
            tag, rid = frame[0], frame[1]
            if tag == "res":
                ch = self._pending.pop(rid, None)
                if ch is not None:
                    # Capacity 1 and the sole sender: can never block, so
                    # an abandoned (timed-out) call never strands the pump.
                    ch.try_send((frame[2], frame[3]))
                # A non-OK status can end a stream without EOS; close the
                # frame channel so the consuming iterator terminates.
                stream_ch = self._streams.pop(rid, None)
                if stream_ch is not None and not stream_ch.closed:
                    stream_ch.close()
            elif tag == "frm":
                ch = self._streams.get(rid)
                if ch is not None:
                    try:
                        ch.send(frame[2])
                    except GoPanic:
                        # The consumer abandoned the stream and closed the
                        # frame channel (deadline, early break).  Closing
                        # wakes a pump blocked on this handoff — the
                        # Figure 1 policy extended to streams: an abandoned
                        # consumer never strands the pump.
                        pass
            elif tag == "eos":
                ch = self._streams.pop(rid, None)
                if ch is not None and not ch.closed:
                    ch.close()
        # EOF: the peer is gone (crash, stop, reset).  Mark the client
        # broken so the next call/stream fails immediately instead of
        # waiting out its deadline, then fail everything outstanding.
        self._broken = True
        for rid, ch in list(self._pending.items()):
            if not ch.closed:
                ch.close()
        self._pending.clear()
        for rid, ch in list(self._streams.items()):
            if not ch.closed:
                ch.close()
        self._streams.clear()

    # ------------------------------------------------------------------

    def call(self, method: str, payload: Any = None,
             timeout: Optional[float] = None) -> Any:
        """Unary call.  Raises :class:`RpcError` on any non-OK outcome."""
        if self.broken:
            raise RpcError(Status.UNAVAILABLE, "connection reset by peer")
        rid = self._next_id
        self._next_id += 1
        ch = self._rt.make_chan(1, name=f"{self.name}.resp#{rid}")
        self._pending[rid] = ch
        try:
            self.conn.send(("req", rid, method, payload, False))
        except (GoPanic, NetError):
            self._pending.pop(rid, None)
            raise RpcError(Status.UNAVAILABLE, "connection closed")
        if timeout is None:
            result, ok = ch.recv_ok()
        else:
            timer = self._rt.new_timer(timeout)
            index, value, ok = self._rt.select(recv_case(ch),
                                               recv_case(timer.c))
            if index == 1:
                self._pending.pop(rid, None)
                raise RpcError(Status.DEADLINE_EXCEEDED,
                               f"{method} after {timeout:g}s")
            timer.stop()
            result = value
        if not ok:
            raise RpcError(Status.UNAVAILABLE, "connection closed")
        code, response = result
        if code != Status.OK:
            raise RpcError(code, str(response))
        return response

    def call_with_retry(self, method: str, payload: Any = None,
                        timeout: Optional[float] = 1.0, attempts: int = 4,
                        backoff: Optional[Backoff] = None) -> Any:
        """Unary call retried on retryable statuses with seeded backoff."""
        policy = backoff if backoff is not None else Backoff(
            self._rt, name=f"{self.name}.{method}")
        last: Optional[RpcError] = None
        for attempt in range(attempts):
            try:
                return self.call(method, payload, timeout=timeout)
            except RpcError as err:
                if not err.retryable:
                    raise
                last = err
                if attempt + 1 < attempts:
                    policy.sleep()
        assert last is not None
        raise last

    def stream(self, method: str, payload: Any = None, buffer: int = 16,
               timeout: Optional[float] = None) -> Iterator[Any]:
        """Server-streaming call: iterate response frames until EOS.

        ``timeout`` bounds the wait for *each* frame (and the trailing
        status) on the virtual clock, like a per-message gRPC deadline —
        the tool that keeps stream consumers live over partitioned or
        lossy links.  Raises :class:`RpcError` after the stream if it
        ended non-OK (e.g. the connection dropped mid-stream ->
        UNAVAILABLE, a stalled link -> DEADLINE_EXCEEDED).
        """
        if self.broken:
            raise RpcError(Status.UNAVAILABLE, "connection reset by peer")
        rid = self._next_id
        self._next_id += 1
        frames = self._rt.make_chan(buffer, name=f"{self.name}.stream#{rid}")
        status_ch = self._rt.make_chan(1, name=f"{self.name}.status#{rid}")
        self._streams[rid] = frames
        self._pending[rid] = status_ch
        try:
            self.conn.send(("req", rid, method, payload, True))
        except (GoPanic, NetError):
            self._streams.pop(rid, None)
            self._pending.pop(rid, None)
            raise RpcError(Status.UNAVAILABLE, "connection closed")
        try:
            while True:
                if timeout is None:
                    value, ok = frames.recv_ok()
                else:
                    timer = self._rt.new_timer(timeout)
                    index, value, ok = self._rt.select(recv_case(frames),
                                                       recv_case(timer.c))
                    if index == 1:
                        raise RpcError(Status.DEADLINE_EXCEEDED,
                                       f"{method} stream after {timeout:g}s")
                    timer.stop()
                if not ok:
                    break
                yield value
        finally:
            # Deterministic abandonment: drop our registration and close
            # the frame channel so a pump mid-handoff is woken, not
            # stranded (its send panics; the pump swallows it).
            self._streams.pop(rid, None)
            if not frames.closed:
                frames.close()
        if timeout is None:
            result, ok = status_ch.recv_ok()
        else:
            timer = self._rt.new_timer(timeout)
            index, result, ok = self._rt.select(recv_case(status_ch),
                                                recv_case(timer.c))
            if index == 1:
                self._pending.pop(rid, None)
                raise RpcError(Status.DEADLINE_EXCEEDED,
                               f"{method} status after {timeout:g}s")
            timer.stop()
        if not ok:
            raise RpcError(Status.UNAVAILABLE, "connection closed mid-stream")
        code, response = result
        if code != Status.OK:
            raise RpcError(code, str(response))

    def close(self) -> None:
        """Close the underlying connection (pump exits, callers fail)."""
        self.conn.shutdown()


def connect_with_retry(node: "Node", addr: str, name: str = "rpc",
                       attempts: int = 6,
                       backoff: Optional[Backoff] = None) -> RpcClient:
    """Dial until the listener is up/reachable, with seeded backoff —
    the redial loop every resilient client in the mini-apps uses."""
    policy = backoff if backoff is not None else Backoff(
        node._rt, name=f"{name}.dial")
    last: Optional[NetError] = None
    for attempt in range(attempts):
        try:
            return RpcClient(node, addr, name=name)
        except NetError as err:
            last = err
            if attempt + 1 < attempts:
                policy.sleep()
    assert last is not None
    raise last
