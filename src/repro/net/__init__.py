"""repro.net — a deterministic simulated network on the runtime.

The paper's subject systems (Docker, Kubernetes, etcd, CockroachDB,
gRPC-Go, BoltDB) are distributed systems; their message-passing bugs most
often manifest *across* RPC boundaries under load.  This package gives the
mini-apps that boundary without giving up determinism: a Go-``net``-shaped
surface (``Listener``/``Conn``/``dial``) built on channels and the virtual
clock, a ``Node`` abstraction (named goroutine group with a lifecycle),
a small gRPC-like RPC layer, and a virtual-time load generator.

Layering::

    fabric.Network      named nodes, per-link latency, partitions, loss
    conn.Conn/Listener  message-oriented endpoints, Go close semantics
    node.Node           goroutine group + crash/restart lifecycle per machine
    disk.Disk           per-node WAL with explicit fsync (crash loses tail)
    supervise.*         restart policies bringing crashed nodes back
    rpc.RpcServer/...   unary + server-streaming calls over one Conn
    load.LoadGen        N seeded clients, latency histograms

Everything is deterministic: same ``(seed, topology, FaultPlan)`` means
the same schedule fingerprint and a byte-identical
``Network.format_message_log()``.  See docs/NETWORK.md.
"""

from .conn import Conn, ConnReset, Listener, dial
from .disk import Disk
from .fabric import Link, NetError, Network
from .load import LATENCY_BOUNDS, LoadGen, LoadReport, echo_load_program
from .node import Node
from .rpc import (
    RpcClient,
    RpcError,
    RpcServer,
    Status,
    connect_with_retry,
)
from .supervise import RestartPolicy, Supervisor

__all__ = [
    "Conn",
    "ConnReset",
    "Disk",
    "LATENCY_BOUNDS",
    "Link",
    "Listener",
    "LoadGen",
    "LoadReport",
    "NetError",
    "Network",
    "Node",
    "RestartPolicy",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "Status",
    "Supervisor",
    "connect_with_retry",
    "dial",
    "echo_load_program",
]
