"""Per-node durable storage: a write-ahead log with explicit fsync.

The paper's crash-stop faults only tell half of the recovery story: what a
restarted process finds on disk decides whether the system converges again.
:class:`Disk` models that boundary on the virtual clock with the two-state
semantics real filesystems give you:

* :meth:`append` adds a record to the **volatile** WAL tail — acknowledged
  by the OS, not yet on the platter;
* :meth:`fsync` makes every volatile record **durable**, optionally
  spending virtual time (the device's sync latency), which opens the exact
  window crash faults exploit: a node killed between ``append`` and the
  completion of ``fsync`` deterministically loses the un-synced suffix;
* :meth:`crash` discards the volatile tail (called by ``Node.crash`` and
  the ``crash``/``crash_restart`` fault actions);
* :meth:`replay` returns the durable records for recovery.

A disk lives on the :class:`repro.net.Network` keyed by node name, so it
survives the node object's restart lifecycle — the one piece of a machine
that persists across a crash.
"""

from __future__ import annotations

from typing import Any, Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime


class Disk:
    """One node's durable store: a WAL split into durable + volatile parts."""

    def __init__(self, rt: "Runtime", node_name: str, *,
                 fsync_latency: float = 0.0):
        self._rt = rt
        self.node_name = node_name
        #: Virtual seconds one fsync spends on the clock.  Non-zero latency
        #: requires goroutine context (it sleeps) and widens the loss window.
        self.fsync_latency = fsync_latency
        self._durable: List[Any] = []
        self._volatile: List[Any] = []
        self.appends = 0
        self.syncs = 0
        self.lost = 0        # records discarded by crashes, cumulative
        self.crashes = 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def append(self, record: Any) -> int:
        """Append one record to the volatile WAL tail; returns its index."""
        self._volatile.append(record)
        self.appends += 1
        return len(self._durable) + len(self._volatile) - 1

    def fsync(self) -> int:
        """Make every volatile record durable; returns how many were synced.

        With a non-zero ``fsync_latency`` the records become durable only
        *after* the virtual-time sleep — a crash landing mid-sync loses
        them, exactly like power failing before the device acknowledges.
        """
        if self.fsync_latency > 0:
            self._rt.sleep(self.fsync_latency)
        synced = len(self._volatile)
        if synced:
            self._durable.extend(self._volatile)
            self._volatile.clear()
        self.syncs += 1
        return synced

    def write(self, record: Any) -> int:
        """``append`` + ``fsync`` in one call (synchronous-WAL discipline)."""
        index = self.append(record)
        self.fsync()
        return index

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> int:
        """Discard the un-synced tail; returns how many records were lost."""
        lost = len(self._volatile)
        self._volatile.clear()
        self.lost += lost
        self.crashes += 1
        return lost

    def replay(self) -> List[Any]:
        """The durable records, oldest first — what a restart recovers from."""
        return list(self._durable)

    # ------------------------------------------------------------------

    @property
    def durable_length(self) -> int:
        return len(self._durable)

    @property
    def pending(self) -> int:
        """Volatile records that a crash right now would lose."""
        return len(self._volatile)

    def stats(self) -> Dict[str, int]:
        return {
            "durable": len(self._durable),
            "pending": len(self._volatile),
            "appends": self.appends,
            "syncs": self.syncs,
            "lost": self.lost,
            "crashes": self.crashes,
        }

    def __repr__(self) -> str:
        return (f"<Disk {self.node_name} durable={len(self._durable)} "
                f"pending={len(self._volatile)} lost={self.lost}>")
