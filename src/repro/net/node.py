"""Nodes: named goroutine groups with a lifecycle.

A :class:`Node` is one simulated machine on a fabric: it owns a name,
a cancellable context, a waitgroup covering every goroutine it spawns,
and the listeners/connections it opened.  Goroutines spawned through
``node.go`` are named ``"<node>/<task>"``, so fault plans can target a
whole machine with a glob (``kill`` with target ``"n2/*"`` crashes node
``n2``'s handlers) and profiles group by machine for free.

``node.stop()`` is the orderly shutdown the paper's leaked handlers never
get: cancel the context, close listeners and connections (unblocking every
reader with EOF), then wait for the goroutine group to drain.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

from .conn import Conn, Listener, dial as _dial
from .fabric import NetError

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime
    from .fabric import Network


class Node:
    """One named participant on a :class:`repro.net.Network`."""

    def __init__(self, net: "Network", name: str):
        self._net = net
        self._rt: "Runtime" = net._rt
        self.name = name
        net.register(self)
        self.ctx, self.cancel = self._rt.with_cancel(self._rt.background())
        self.wg = self._rt.waitgroup(name=f"{name}.wg")
        self._listeners: List[Listener] = []
        self._conns: List[Conn] = []
        self.stopped = False

    # ------------------------------------------------------------------
    # Goroutines
    # ------------------------------------------------------------------

    def go(self, fn: Callable[..., Any], *args: Any,
           name: Optional[str] = None):
        """Spawn a goroutine owned by this node (tracked by its waitgroup,
        named ``"<node>/<task>"``)."""
        label = f"{self.name}/{name or getattr(fn, '__name__', 'task')}"
        self.wg.add(1)

        def task() -> None:
            try:
                fn(*args)
            finally:
                self.wg.done()

        return self._rt.go(task, name=label)

    @property
    def done(self):
        """The node's cancellation channel (for selects in serve loops)."""
        return self.ctx.done()

    @property
    def stopping(self) -> bool:
        return self.ctx.err() is not None

    # ------------------------------------------------------------------
    # Network endpoints
    # ------------------------------------------------------------------

    def addr(self, port: Any) -> str:
        return f"{self.name}:{port}"

    def listen(self, port: Any, backlog: int = 16) -> Listener:
        """Bind ``"<node>:<port>"`` and start accepting."""
        if self.stopped:
            raise NetError(f"listen on stopped node {self.name}")
        listener = Listener(self._rt, self._net, self.name,
                            self.addr(port), backlog=backlog)
        self._listeners.append(listener)
        return listener

    def dial(self, addr: str) -> Conn:
        """Connect to ``addr`` (``"node:port"``) from this node."""
        if self.stopped:
            raise NetError(f"dial from stopped node {self.name}")
        conn = _dial(self._net, self.name, addr)
        self._conns.append(conn)
        return conn

    def track(self, conn: Conn) -> Conn:
        """Adopt a connection (e.g. an accepted one) into this node's
        lifecycle so ``stop()`` closes it."""
        self._conns.append(conn)
        return conn

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def stop(self, wait: bool = True) -> None:
        """Orderly shutdown: cancel, close endpoints, drain goroutines."""
        if self.stopped:
            return
        self.stopped = True
        self.cancel()
        for listener in self._listeners:
            listener.close()
        for conn in self._conns:
            conn.shutdown()
        if wait:
            self.wg.wait()

    def __repr__(self) -> str:
        state = "stopped" if self.stopped else "up"
        return f"<Node {self.name} {state} conns={len(self._conns)}>"
