"""Nodes: named goroutine groups with a lifecycle.

A :class:`Node` is one simulated machine on a fabric: it owns a name,
a cancellable context, a waitgroup covering every goroutine it spawns,
and the listeners/connections it opened.  Goroutines spawned through
``node.go`` are named ``"<node>/<task>"``, so fault plans can target a
whole machine with a glob (``kill`` with target ``"n2/*"`` crashes node
``n2``'s handlers) and profiles group by machine for free.

``node.stop()`` is the orderly shutdown the paper's leaked handlers never
get: cancel the context, close listeners and connections (unblocking every
reader with EOF), then wait for the goroutine group to drain.

``node.crash()`` is the disorderly one: every goroutine owned by the node
is killed mid-flight, endpoints close abruptly (peers observe a connection
reset, not a graceful EOF), and un-fsynced writes on the node's
:class:`repro.net.disk.Disk` are discarded.  ``node.restart()`` then brings
the machine back with a fresh context, waitgroup and incarnation number and
runs the ``on_restart`` recovery hook in a new boot goroutine — state comes
back only through the WAL the disk kept.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

from ..runtime.goroutine import GState
from .conn import Conn, Listener, dial as _dial
from .fabric import NetError

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime
    from .fabric import Network


class Node:
    """One named participant on a :class:`repro.net.Network`."""

    def __init__(self, net: "Network", name: str):
        self._net = net
        self._rt: "Runtime" = net._rt
        self.name = name
        net.register(self)
        self.ctx, self.cancel = self._rt.with_cancel(self._rt.background())
        self.wg = self._rt.waitgroup(name=f"{name}.wg")
        self._listeners: List[Listener] = []
        self._conns: List[Conn] = []
        self.stopped = False
        self.crashed = False
        #: Bumped on every restart; goroutines and waitgroups of a previous
        #: incarnation are abandoned, never reused.
        self.incarnation = 0
        #: Recovery hook: called as ``on_restart(node)`` in a fresh boot
        #: goroutine after :meth:`restart` — replay the WAL, rebind
        #: listeners, respawn serve loops.
        self.on_restart: Optional[Callable[["Node"], None]] = None

    # ------------------------------------------------------------------
    # Goroutines
    # ------------------------------------------------------------------

    def go(self, fn: Callable[..., Any], *args: Any,
           name: Optional[str] = None):
        """Spawn a goroutine owned by this node (tracked by its waitgroup,
        named ``"<node>/<task>"``)."""
        if self.stopped:
            raise NetError(f"go on stopped node {self.name}")
        label = f"{self.name}/{name or getattr(fn, '__name__', 'task')}"
        # Pin this incarnation's waitgroup: a goroutine killed by crash()
        # unwinds after restart() has already swapped in a fresh one, and
        # must settle its debt with the group it was counted in.
        wg = self.wg
        wg.add(1)

        def task() -> None:
            try:
                fn(*args)
            finally:
                wg.done()

        return self._rt.go(task, name=label)

    @property
    def done(self):
        """The node's cancellation channel (for selects in serve loops)."""
        return self.ctx.done()

    @property
    def stopping(self) -> bool:
        return self.ctx.err() is not None

    # ------------------------------------------------------------------
    # Network endpoints
    # ------------------------------------------------------------------

    def addr(self, port: Any) -> str:
        return f"{self.name}:{port}"

    def listen(self, port: Any, backlog: int = 16) -> Listener:
        """Bind ``"<node>:<port>"`` and start accepting."""
        if self.stopped:
            raise NetError(f"listen on stopped node {self.name}")
        listener = Listener(self._rt, self._net, self.name,
                            self.addr(port), backlog=backlog)
        self._listeners.append(listener)
        return listener

    def dial(self, addr: str) -> Conn:
        """Connect to ``addr`` (``"node:port"``) from this node."""
        if self.stopped:
            raise NetError(f"dial from stopped node {self.name}")
        conn = _dial(self._net, self.name, addr)
        self._conns.append(conn)
        return conn

    def track(self, conn: Conn) -> Conn:
        """Adopt a connection (e.g. an accepted one) into this node's
        lifecycle so ``stop()`` closes it."""
        self._conns.append(conn)
        return conn

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def stop(self, wait: bool = True) -> None:
        """Orderly shutdown: cancel, close endpoints, drain goroutines."""
        if self.stopped:
            return
        self.stopped = True
        self.cancel()
        for listener in self._listeners:
            listener.close()
        for conn in self._conns:
            conn.shutdown()
        if wait:
            self.wg.wait()

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------

    def disk(self, *, fsync_latency: float = 0.0):
        """This machine's durable :class:`repro.net.disk.Disk` (created on
        first access; survives crash/restart)."""
        return self._net.disk(self.name, fsync_latency=fsync_latency)

    def crash(self) -> Optional[int]:
        """Crash-stop: kill every owned goroutine, abort endpoints, discard
        un-fsynced disk writes.  Returns the number of WAL records lost, or
        ``None`` if the node was already down.

        Safe to call from scheduler context (fault injector, timers): it
        never blocks — killed goroutines unwind at their next resume and
        the old waitgroup drains as they do.
        """
        if self.stopped:
            return None
        self.stopped = True
        self.crashed = True
        sched = self._rt.sched
        prefix = f"{self.name}/"
        for g in sched.goroutines:
            if (g.state in (GState.RUNNABLE, GState.BLOCKED)
                    and (g.name or "").startswith(prefix)):
                sched.inject_kill(g)
        for listener in self._listeners:
            listener.close()
        for conn in self._conns:
            conn.shutdown()
        self.cancel()
        lost = (self._net.disk(self.name).crash()
                if self._net.has_disk(self.name) else 0)
        self._net.node_crashed(self, lost)
        return lost

    def restart(self) -> bool:
        """Bring a stopped/crashed node back up with a fresh incarnation.

        Resets the lifecycle (new context, waitgroup, empty endpoint
        lists) and, when an ``on_restart`` hook is set, spawns it as the
        new incarnation's boot goroutine — recovery (WAL replay, listener
        rebinding, serve loops) runs there, in goroutine context, whether
        the restart came from a supervisor, a fault action or a timer.
        Returns False when the node is already up.
        """
        if not self.stopped:
            return False
        self.stopped = False
        self.crashed = False
        self.incarnation += 1
        self.ctx, self.cancel = self._rt.with_cancel(self._rt.background())
        self.wg = self._rt.waitgroup(
            name=f"{self.name}.wg#{self.incarnation}")
        self._listeners = []
        self._conns = []
        self._net.node_restarted(self)
        if self.on_restart is not None:
            hook = self.on_restart
            self.go(lambda: hook(self), name="boot")
        return True

    def __repr__(self) -> str:
        state = ("crashed" if self.crashed
                 else "stopped" if self.stopped else "up")
        return f"<Node {self.name} {state} conns={len(self._conns)}>"
