"""A virtual-time load generator: N clients, seeded arrivals, histograms.

Because time is simulated, "load" costs scheduler steps, not wall-clock
waiting: a hundred thousand requests with realistic think times complete
in seconds of real time while covering hours of virtual time.  Arrival
processes are per-client seeded RNG streams (Poisson or uniform), so the
offered load — like everything else — is a pure function of the seed.

Latencies land in a :class:`repro.observe.metrics.MetricsRegistry`
histogram (pass ``registry=observer.metrics`` to export them with the
run's other metrics); the report estimates percentiles from the bucket
bounds, the way Prometheus does.
"""

from __future__ import annotations

import json
import random
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from ..observe.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime

#: Histogram bucket upper bounds for virtual-seconds latencies.
LATENCY_BOUNDS = (0.00025, 0.0005, 0.001, 0.002, 0.004, 0.008, 0.016,
                  0.032, 0.064, 0.128, 0.256, 0.512, 1.024, 2.048)


class LoadReport:
    """Aggregated outcome of one load run (JSON-stable)."""

    def __init__(self, name: str, clients: int, requests: int, ok: int,
                 errors: int, error_kinds: Dict[str, int],
                 duration: float, latency: Dict[str, Any]):
        self.name = name
        self.clients = clients
        self.requests = requests
        self.ok = ok
        self.errors = errors
        self.error_kinds = error_kinds
        self.duration = duration          # virtual seconds
        self.latency = latency            # summary incl. percentile bounds

    @property
    def throughput(self) -> float:
        """Requests per virtual second."""
        return self.requests / self.duration if self.duration else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "clients": self.clients,
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "error_kinds": dict(sorted(self.error_kinds.items())),
            "virtual_s": round(self.duration, 6),
            "rps_virtual": round(self.throughput, 1),
            "latency": self.latency,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        lat = self.latency
        lines = [
            f"load {self.name}: {self.requests} requests from "
            f"{self.clients} client(s) over {self.duration:.3f} virtual s "
            f"({self.throughput:,.0f} req/s)",
            f"  ok={self.ok} errors={self.errors}"
            + (f" {self.error_kinds}" if self.error_kinds else ""),
            f"  latency mean={lat['mean']*1e3:.3f}ms "
            f"p50<={lat['p50']*1e3:.3f}ms p90<={lat['p90']*1e3:.3f}ms "
            f"p99<={lat['p99']*1e3:.3f}ms max={lat['max']*1e3:.3f}ms",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<LoadReport {self.name!r} requests={self.requests} "
                f"ok={self.ok} errors={self.errors}>")


def _percentile(bounds, counts, total: int, q: float,
                fallback: float = 0.0) -> float:
    """Upper-bound percentile estimate from histogram buckets."""
    if total <= 0:
        return 0.0
    target = q * total
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        if cumulative >= target:
            return bound
    return fallback  # landed in the overflow bucket: report the observed max


class LoadGen:
    """Drive a request function from N simulated clients.

    Args:
        rt: the runtime (call inside a simulated program).
        request: ``request(ctx, i)`` issues one request; ``ctx`` is what
            ``setup(client_index)`` returned (or the client index).
            Raising counts as an error (keyed by exception class name).
        clients: number of concurrent simulated clients.
        requests: requests **per client**.
        rate: mean request rate per client (requests per virtual second);
            None = closed loop, each client fires as fast as replies come.
        arrival: ``"poisson"`` (exponential gaps) or ``"uniform"``.
        setup / teardown: per-client hooks run inside the client goroutine
            (e.g. dial a connection / close it).
        seed: arrival-process seed (default: the run's scheduler seed).
        registry: metrics registry to record into (default: a fresh one);
            pass ``observer.metrics`` to export with the run's metrics.
        name: metric name prefix and goroutine name stem.
    """

    def __init__(self, rt: "Runtime",
                 request: Callable[[Any, int], Any], *,
                 clients: int = 4, requests: int = 100,
                 rate: Optional[float] = None, arrival: str = "poisson",
                 setup: Optional[Callable[[int], Any]] = None,
                 teardown: Optional[Callable[[Any], None]] = None,
                 seed: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None,
                 name: str = "load"):
        if arrival not in ("poisson", "uniform"):
            raise ValueError(f"unknown arrival process {arrival!r}")
        self._rt = rt
        self._request = request
        self.clients = clients
        self.requests = requests
        self.rate = rate
        self.arrival = arrival
        self._setup = setup
        self._teardown = teardown
        self.seed = rt.sched.seed if seed is None else seed
        self.registry = registry if registry is not None else MetricsRegistry()
        self.name = name

    def _client(self, index: int) -> None:
        rt = self._rt
        rng = random.Random(self.seed * 1_000_003 + index * 7919 + 13)
        issued = self.registry.counter(f"{self.name}.requests")
        ok = self.registry.counter(f"{self.name}.ok")
        errors = self.registry.counter(f"{self.name}.errors")
        latency = self.registry.histogram(f"{self.name}.latency_s",
                                          bounds=LATENCY_BOUNDS)
        ctx = self._setup(index) if self._setup is not None else index
        try:
            for i in range(self.requests):
                if self.rate:
                    gap = (rng.expovariate(self.rate)
                           if self.arrival == "poisson" else 1.0 / self.rate)
                    rt.sleep(gap)
                issued.inc()
                start = rt.now()
                try:
                    self._request(ctx, i)
                except Exception as err:
                    errors.inc()
                    self.registry.counter(
                        f"{self.name}.error[{type(err).__name__}]").inc()
                else:
                    ok.inc()
                latency.observe(rt.now() - start)
        finally:
            if self._teardown is not None:
                self._teardown(ctx)

    def run(self) -> LoadReport:
        """Run all clients to completion and aggregate the report."""
        rt = self._rt
        start = rt.now()
        wg = rt.waitgroup(name=f"{self.name}.wg")
        for index in range(self.clients):
            wg.add(1)

            def client(idx: int = index) -> None:
                try:
                    self._client(idx)
                finally:
                    wg.done()

            rt.go(client, name=f"{self.name}.client{index}")
        wg.wait()
        duration = rt.now() - start

        hist = self.registry.histogram(f"{self.name}.latency_s",
                                       bounds=LATENCY_BOUNDS)
        total = hist.count
        top = hist.max if hist.max is not None else 0.0
        latency = {
            "count": total,
            "mean": round(hist.mean, 9),
            "max": top,
            "p50": _percentile(hist.bounds, hist.bucket_counts, total, 0.50, top),
            "p90": _percentile(hist.bounds, hist.bucket_counts, total, 0.90, top),
            "p99": _percentile(hist.bounds, hist.bucket_counts, total, 0.99, top),
        }
        error_kinds = {
            key[len(self.name) + 7:-1]: self.registry[key].value
            for key in self.registry.names()
            if key.startswith(f"{self.name}.error[")
        }
        return LoadReport(
            name=self.name,
            clients=self.clients,
            requests=self.registry.counter(f"{self.name}.requests").value,
            ok=self.registry.counter(f"{self.name}.ok").value,
            errors=self.registry.counter(f"{self.name}.errors").value,
            error_kinds=error_kinds,
            duration=duration,
            latency=latency,
        )


def echo_load_program(rt: "Runtime", *, clients: int = 8,
                      requests: int = 100, rate: Optional[float] = 200.0,
                      arrival: str = "poisson",
                      registry: Optional[MetricsRegistry] = None,
                      log_messages: bool = False) -> Dict[str, Any]:
    """A self-contained echo workload: one server node, N dialing clients.

    The standard loadgen target for the CLI, benchmarks and tests.  Returns
    the load report as a plain dict (picklable for seed sweeps).
    """
    from .node import Node

    net = rt.network(name="loadnet", log_messages=log_messages)
    server = Node(net, "server")
    # Backlog sized to the fleet: every client may dial in the same
    # virtual instant, before the acceptor gets a single step.
    listener = server.listen("echo", backlog=max(16, clients))

    def serve(conn) -> None:
        for payload in conn:
            conn.send(payload)

    def acceptor() -> None:
        for conn in listener.accept_loop():
            server.track(conn)
            server.go(serve, conn, name="echo")

    server.go(acceptor, name="accept")

    def setup(index: int):
        client = Node(net, f"client{index}")
        return client.dial(server.addr("echo"))

    def request(conn, i: int) -> None:
        conn.send(i)
        payload, ok = conn.recv_ok()
        if not ok or payload != i:
            raise RuntimeError(f"echo mismatch: sent {i}, got {payload!r}")

    def teardown(conn) -> None:
        conn.shutdown()

    gen = LoadGen(rt, request, clients=clients, requests=requests,
                  rate=rate, arrival=arrival, setup=setup, teardown=teardown,
                  registry=registry, name="load")
    report = gen.run()
    server.stop()
    result = report.to_dict()
    result["net"] = dict(net.stats)
    return result
