"""Supervision: restart policies that bring crashed nodes back.

The paper's blocking bugs are liveness failures — a dead goroutine's peers
wait forever.  At the cluster level the analogue is a crashed *machine*:
without supervision every ``crash`` fault is crash-stop and the system can
only degrade.  A :class:`Supervisor` watches nodes on a fabric and calls
:meth:`repro.net.Node.restart` on the crashed ones according to a
:class:`RestartPolicy`, turning the scorecard question from "did it
survive?" into "did it *recover*?".

Policies mirror Erlang/OTP and Kubernetes restart semantics:

* :meth:`RestartPolicy.one_shot` — restart once, then give up;
* :meth:`RestartPolicy.always` — restart every crash after a fixed delay;
* :meth:`RestartPolicy.backoff_capped` — exponentially growing delay,
  capped attempts (CrashLoopBackOff with a budget).

Everything runs on the virtual clock from one monitor goroutine, so
supervision adds no nondeterminism: the same ``(seed, plan)`` produces the
same crash, the same detection step and the same restart time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from ..chan.cases import recv as recv_case

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime
    from .node import Node

__all__ = ["RestartPolicy", "Supervisor"]


@dataclass(frozen=True)
class RestartPolicy:
    """When and how often a supervisor restarts a crashed node.

    Attributes:
        max_restarts: restarts allowed per node; ``None`` = unlimited.
        delay: virtual seconds from crash detection to restart.
        factor: per-restart delay multiplier (1.0 = fixed delay).
        max_delay: ceiling for the grown delay.
    """

    max_restarts: Optional[int] = None
    delay: float = 0.05
    factor: float = 1.0
    max_delay: float = 1.0

    @classmethod
    def one_shot(cls, delay: float = 0.05) -> "RestartPolicy":
        """Restart a node at most once (transient-fault recovery)."""
        return cls(max_restarts=1, delay=delay)

    @classmethod
    def always(cls, delay: float = 0.05) -> "RestartPolicy":
        """Restart every crash after a fixed delay (OTP ``permanent``)."""
        return cls(max_restarts=None, delay=delay)

    @classmethod
    def backoff_capped(cls, max_restarts: int = 4, delay: float = 0.05,
                       factor: float = 2.0, max_delay: float = 1.0
                       ) -> "RestartPolicy":
        """Exponential backoff between restarts, bounded attempt budget."""
        return cls(max_restarts=max_restarts, delay=delay, factor=factor,
                   max_delay=max_delay)

    def delay_for(self, restart_index: int) -> float:
        """The delay before restart number ``restart_index`` (0-based)."""
        return min(self.delay * (self.factor ** restart_index),
                   self.max_delay)

    def exhausted(self, restarts_done: int) -> bool:
        return (self.max_restarts is not None
                and restarts_done >= self.max_restarts)


class Supervisor:
    """One monitor goroutine restarting crashed nodes per policy.

    Register nodes with :meth:`watch`; call :meth:`stop` before the
    workload returns (the monitor is a plain runtime goroutine and would
    otherwise leak).  Restart counts and given-up nodes are exposed for
    scorecards and convergence checkers.
    """

    def __init__(self, rt: "Runtime", policy: Optional[RestartPolicy] = None,
                 poll: float = 0.05, name: str = "supervisor"):
        self._rt = rt
        self.policy = policy if policy is not None else RestartPolicy.always()
        self.poll = poll
        self.name = name
        self._nodes: List["Node"] = []
        self.restarts: Dict[str, int] = {}
        self.gave_up: List[str] = []
        self._stop = rt.make_chan(0, name=f"{name}.stop")
        self._stopped = False
        rt.go(self._monitor, name=f"{name}/monitor")

    def watch(self, node: "Node") -> "Supervisor":
        """Supervise ``node`` (chainable)."""
        self._nodes.append(node)
        self.restarts.setdefault(node.name, 0)
        return self

    # ------------------------------------------------------------------

    def _monitor(self) -> None:
        while True:
            timer = self._rt.new_timer(self.poll)
            index, _, _ = self._rt.select(recv_case(self._stop),
                                          recv_case(timer.c))
            if index == 0:
                timer.stop()
                return
            for node in self._nodes:
                if self._stopped:
                    return
                if not node.crashed or node.name in self.gave_up:
                    continue
                done = self.restarts[node.name]
                if self.policy.exhausted(done):
                    self.gave_up.append(node.name)
                    continue
                self._rt.sleep(self.policy.delay_for(done))
                # A fault action (crash_restart) may have revived the node
                # while we waited; its restart does not consume our budget.
                if self._stopped or not node.crashed:
                    continue
                if node.restart():
                    self.restarts[node.name] = done + 1

    # ------------------------------------------------------------------

    @property
    def total_restarts(self) -> int:
        return sum(self.restarts.values())

    def stop(self) -> None:
        """Stop the monitor goroutine.  Idempotent."""
        if not self._stopped:
            self._stopped = True
            self._stop.close()

    def __repr__(self) -> str:
        return (f"<Supervisor {self.name} nodes={len(self._nodes)} "
                f"restarts={self.total_restarts} gave_up={self.gave_up}>")
