"""Connections, listeners and dialing — the Go ``net`` surface.

A :class:`Conn` is a message-oriented duplex connection: two directed
pipes, one per direction.  Sends never block (the fabric buffers messages
in flight, like kernel socket buffers); receives block until a message
lands, the peer closes (EOF), or the local end is closed.  Close semantics
follow Go's sharp edges deliberately, because the paper's bugs live there:

* ``send`` on a closed connection **panics** (the Go ``send on closed
  channel`` equivalent at the network layer);
* ``close`` twice **panics** (``close of closed connection``);
* ``close_write`` half-closes: the peer drains in-flight messages and then
  sees EOF, while this side can keep receiving;
* ``send`` to a peer that crashed or fully closed raises
  :class:`ConnReset` — an error, not a panic, because a remote reset is an
  environmental failure the program is expected to handle (redial), unlike
  the local programming error of writing to a connection *you* closed.

A :class:`Listener` is backed by a real simulated channel, so a full
accept backlog refuses connections and closing the listener wakes pending
accepts — the same primitives the mini-apps are built from.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, Optional, Tuple, TYPE_CHECKING

from ..runtime.errors import GoPanic
from ..runtime.trace import EventKind
from .fabric import NetError

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime
    from .fabric import Network


class ConnReset(NetError):
    """The peer closed or crashed: deterministic ECONNRESET, raised on the
    next send instead of letting writes vanish into an aborted pipe."""


class _Pipe:
    """One direction of a connection: src node -> dst node."""

    __slots__ = ("src", "dst", "obj", "queue", "waiters", "closed",
                 "aborted", "in_flight", "last_deliver", "_sched")

    def __init__(self, rt: "Runtime", src: str, dst: str):
        self.src = src
        self.dst = dst
        self.obj = rt.new_obj_id()
        self.queue: deque = deque()       # (seq, payload, sent_at)
        self.waiters: deque = deque()     # goroutines parked in recv
        self.closed = False               # sender closed (EOF after drain)
        self.aborted = False              # receiver closed (discard arrivals)
        self.in_flight = 0
        self.last_deliver = 0.0           # FIFO watermark for the fabric
        self._sched = rt.sched

    def wake_all(self) -> None:
        while self.waiters:
            self._sched.ready(self.waiters.popleft())


class Conn:
    """A duplex message connection between two named nodes."""

    def __init__(self, rt: "Runtime", net: "Network", local: str, remote: str,
                 out: _Pipe, in_: _Pipe):
        self._rt = rt
        self._net = net
        self._sched = rt.sched
        self.local = local
        self.remote = remote
        self._out = out
        self._in = in_
        self._closed = False

    @classmethod
    def pair(cls, rt: "Runtime", net: "Network", a: str, b: str
             ) -> Tuple["Conn", "Conn"]:
        """Two connected endpoints: (conn at ``a``, conn at ``b``)."""
        ab = _Pipe(rt, a, b)
        ba = _Pipe(rt, b, a)
        return (cls(rt, net, a, b, out=ab, in_=ba),
                cls(rt, net, b, a, out=ba, in_=ab))

    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def write_closed(self) -> bool:
        return self._out.closed

    @property
    def peer_reset(self) -> bool:
        """True once the peer fully closed (or crashed): its read side is
        aborted, so anything sent from here would be discarded on arrival."""
        return self._out.aborted

    def send(self, payload: Any) -> None:
        """Queue one message for delivery.  Never blocks; panics if the
        write side is closed locally (Go's send-on-closed equivalent) and
        raises :class:`ConnReset` if the *peer* is gone."""
        self._sched.schedule_point()
        if self._out.closed:
            raise GoPanic("send on closed connection")
        if self._out.aborted:
            raise ConnReset(
                f"connection reset by peer: {self.local}->{self.remote}")
        self._net.transmit(self._out, payload)

    def recv(self) -> Any:
        """Receive the next message; returns None at EOF (like a zero
        value).  Prefer :meth:`recv_ok` when None is a real payload."""
        return self.recv_ok()[0]

    def recv_ok(self) -> Tuple[Any, bool]:
        """Receive the next message as ``(payload, ok)``.

        ``ok`` is False at EOF: the peer closed (or this side did) and
        everything in flight has drained — the comma-ok idiom.
        """
        sched = self._sched
        sched.schedule_point()
        pipe = self._in
        me = sched.current
        while True:
            if pipe.queue:
                seq, payload, sent_at = pipe.queue.popleft()
                sched.emit(EventKind.NET_RECV, obj=pipe.obj,
                           info={"link": f"{pipe.src}->{pipe.dst}",
                                 "seq": seq,
                                 "latency": sched.clock.now - sent_at})
                return payload, True
            if pipe.aborted:
                return None, False
            if pipe.closed and pipe.in_flight == 0:
                return None, False
            pipe.waiters.append(me)
            sched.block(f"net.recv:{self.remote}->{self.local}")
            try:
                pipe.waiters.remove(me)
            except ValueError:
                pass

    def try_recv(self) -> Tuple[Any, bool, bool]:
        """Non-blocking receive: ``(payload, received, open)``."""
        self._sched.schedule_point()
        pipe = self._in
        if pipe.queue:
            seq, payload, sent_at = pipe.queue.popleft()
            self._sched.emit(EventKind.NET_RECV, obj=pipe.obj,
                             info={"link": f"{pipe.src}->{pipe.dst}",
                                   "seq": seq,
                                   "latency": self._sched.clock.now - sent_at})
            return payload, True, True
        if pipe.aborted or (pipe.closed and pipe.in_flight == 0):
            return None, False, False
        return None, False, True

    def __iter__(self) -> Iterator[Any]:
        """Iterate payloads until EOF, like ``for v := range ch``."""
        while True:
            payload, ok = self.recv_ok()
            if not ok:
                return
            yield payload

    # ------------------------------------------------------------------
    # Close / half-close
    # ------------------------------------------------------------------

    def close_write(self) -> None:
        """Half-close: no more sends from this side; the peer sees EOF
        after draining.  Panics if the write side is already closed."""
        self._sched.schedule_point()
        if self._out.closed:
            raise GoPanic("close of closed connection")
        self._out.closed = True
        self._sched.emit(EventKind.NET_CLOSE, obj=self._out.obj,
                         info={"conn": f"{self.local}<->{self.remote}",
                               "half": True})
        # Peer receivers may now be able to complete their EOF check.
        self._out.wake_all()

    def close(self) -> None:
        """Close both directions.  Panics on double close."""
        self._sched.schedule_point()
        if self._closed:
            raise GoPanic("close of closed connection")
        self._shutdown()

    def shutdown(self) -> None:
        """Idempotent close, for teardown paths (node stop, defer-style
        cleanup) where double-close must not panic."""
        if not self._closed:
            self._shutdown()

    def _shutdown(self) -> None:
        self._closed = True
        if not self._out.closed:
            self._out.closed = True
            self._out.wake_all()
        # Abort our read side: local receivers unblock with EOF and
        # anything still arriving is discarded.
        self._in.aborted = True
        self._sched.emit(EventKind.NET_CLOSE, obj=self._in.obj,
                         info={"conn": f"{self.local}<->{self.remote}",
                               "half": False})
        self._in.wake_all()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<Conn {self.local}<->{self.remote} {state}>"


class Listener:
    """A bound address accepting connections (create via ``node.listen``)."""

    def __init__(self, rt: "Runtime", net: "Network", node_name: str,
                 addr: str, backlog: int = 16):
        self._rt = rt
        self._net = net
        self.node_name = node_name
        self.addr = addr
        self.closed = False
        # A real simulated channel: backlog pressure, close-wakes-accepts
        # and deterministic handoff all come for free.
        self.incoming = rt.make_chan(backlog, name=f"listener:{addr}")
        net.bind(addr, self)

    def accept(self) -> Conn:
        """Block until a connection arrives.  Raises :class:`NetError`
        once the listener is closed and the backlog is drained."""
        conn, ok = self.incoming.recv_ok()
        if not ok:
            raise NetError(f"accept {self.addr}: listener closed")
        return conn

    def accept_loop(self) -> Iterator[Conn]:
        """Iterate accepted connections until the listener closes."""
        return iter(self.incoming)

    def close(self) -> None:
        """Unbind and wake pending accepts.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        self._net.unbind(self.addr)
        self.incoming.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<Listener {self.addr} {state}>"


def dial(net: "Network", src: str, addr: str) -> Conn:
    """Connect from node ``src`` to ``addr`` (``"node:port"``).

    Models one RTT of handshake latency on the link, then hands the server
    side to the listener's backlog.  Raises :class:`NetError` when the
    address is unbound, the backlog is full, or a partition separates the
    endpoints (checked both before and after the handshake, so a partition
    landing mid-handshake also refuses).
    """
    rt = net._rt
    sched = net._sched
    sched.schedule_point()
    net.stats["dials"] += 1
    dst = addr.split(":", 1)[0]
    sched.emit(EventKind.NET_DIAL, info={"src": src, "addr": addr})

    def refuse(reason: str) -> NetError:
        net._log_line(f"DIAL {src}->{addr} {reason}")
        return NetError(f"dial {addr} from {src}: {reason}")

    if not net.reachable(src, dst):
        raise refuse("host unreachable")
    listener = net.lookup(addr)
    if listener is None or listener.closed:
        raise refuse("connection refused")

    rtt = 2.0 * net.link(src, dst).latency
    if rtt > 0:
        rt.sleep(rtt)
        if not net.reachable(src, dst):
            raise refuse("host unreachable")
        listener = net.lookup(addr)
        if listener is None or listener.closed:
            raise refuse("connection refused")

    client, server = Conn.pair(rt, net, src, dst)
    try:
        accepted = listener.incoming.try_send(server)
    except GoPanic:
        accepted = False
    if not accepted:
        raise refuse("connection refused (backlog full)")
    net._log_line(f"DIAL {src}->{addr} ok")
    return client
