"""The network fabric: named nodes, per-link latency, partitions, loss.

A :class:`Network` is a deterministic message fabric on top of the virtual
clock.  Nodes register by name; listeners bind ``"node:port"`` addresses;
connections exchange discrete messages whose delivery is scheduled as
virtual-clock timers.  Because the clock's timer heap breaks ties by
creation order and every chance draw (loss, duplication, reordering) comes
from one RNG derived from the run seed, the same ``(seed, topology, plan)``
triple always produces the same message log, byte for byte.

Fault surface (driven programmatically or by :mod:`repro.inject` plans):

* ``partition(groups)`` / ``heal()`` — only nodes in the same group can
  exchange messages; messages already in flight across a new partition
  boundary are dropped at delivery time, like packets on a cut cable.
* per-link drop / duplicate / reorder probabilities and extra delay,
  keyed by ``"src->dst"`` glob patterns so one rule can degrade a whole
  node's links.
"""

from __future__ import annotations

import random
import zlib
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..runtime.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime
    from .conn import Listener, _Pipe
    from .disk import Disk
    from .node import Node


class NetError(Exception):
    """A network-level failure (refused, unreachable, closed listener)."""


class Link:
    """Directed link state between two named nodes."""

    __slots__ = ("src", "dst", "latency", "drop", "duplicate", "reorder",
                 "extra_delay", "jitter")

    def __init__(self, src: str, dst: str, latency: float):
        self.src = src
        self.dst = dst
        self.latency = latency
        self.drop = 0.0       # probability a message is lost
        self.duplicate = 0.0  # probability a message is delivered twice
        self.reorder = 0.0    # probability a message gets jittered out of order
        self.extra_delay = 0.0
        self.jitter = 0.0     # max extra delay drawn for reordered messages

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"

    def __repr__(self) -> str:
        return f"<Link {self.name} latency={self.latency:g}>"


#: Rule kinds accepted by :meth:`Network.set_fault_rate`.
FAULT_RATE_KINDS = ("drop", "duplicate", "reorder", "delay")


class Network:
    """One deterministic message fabric.  Create via ``rt.network()``."""

    def __init__(self, rt: "Runtime", name: Optional[str] = None, *,
                 default_latency: float = 0.001,
                 log_messages: bool = True):
        index = len(rt._networks)
        self._rt = rt
        self._sched = rt.sched
        self.name = name or f"net{index}"
        self.default_latency = default_latency
        self.log_messages = log_messages
        self.nodes: Dict[str, "Node"] = {}
        #: Durable per-node storage, keyed by node name.  Disks outlive the
        #: node objects' crash/restart lifecycle, like real machines.
        self._disks: Dict[str, "Disk"] = {}
        self._listeners: Dict[str, "Listener"] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        #: Active partition: a list of node-name frozensets.  Empty = healed.
        self._partitions: List[frozenset] = []
        #: Injected rate rules: (kind, link glob) -> value.  Keyed so a
        #: recurring fault re-applying the same rule stays idempotent.
        self._rules: Dict[Tuple[str, str], float] = {}
        # Fabric chance draws (loss/dup/reorder coins) come from their own
        # RNG derived from the run seed and a stable hash of the fabric
        # name: independent of the scheduler's RNG, so wiring a fabric into
        # a program perturbs schedules only through actual message timing.
        self._rng = random.Random(
            rt.sched.seed * 1_000_003 + zlib.crc32(self.name.encode()) )
        self._next_msg = 0
        self._log: List[str] = []
        self.stats: Dict[str, int] = {
            "sent": 0, "delivered": 0, "dropped": 0, "duplicated": 0,
            "dials": 0,
        }

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def register(self, node: "Node") -> None:
        if node.name in self.nodes:
            raise NetError(f"duplicate node name {node.name!r} on {self.name}")
        self.nodes[node.name] = node

    def disk(self, name: str, *, fsync_latency: float = 0.0) -> "Disk":
        """The durable :class:`repro.net.disk.Disk` for node ``name``
        (created on first access; survives node crash/restart)."""
        from .disk import Disk

        disk = self._disks.get(name)
        if disk is None:
            disk = Disk(self._rt, name, fsync_latency=fsync_latency)
            self._disks[name] = disk
        return disk

    def has_disk(self, name: str) -> bool:
        return name in self._disks

    def node_crashed(self, node: "Node", lost_writes: int) -> None:
        """Record a crash-stop in the message log (called by Node.crash)."""
        self._sched.emit(EventKind.NET_NODE_CRASH, gid=0,
                         info={"net": self.name, "node": node.name,
                               "lost_writes": lost_writes})
        self._log_line(f"CRSH {node.name} lost={lost_writes}")

    def node_restarted(self, node: "Node") -> None:
        """Record a restart in the message log (called by Node.restart)."""
        self._sched.emit(EventKind.NET_NODE_RESTART, gid=0,
                         info={"net": self.name, "node": node.name,
                               "incarnation": node.incarnation})
        self._log_line(f"BOOT {node.name} #{node.incarnation}")

    def link(self, src: str, dst: str) -> Link:
        """The directed link record for ``src -> dst`` (created on demand)."""
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = Link(src, dst, self.default_latency)
            self._links[key] = link
        return link

    def set_latency(self, src: str, dst: str, latency: float,
                    symmetric: bool = True) -> None:
        self.link(src, dst).latency = latency
        if symmetric:
            self.link(dst, src).latency = latency

    # ------------------------------------------------------------------
    # Faults: partitions and link degradation
    # ------------------------------------------------------------------

    def partition(self, *groups) -> None:
        """Split the fabric: only nodes in the same group stay connected.

        Nodes named in no group are unaffected (reachable from everywhere).
        In-flight messages that cross a new boundary are dropped when their
        delivery timer fires.
        """
        self._partitions = [frozenset(group) for group in groups]
        rendered = [sorted(group) for group in self._partitions]
        self._sched.emit(EventKind.NET_PARTITION, gid=0,
                         info={"net": self.name, "groups": rendered})
        self._log_line(f"PART {rendered}")

    def heal(self) -> None:
        """Remove the partition; subsequent sends flow everywhere again."""
        self._partitions = []
        self._sched.emit(EventKind.NET_HEAL, gid=0, info={"net": self.name})
        self._log_line("HEAL")

    @property
    def partitioned(self) -> bool:
        return bool(self._partitions)

    def reachable(self, src: str, dst: str) -> bool:
        if src == dst or not self._partitions:
            return True
        src_group = dst_group = None
        for group in self._partitions:
            if src in group:
                src_group = group
            if dst in group:
                dst_group = group
        if src_group is None or dst_group is None:
            return True
        return src_group is dst_group

    def set_fault_rate(self, kind: str, pattern: str, value: float) -> None:
        """Apply a rate rule to every link matching ``pattern`` (a glob
        over ``"src->dst"`` names).  ``kind``: drop | duplicate | reorder |
        delay (extra seconds).  ``value=0`` removes the rule."""
        if kind not in FAULT_RATE_KINDS:
            raise ValueError(f"unknown fault rate kind {kind!r}")
        if value:
            self._rules[(kind, pattern)] = value
        else:
            self._rules.pop((kind, pattern), None)

    def _effective(self, link: Link) -> Tuple[float, float, float, float]:
        """(drop, duplicate, reorder, extra_delay) after rate rules."""
        drop, dup = link.drop, link.duplicate
        reorder, extra = link.reorder, link.extra_delay
        if self._rules:
            name = link.name
            for (kind, pattern), value in self._rules.items():
                if not fnmatchcase(name, pattern):
                    continue
                if kind == "drop":
                    drop = max(drop, value)
                elif kind == "duplicate":
                    dup = max(dup, value)
                elif kind == "reorder":
                    reorder = max(reorder, value)
                else:
                    extra += value
        return drop, dup, reorder, extra

    # ------------------------------------------------------------------
    # Message transport (called by repro.net.conn)
    # ------------------------------------------------------------------

    def transmit(self, pipe: "_Pipe", payload: Any) -> None:
        """Schedule delivery of one message on a pipe (sender context)."""
        src, dst = pipe.src, pipe.dst
        link = self.link(src, dst)
        drop, dup, reorder, extra = self._effective(link)
        now = self._sched.clock.now
        seq = self._next_msg
        self._next_msg += 1
        self.stats["sent"] += 1
        self._sched.emit(EventKind.NET_SEND, obj=pipe.obj,
                         info={"link": link.name, "seq": seq,
                               "latency": link.latency + extra})
        self._log_line(f"SEND {link.name} #{seq}")

        if drop and self._rng.random() < drop:
            self.stats["dropped"] += 1
            self._sched.emit(EventKind.NET_DROP, gid=0, obj=pipe.obj,
                             info={"link": link.name, "seq": seq,
                                   "reason": "loss"})
            self._log_line(f"DROP {link.name} #{seq} loss")
            return

        copies = 1
        if dup and self._rng.random() < dup:
            copies = 2
            self.stats["duplicated"] += 1
            self._log_line(f"DUP  {link.name} #{seq}")

        base = now + link.latency + extra
        for _ in range(copies):
            deliver_at = base
            if reorder and self._rng.random() < reorder:
                jitter = link.jitter or 2.0 * (link.latency or 0.001)
                deliver_at += self._rng.uniform(0.0, jitter)
            else:
                # FIFO per pipe: a message never overtakes its predecessor
                # unless the reorder fault explicitly jitters it.
                deliver_at = max(deliver_at, pipe.last_deliver)
                pipe.last_deliver = deliver_at
            pipe.in_flight += 1
            self._sched.clock.call_at(
                deliver_at,
                lambda p=pipe, s=seq, v=payload, t=now: self._deliver(p, s, v, t))

    def _deliver(self, pipe: "_Pipe", seq: int, payload: Any,
                 sent_at: float) -> None:
        """Timer callback (scheduler context): land or drop one message."""
        pipe.in_flight -= 1
        link_name = f"{pipe.src}->{pipe.dst}"
        if not self.reachable(pipe.src, pipe.dst):
            self.stats["dropped"] += 1
            self._sched.emit(EventKind.NET_DROP, gid=0, obj=pipe.obj,
                             info={"link": link_name, "seq": seq,
                                   "reason": "partition"})
            self._log_line(f"DROP {link_name} #{seq} partition")
        elif pipe.aborted:
            # Receiver already closed its end; silently discard, like
            # packets arriving for a closed socket.
            self.stats["dropped"] += 1
            self._log_line(f"DROP {link_name} #{seq} closed")
        else:
            self.stats["delivered"] += 1
            pipe.queue.append((seq, payload, sent_at))
            self._log_line(f"RECV {link_name} #{seq}")
        # Wake receivers either way: a dropped final message may complete
        # an EOF condition (sender closed and nothing left in flight).
        pipe.wake_all()

    # ------------------------------------------------------------------
    # Listener registry (bound/unbound by repro.net.conn)
    # ------------------------------------------------------------------

    def bind(self, addr: str, listener: "Listener") -> None:
        if addr in self._listeners:
            raise NetError(f"address already in use: {addr}")
        self._listeners[addr] = listener

    def unbind(self, addr: str) -> None:
        self._listeners.pop(addr, None)

    def lookup(self, addr: str) -> Optional["Listener"]:
        return self._listeners.get(addr)

    # ------------------------------------------------------------------
    # Message log
    # ------------------------------------------------------------------

    def _log_line(self, text: str) -> None:
        if self.log_messages:
            self._log.append(f"{self._sched.clock.now:.6f} {text}")

    @property
    def message_log(self) -> List[str]:
        return self._log

    def format_message_log(self) -> str:
        """The full fabric history as one string — byte-identical across
        runs of the same ``(seed, topology, plan)``."""
        return "\n".join(self._log)

    def __repr__(self) -> str:
        return (f"<Network {self.name!r} nodes={len(self.nodes)} "
                f"sent={self.stats['sent']}>")
