"""The per-step hot path: one import surface, compiled when possible.

Three pieces of the simulator dominate sweep profiles: the scheduler's
per-step decision loop, the ``randrange`` draws feeding it, and the
vector-clock joins the happens-before engines (:mod:`repro.detect.race`,
:mod:`repro.predict.hb`) perform per trace event.  This module hosts all
three behind one stable surface:

* :data:`BatchedRandom` — the scheduling RNG.  The compiled MT19937 from
  ``repro.runtime._ext._hotloop`` when the extension builds here, else the
  pure-Python :class:`repro.runtime.fastrand.BatchedRandom`.  Both draw the
  exact sequence ``random.Random(seed).randrange(n)`` would, so which one a
  run gets never changes a schedule.
* :func:`get_drive` — the fused per-step scheduler loop (compiled only).
  Returns ``None`` when unavailable; the scheduler then runs its pure loop.
  The compiled loop engages only when nothing observable differs: no trace
  consumer, no fault injector, no observe hooks, structured stop conditions
  and the stock RNG (see ``Scheduler.run_until_quiescent``).
* :class:`VectorClock` — array-backed vector clocks (a dense list indexed
  by gid, matching the simulator's small dense goroutine ids) behind the
  exact API the old sparse dict-backed clock exposed.

Set ``REPRO_NO_CEXT=1`` to force every pure-Python path; the parity tests
run both ways and assert byte-identical results.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from . import _ext
from .fastrand import BatchedRandom as PyBatchedRandom

_c = _ext.get_hotloop()

#: True when the compiled extension loaded (BatchedRandom and the fused
#: loop are C; False on other platforms / REPRO_NO_CEXT=1).
HAS_COMPILED = _c is not None

#: The scheduling RNG class every Scheduler instantiates by default.
BatchedRandom: Any = _c.BatchedRandom if _c is not None else PyBatchedRandom

_drive: Optional[Callable[[Any], Optional[str]]] = None
_drive_resolved = False

_fastops: Optional[Any] = None
_fastops_resolved = False

#: When True every accessor below reports "not compiled" even though the
#: extension is loaded — the bench harness uses this to measure the pure
#: paths in the same process (see :func:`force_pure`).
_force_pure = False


def get_drive() -> Optional[Callable[[Any], Optional[str]]]:
    """The compiled ``drive(scheduler)`` step loop, or None without it.

    First call binds the extension to the runtime classes (slot offsets,
    state constants, the continuation switch); that may lazily compile
    ``_ctasklet`` for the fast switching path.  ``drive`` still works —
    through a generic ``resume()`` call — for greenlet/generator vehicles
    and thread-compat hosts driven by the centralized loop.
    """
    global _drive, _drive_resolved
    if not _drive_resolved:
        _drive_resolved = True
        if _c is not None:
            try:
                from .goroutine import (
                    Goroutine,
                    GState,
                    TaskletGoroutine,
                    tasklet_module,
                )

                mod = tasklet_module()
                _c.bind(Goroutine, TaskletGoroutine, GState,
                        mod.Tasklet if mod is not None else None)
                _drive = _c.drive
            except Exception:  # pragma: no cover - defensive: stay pure
                _drive = None
    if _force_pure:
        return None
    return _drive


def get_fastops() -> Optional[Any]:
    """The compiled channel/select/sync fast ops, or None without them.

    Returns the extension module itself (``chan_send``, ``chan_recv``,
    ``select_op``, ``mutex_lock``, ... live on it); every op re-checks
    engagement per call and returns ``NotImplemented`` to defer to the
    pure primitive whenever a trace consumer, fault injector or missing
    goroutine context makes the pure path observable.  First call binds
    the primitive classes' slot offsets into the extension.
    """
    global _fastops, _fastops_resolved
    if not _fastops_resolved:
        _fastops_resolved = True
        get_drive()  # ensure bind() ran (slot offsets the fast ops share)
        if _c is not None and _drive is not None:
            try:
                from collections import deque

                from ..chan.cases import RecvCase, SendCase
                from ..chan.channel import Channel, _Waiter
                from ..chan.select import _SelectContext
                from ..sync.mutex import Mutex, _Ticket as _MuTicket
                from ..sync.rwmutex import RWMutex, _Ticket as _RWTicket
                from .errors import GoPanic, Killed
                from .goroutine import Goroutine, GState, TaskletGoroutine
                from .trace import Trace

                _c.bind_fastops(
                    Channel, _Waiter, _SelectContext, SendCase, RecvCase,
                    Mutex, _MuTicket, RWMutex, _RWTicket, Trace,
                    Goroutine, TaskletGoroutine, GState, GoPanic, Killed,
                    deque,
                )
                _fastops = _c
            except Exception:  # pragma: no cover - defensive: stay pure
                _fastops = None
    if _force_pure:
        return None
    return _fastops


class force_pure:
    """Context manager: run with every compiled fast path disabled.

    Schedulers constructed inside the ``with`` block get neither the
    compiled drive loop nor the compiled fast ops, exactly as under
    ``REPRO_NO_CEXT=1`` — the bench harness measures pure cells this way,
    and the parity tests diff compiled-vs-pure runs in one process.
    (Schedulers constructed *outside* the block keep whatever they
    resolved at construction time.)
    """

    def __enter__(self) -> "force_pure":
        global _force_pure
        self._prev = _force_pure
        _force_pure = True
        return self

    def __exit__(self, *exc: Any) -> None:
        global _force_pure
        _force_pure = self._prev


# ---------------------------------------------------------------------------
# Array-backed vector clocks
# ---------------------------------------------------------------------------

#: Compiled O(#gids) join / compare kernels over the dense count lists
#: (None without the extension; ``force_pure`` also disables them).
_vc_join = getattr(_c, "vc_join", None) if _c is not None else None
_vc_le = getattr(_c, "vc_le", None) if _c is not None else None


class VectorClock:
    """A vector clock over goroutine ids, dense-array backed.

    Goroutine ids are small consecutive integers (the scheduler hands them
    out from 1), so a list indexed by gid beats a sparse dict on every hot
    operation: ``get`` is one index, ``join`` is an elementwise max with no
    hashing.  The API — and every observable result, including nonzero-
    filtered equality — is identical to the historical dict-backed clock;
    epoch pairs ``(gid, count)`` keep the FastTrack-style O(1)
    ordered-with-current checks.
    """

    __slots__ = ("_v",)

    def __init__(self,
                 counts: Union[None, Dict[int, int], List[int]] = None):
        if counts is None:
            self._v: List[int] = []
        elif type(counts) is list:  # internal fast path (copy/join results)
            self._v = counts[:]
        else:
            v: List[int] = []
            for gid, count in counts.items():
                if gid >= len(v):
                    v.extend([0] * (gid + 1 - len(v)))
                v[gid] = count
            self._v = v

    def get(self, gid: int) -> int:
        v = self._v
        return v[gid] if 0 <= gid < len(v) else 0

    def increment(self, gid: int) -> None:
        v = self._v
        if gid >= len(v):
            v.extend([0] * (gid + 1 - len(v)))
        v[gid] += 1

    def join(self, other: Optional["VectorClock"]) -> None:
        """Pointwise maximum: ``self = self ⊔ other``."""
        if other is None:
            return
        if _vc_join is not None and not _force_pure:
            _vc_join(self._v, other._v)
            return
        v, o = self._v, other._v
        if len(o) > len(v):
            v.extend([0] * (len(o) - len(v)))
        for gid, count in enumerate(o):
            if count > v[gid]:
                v[gid] = count

    def copy(self) -> "VectorClock":
        return VectorClock(self._v)

    def epoch(self, gid: int) -> Tuple[int, int]:
        """The ``(gid, count)`` epoch of this clock's own component."""
        return gid, self.get(gid)

    def dominates_epoch(self, epoch: Tuple[int, int]) -> bool:
        """True when the access stamped ``epoch`` happens-before this clock."""
        gid, count = epoch
        return self.get(gid) >= count

    def __le__(self, other: "VectorClock") -> bool:
        if _vc_le is not None and not _force_pure:
            return _vc_le(self._v, other._v)
        v, o = self._v, other._v
        olen = len(o)
        for gid, count in enumerate(v):
            if count > (o[gid] if gid < olen else 0):
                return False
        return True

    def _trimmed(self) -> List[int]:
        v = self._v
        n = len(v)
        while n and v[n - 1] == 0:
            n -= 1
        return v[:n]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        # Zero components are indistinguishable from absent ones, exactly
        # as the sparse clock's nonzero-filtered comparison had it.
        return self._trimmed() == other._trimmed()

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(tuple(self._trimmed()))

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not (self <= other) and not (other <= self)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter([(gid, count)
                     for gid, count in enumerate(self._v) if count])

    def __repr__(self) -> str:
        inner = ",".join(f"g{g}:{c}" for g, c in self.items())
        return f"VC({inner})"


__all__ = ["BatchedRandom", "HAS_COMPILED", "VectorClock", "force_pure",
           "get_drive", "get_fastops"]
