"""ASCII timelines from execution traces.

Turns a finished run's trace into a per-goroutine lane diagram — the
debugging view you want when a kernel leaks and you need to see who
blocked on what, in which order::

    g1 main              |go+2....send:results............recv:results|
    g2 worker            |....................send:results~~~~~~~~~~~~|

Legend: one column per scheduling step (compressed), ``~`` = blocked,
``.`` = idle/not scheduled, op glyphs at the step they completed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .runtime import RunResult
from .trace import EventKind

#: Short glyph labels per event kind (trailing ":<name>" added for channels).
_LABELS = {
    EventKind.GO_CREATE: "go",
    EventKind.GO_END: "end",
    EventKind.GO_PANIC: "PANIC",
    EventKind.CHAN_SEND: "send",
    EventKind.CHAN_RECV: "recv",
    EventKind.CHAN_CLOSE: "close",
    EventKind.SELECT_COMMIT: "sel",
    EventKind.MU_LOCK: "lk",
    EventKind.MU_UNLOCK: "ul",
    EventKind.RW_RLOCK: "rlk",
    EventKind.RW_RUNLOCK: "rul",
    EventKind.RW_LOCK: "wlk",
    EventKind.RW_UNLOCK: "wul",
    EventKind.WG_ADD: "add",
    EventKind.WG_DONE: "done",
    EventKind.WG_WAIT: "wait",
    EventKind.ONCE_DO: "once",
    EventKind.MEM_READ: "r",
    EventKind.MEM_WRITE: "w",
    EventKind.SLEEP: "zz",
    EventKind.GO_BLOCK: "~",
}

#: Kinds too noisy for the timeline.
_SKIP = {EventKind.GO_UNBLOCK, EventKind.GO_START, EventKind.CHAN_MAKE,
         EventKind.SELECT_BEGIN, EventKind.MU_REQUEST, EventKind.RW_REQUEST,
         EventKind.ATOMIC_OP, EventKind.TIMER_FIRE}


def timeline(result: RunResult, max_width: int = 100,
             include_memory: bool = False) -> str:
    """Render the run's trace as per-goroutine lanes."""
    if result.trace is None:
        return "(trace not recorded: run with keep_trace=True)"

    lanes: Dict[int, List[str]] = {}
    order: List[int] = []

    def lane(gid: int) -> List[str]:
        if gid not in lanes:
            lanes[gid] = []
            order.append(gid)
        return lanes[gid]

    for event in result.trace:
        if event.kind in _SKIP or event.gid == 0:
            continue
        if not include_memory and event.kind in (EventKind.MEM_READ,
                                                 EventKind.MEM_WRITE):
            continue
        label = _LABELS.get(event.kind)
        if label is None:
            continue
        if event.kind == EventKind.GO_BLOCK:
            label = "~" + str(event.info.get("reason", "")).split(":")[0]
        elif event.kind in (EventKind.CHAN_SEND, EventKind.CHAN_RECV,
                            EventKind.CHAN_CLOSE):
            label = f"{label}#{event.obj}"
        lane(event.gid).append(label)

    names = {g.gid: g.name for g in result.goroutines}
    states = {g.gid: g.state for g in result.goroutines}

    lines = [f"run: status={result.status} steps={result.steps} "
             f"virtual-time={result.end_time:g}s"]
    for gid in sorted(order):
        ops = lanes[gid]
        body = " ".join(ops)
        if len(body) > max_width:
            body = body[: max_width - 3] + "..."
        name = names.get(gid, "?")
        state = states.get(gid, "?")
        lines.append(f"  g{gid:<3} {name:<24} [{state:<8}] {body}")
    return "\n".join(lines)


def blocked_summary(result: RunResult) -> str:
    """A one-liner per stuck goroutine (for leak triage)."""
    lines = []
    for g in result.leaked:
        lines.append(f"  g{g.gid} {g.name}: stuck on {g.block_reason} "
                     f"(created at {g.creation_site})")
    return "\n".join(lines) if lines else "  (nothing stuck)"
