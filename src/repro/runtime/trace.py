"""Structured execution traces.

Every scheduling-relevant action emits one :class:`TraceEvent`.  The trace is
the single integration point between the runtime and the detectors
(:mod:`repro.detect`): detectors are pure consumers of events and never reach
into scheduler internals.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional


class EventKind:
    """Names of trace event kinds (plain strings, grouped for reference)."""

    # Goroutine lifecycle
    GO_CREATE = "go.create"          # info: child gid, anonymous flag
    GO_START = "go.start"
    GO_END = "go.end"
    GO_PANIC = "go.panic"
    GO_BLOCK = "go.block"            # info: reason
    GO_UNBLOCK = "go.unblock"

    # Channels
    CHAN_MAKE = "chan.make"
    CHAN_SEND = "chan.send"          # completed send
    CHAN_RECV = "chan.recv"          # completed receive; info: closed flag
    CHAN_CLOSE = "chan.close"
    SELECT_BEGIN = "select.begin"
    SELECT_COMMIT = "select.commit"  # info: chosen case index

    # Shared-memory synchronization
    MU_REQUEST = "mutex.request"     # lock() entered (may block forever)
    MU_LOCK = "mutex.lock"           # lock() acquired
    MU_UNLOCK = "mutex.unlock"
    RW_RLOCK = "rwmutex.rlock"
    RW_RUNLOCK = "rwmutex.runlock"
    RW_REQUEST = "rwmutex.request"
    RW_LOCK = "rwmutex.lock"
    RW_UNLOCK = "rwmutex.unlock"
    WG_ADD = "waitgroup.add"
    WG_DONE = "waitgroup.done"
    WG_WAIT = "waitgroup.wait"
    ONCE_DO = "once.do"              # info: ran flag (True for the executor)
    COND_WAIT = "cond.wait"
    COND_SIGNAL = "cond.signal"
    COND_BROADCAST = "cond.broadcast"
    ATOMIC_OP = "atomic.op"

    # Modelled (racy) memory accesses
    MEM_READ = "mem.read"
    MEM_WRITE = "mem.write"

    # Time and external waits
    SLEEP = "time.sleep"
    TIMER_FIRE = "timer.fire"
    EXTERNAL_WAIT = "external.wait"

    # Fault injection (repro.inject)
    INJECT = "inject.fault"          # info: action, plan, victim details

    # Simulated network (repro.net)
    NET_SEND = "net.send"            # info: link "src->dst", msg seq, latency
    NET_RECV = "net.recv"            # info: link, msg seq, latency
    NET_DROP = "net.drop"            # info: link, msg seq, reason
    NET_DIAL = "net.dial"            # info: src node, addr, outcome
    NET_CLOSE = "net.close"          # info: conn endpoints, half flag
    NET_PARTITION = "net.partition"  # info: node groups
    NET_HEAL = "net.heal"
    NET_NODE_CRASH = "net.node.crash"      # info: node, lost_writes
    NET_NODE_RESTART = "net.node.restart"  # info: node, incarnation


#: Shared empty-info mapping: most events carry no details, and allocating a
#: fresh dict per event was measurable in sweeps.  Treat as immutable —
#: consumers only ever read ``event.info``.
_NO_INFO: Dict[str, object] = {}


class TraceEvent:
    """One scheduling-relevant action performed by a goroutine.

    Attributes:
        step: global monotonically increasing scheduler step counter.
        time: virtual-clock timestamp (seconds).
        gid: id of the goroutine performing the action (0 = scheduler).
        kind: one of the :class:`EventKind` names.
        obj: stable id of the primitive object involved, if any.
        info: kind-specific details (small, JSON-like values only).
    """

    __slots__ = ("step", "time", "gid", "kind", "obj", "info")

    def __init__(
        self,
        step: int,
        time: float,
        gid: int,
        kind: str,
        obj: Optional[int] = None,
        info: Optional[Dict[str, object]] = None,
    ):
        self.step = step
        self.time = time
        self.gid = gid
        self.kind = kind
        self.obj = obj
        self.info = _NO_INFO if not info else info

    def __repr__(self) -> str:
        extra = f" obj={self.obj}" if self.obj is not None else ""
        info = f" {self.info}" if self.info else ""
        return f"<{self.step}@{self.time:g} g{self.gid} {self.kind}{extra}{info}>"


class Trace:
    """An append-only event log with optional live listeners.

    Listeners (detectors) are invoked synchronously as events are emitted so
    they observe the exact interleaving order.
    """

    # Slotted so the compiled fast ops can probe ``active`` by slot offset
    # (and exact type) instead of a dict lookup on every channel operation.
    __slots__ = ("_events", "_listeners", "_keep_events", "active")

    def __init__(self, keep_events: bool = True):
        self._events: List[TraceEvent] = []
        self._listeners: List[Callable[[TraceEvent], None]] = []
        self._keep_events = keep_events
        #: True when emitting an event has any consumer (the kept log or a
        #: listener).  The scheduler checks this before *allocating* events,
        #: so an unobserved ``keep_trace=False`` run skips the whole
        #: trace layer at the cost of one attribute read per event site.
        self.active = keep_events

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked for every subsequent event."""
        self._listeners.append(listener)
        self.active = True

    def emit(self, event: TraceEvent) -> None:
        if self._keep_events:
            self._events.append(event)
        for listener in self._listeners:
            listener(event)

    @property
    def events(self) -> List[TraceEvent]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        """Return all recorded events whose kind is in ``kinds``."""
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def by_goroutine(self, gid: int) -> List[TraceEvent]:
        return [e for e in self._events if e.gid == gid]

    def kinds(self) -> Iterable[str]:
        return (e.kind for e in self._events)
