"""Goroutines as token-passing host threads.

Exactly one thread in a simulation runs at any instant: either the scheduler
or a single goroutine holding the *token*.  The handoff is implemented with
one :class:`threading.Event` per goroutine plus one owned by the scheduler.
Because of this one-runner invariant, primitive state needs no host-level
locking and every interleaving is fully determined by the scheduler's seeded
choices.

A goroutine's life:

``CREATED -> RUNNABLE <-> RUNNING <-> BLOCKED`` and finally one of
``DONE | PANICKED | KILLED``.
"""

from __future__ import annotations

import threading
import traceback
import warnings
from typing import Any, Callable, Optional, Tuple

from .errors import GoPanic, Killed

#: How long :meth:`Goroutine.kill` waits for a host thread to unwind before
#: declaring it stuck.  A thread can outlive this when user code swallows
#: ``Killed`` (a ``BaseException``) or parks on a host-level primitive the
#: scheduler cannot interrupt; such threads are recorded on the goroutine
#: (``stuck_host_thread``) and surfaced on the :class:`RunResult` instead of
#: being dropped silently.
HOST_JOIN_TIMEOUT = 5.0


class GState:
    """Goroutine states (plain strings for cheap comparisons and repr)."""

    CREATED = "created"
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    PANICKED = "panicked"
    KILLED = "killed"

    LIVE = frozenset({CREATED, RUNNABLE, RUNNING, BLOCKED})
    TERMINAL = frozenset({DONE, PANICKED, KILLED})


class Goroutine:
    """One simulated goroutine backed by a daemon host thread.

    The scheduler interacts with it through :meth:`start`, :meth:`resume`
    and :meth:`kill`; the goroutine yields back with :meth:`yield_to_scheduler`
    (called from primitive code running on the goroutine's thread).
    """

    def __init__(
        self,
        gid: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        scheduler_wakeup: threading.Event,
        name: Optional[str] = None,
        anonymous: bool = False,
        creation_site: Optional[str] = None,
    ):
        self.gid = gid
        self.fn = fn
        self.args = args
        self.name = name or getattr(fn, "__name__", "goroutine")
        #: True when created from a lambda / nested closure ("anonymous
        #: function" in the paper's Table 2 terminology).
        self.anonymous = anonymous
        #: "file:line" of the ``go()`` call, for leak reports.
        self.creation_site = creation_site

        self.state = GState.CREATED
        #: Why the goroutine is blocked (e.g. "chan.send"), for diagnostics.
        self.block_reason: Optional[str] = None
        #: True when blocked on a modelled external resource (network, disk):
        #: the built-in deadlock detector must ignore such goroutines.
        self.external = False
        self.panic_value: Optional[BaseException] = None
        self.panic_traceback: Optional[str] = None
        self.result: Any = None
        #: Exception injected by the fault injector; raised at the
        #: goroutine's next scheduling point (see ``yield_to_scheduler``).
        self.pending_error: Optional[BaseException] = None
        #: True when the host thread survived :meth:`kill`'s join timeout.
        self.stuck_host_thread = False

        # Virtual-clock bookkeeping for the Table 3 lifetime statistics.
        self.created_at: float = 0.0
        self.ended_at: Optional[float] = None

        # Mailbox used by rendezvous primitives to hand a value to a waiter.
        self.mailbox: Any = None

        self._sched_wakeup = scheduler_wakeup
        self._my_wakeup = threading.Event()
        self._killed = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Scheduler-side API (called with the scheduler holding the token)
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Create the host thread; it immediately parks waiting for the token."""
        self._thread = threading.Thread(
            target=self._run, name=f"goroutine-{self.gid}-{self.name}", daemon=True
        )
        self.state = GState.RUNNABLE
        self._thread.start()

    def resume(self) -> None:
        """Hand the token to this goroutine and wait for it to come back."""
        self.state = GState.RUNNING
        self._sched_wakeup.clear()
        self._my_wakeup.set()
        self._sched_wakeup.wait()

    def kill(self, join_timeout: Optional[float] = None) -> None:
        """Force the goroutine's host thread to unwind (scheduler-side).

        Safe to call on a blocked or runnable goroutine; terminal goroutines
        are ignored.  Blocks until the host thread has exited — bounded by
        ``join_timeout`` (default :data:`HOST_JOIN_TIMEOUT`).  A thread that
        outlives the bound is recorded as stuck (``stuck_host_thread``) and a
        ``RuntimeWarning`` is emitted; callers surface it on the RunResult.
        """
        if self.state in GState.TERMINAL or self._thread is None:
            return
        timeout = HOST_JOIN_TIMEOUT if join_timeout is None else join_timeout
        self._killed = True
        self._sched_wakeup.clear()
        self._my_wakeup.set()
        handed_back = self._sched_wakeup.wait(timeout=timeout)
        if handed_back:
            self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            self.stuck_host_thread = True
            warnings.warn(
                f"goroutine {self.gid} ({self.name}): host thread did not "
                f"unwind within {timeout:g}s after kill; the thread is stuck "
                "and will be abandoned (user code may be swallowing the "
                "Killed signal or blocking outside the simulator)",
                RuntimeWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    # Goroutine-side API (called on the goroutine's own thread)
    # ------------------------------------------------------------------

    def yield_to_scheduler(self) -> None:
        """Give the token back and park until the scheduler resumes us."""
        self._my_wakeup.clear()
        self._sched_wakeup.set()
        self._my_wakeup.wait()
        if self._killed:
            raise Killed()
        if self.pending_error is not None:
            error = self.pending_error
            self.pending_error = None
            raise error

    # ------------------------------------------------------------------

    def _run(self) -> None:
        # Park until the scheduler first hands us the token.
        self._my_wakeup.wait()
        try:
            if self._killed:
                raise Killed()
            self.result = self.fn(*self.args)
            self.state = GState.DONE
        except Killed:
            self.state = GState.KILLED
        except GoPanic as exc:
            self.state = GState.PANICKED
            self.panic_value = exc
            self.panic_traceback = traceback.format_exc()
        except BaseException as exc:  # host-level bug in user code
            self.state = GState.PANICKED
            self.panic_value = exc
            self.panic_traceback = traceback.format_exc()
        finally:
            # Final token return: the scheduler sees a terminal state.
            self._sched_wakeup.set()

    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable one-liner used in deadlock and leak reports."""
        where = f" at {self.creation_site}" if self.creation_site else ""
        reason = f" [{self.block_reason}]" if self.block_reason else ""
        return f"goroutine {self.gid} ({self.name}){where}: {self.state}{reason}"

    def __repr__(self) -> str:
        return f"<Goroutine {self.gid} {self.name} {self.state}>"
