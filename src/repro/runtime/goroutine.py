"""Goroutines as token-passing hosts (single-threaded continuations by
default, OS threads as an opt-in compatibility mode).

Exactly one host in a simulation runs at any instant: either the scheduler
or a single goroutine holding the *token*.  Because of this one-runner
invariant, primitive state needs no host-level locking and every
interleaving is fully determined by the scheduler's seeded choices.

Four interchangeable vehicles implement the handoff; ``backend="coroutine"``
(the default) resolves to the best continuation vehicle available:

* ``"greenlet"``: every goroutine is a greenlet on the scheduler's own
  thread; the handoff is a userspace stack switch with no locks and no OS
  context switch at all.  Needs the optional :mod:`greenlet` package.
* ``"tasklet"``: the same single-threaded stack switching, provided by the
  in-tree ``repro.runtime._ext._ctasklet`` C extension (compiled lazily
  with the system toolchain; CPython 3.11 / x86-64 Linux).  This is what
  ``"coroutine"`` resolves to when greenlet is not installed.
* ``"generator"``: the pure-Python trampoline fallback.  Goroutine bodies
  written as *generator functions* run as true continuations (each
  ``yield`` is a schedule point); plain-function bodies ride thread-compat
  hosts so arbitrary programs still work unchanged.
* ``"thread"``: one daemon host thread per goroutine — the original
  backend, kept as an opt-in compatibility mode.  The token moves through
  raw ``threading.Lock`` binary semaphores — one per goroutine plus one
  owned by the scheduler's main loop.  Handoffs are *direct*: a yielding
  goroutine runs the scheduler's per-step logic inline on its own host
  (see :meth:`Scheduler._handback`) and wakes the next goroutine's thread
  itself, so a step costs one OS context switch instead of the two a
  bounce through the scheduler thread would pay — and zero on a self-pick.

All vehicles produce bit-identical schedules — the token protocol and the
seeded decision sequence are the same, only the vehicle differs — which the
cross-backend fingerprint tests assert over the whole kernel corpus.

A goroutine's life:

``CREATED -> RUNNABLE <-> RUNNING <-> BLOCKED`` and finally one of
``DONE | PANICKED | KILLED``.
"""

from __future__ import annotations

import threading
import traceback
import warnings
from typing import Any, Callable, Optional, Tuple

from .errors import GoPanic, Killed, SchedulerStateError

#: How long :meth:`Goroutine.kill` waits for a host thread to unwind before
#: declaring it stuck.  A thread can outlive this when user code swallows
#: ``Killed`` (a ``BaseException``) or parks on a host-level primitive the
#: scheduler cannot interrupt; such threads are recorded on the goroutine
#: (``stuck_host_thread``) and surfaced on the :class:`RunResult` instead of
#: being dropped silently.  Override per run with
#: ``run(..., host_join_timeout=...)``; sweep workers shrink it so one
#: pathological seed cannot stall a whole sweep (see :mod:`repro.parallel`).
HOST_JOIN_TIMEOUT = 5.0

try:  # optional single-thread backend
    import greenlet as _greenlet
except ImportError:  # pragma: no cover - greenlet not installed in CI image
    _greenlet = None

#: True when the optional greenlet backend can actually be used.
HAS_GREENLET = _greenlet is not None

# The in-tree stack-switching extension (lazy: first use compiles it with
# the system toolchain and caches the .so; see repro.runtime._ext).
_tasklet_mod: Any = None
_tasklet_checked = False


def tasklet_module() -> Any:
    """The ``_ctasklet`` extension module, or None where unsupported."""
    global _tasklet_mod, _tasklet_checked
    if not _tasklet_checked:
        from . import _ext

        _tasklet_mod = _ext.get_ctasklet()
        _tasklet_checked = True
    return _tasklet_mod


def has_tasklet() -> bool:
    """True when the in-tree tasklet continuation vehicle is usable."""
    return tasklet_module() is not None


class GState:
    """Goroutine states (plain strings for cheap comparisons and repr)."""

    CREATED = "created"
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    PANICKED = "panicked"
    KILLED = "killed"

    LIVE = frozenset({CREATED, RUNNABLE, RUNNING, BLOCKED})
    TERMINAL = frozenset({DONE, PANICKED, KILLED})


class Goroutine:
    """One simulated goroutine backed by a daemon host thread.

    The scheduler interacts with it through :meth:`start`, :meth:`resume`
    and :meth:`kill`; the goroutine yields back with :meth:`yield_to_scheduler`
    (called from primitive code running on the goroutine's host).

    Token protocol (thread backend): the main loop's handoff lock and the
    goroutine's private lock are both created *held*.  ``resume`` releases
    the goroutine's lock (waking it) and blocks acquiring the main-loop
    lock; a yielding goroutine runs the scheduler's continuation
    (``Scheduler._handback``) inline on its own host, which either wakes
    the next goroutine's private lock directly, tells this host to keep
    running (self-pick), or releases the main-loop lock when the scheduler
    thread must act.  Strict alternation under the one-runner invariant
    means each lock is released exactly once per acquire.
    """

    __slots__ = (
        "gid", "fn", "args", "name", "anonymous", "creation_site",
        "state", "block_reason", "external", "panic_value",
        "panic_traceback", "result", "pending_error", "stuck_host_thread",
        "created_at", "ended_at", "mailbox",
        "_sched", "_my_lock", "_killed", "_thread",
    )

    def __init__(
        self,
        gid: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        scheduler: Any,
        name: Optional[str] = None,
        anonymous: bool = False,
        creation_site: Optional[str] = None,
    ):
        self.gid = gid
        self.fn = fn
        self.args = args
        self.name = name or getattr(fn, "__name__", "goroutine")
        #: True when created from a lambda / nested closure ("anonymous
        #: function" in the paper's Table 2 terminology).
        self.anonymous = anonymous
        #: "file:line" of the ``go()`` call, for leak reports.
        self.creation_site = creation_site

        self.state = GState.CREATED
        #: Why the goroutine is blocked (e.g. "chan.send"), for diagnostics.
        self.block_reason: Optional[str] = None
        #: True when blocked on a modelled external resource (network, disk):
        #: the built-in deadlock detector must ignore such goroutines.
        self.external = False
        self.panic_value: Optional[BaseException] = None
        self.panic_traceback: Optional[str] = None
        self.result: Any = None
        #: Exception injected by the fault injector; raised at the
        #: goroutine's next scheduling point (see ``yield_to_scheduler``).
        self.pending_error: Optional[BaseException] = None
        #: True when the host thread survived :meth:`kill`'s join timeout.
        self.stuck_host_thread = False

        # Virtual-clock bookkeeping for the Table 3 lifetime statistics.
        self.created_at: float = 0.0
        self.ended_at: Optional[float] = None

        # Mailbox used by rendezvous primitives to hand a value to a waiter.
        self.mailbox: Any = None

        #: The owning scheduler: yields run its continuation inline
        #: (``_handback``), and ``kill`` pairs with its main-loop handoff lock.
        self._sched = scheduler
        self._my_lock = threading.Lock()
        self._my_lock.acquire()  # created held: the host parks on it
        self._killed = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Scheduler-side API (called with the scheduler holding the token)
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Create the host thread; it immediately parks waiting for the token."""
        self._thread = threading.Thread(
            target=self._run, name=f"goroutine-{self.gid}-{self.name}", daemon=True
        )
        self.state = GState.RUNNABLE
        self._thread.start()

    def resume(self) -> None:
        """Hand the token to this goroutine; park the main loop until some
        goroutine's inline continuation decides the scheduler must act."""
        self.state = GState.RUNNING
        self._my_lock.release()
        self._sched._handoff.acquire()

    def kill(self, join_timeout: Optional[float] = None) -> None:
        """Force the goroutine's host thread to unwind (scheduler-side).

        Safe to call on a blocked or runnable goroutine; terminal goroutines
        are ignored.  Blocks until the host thread has exited — bounded by
        ``join_timeout`` (default :data:`HOST_JOIN_TIMEOUT`).  A thread that
        outlives the bound is recorded as stuck (``stuck_host_thread``) and a
        ``RuntimeWarning`` is emitted; callers surface it on the RunResult.
        """
        if self.state in GState.TERMINAL or self._thread is None:
            return
        timeout = HOST_JOIN_TIMEOUT if join_timeout is None else join_timeout
        handoff = self._sched._handoff
        self._killed = True
        # Drain a stale token return left by a previously stuck thread that
        # unwound late (the lock analogue of the old ``Event.clear()``).
        while handoff.acquire(blocking=False):
            pass
        self._my_lock.release()
        handed_back = handoff.acquire(timeout=max(timeout, 0.0))
        if handed_back:
            self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            self._mark_stuck(timeout)
            if not handed_back:
                # Keep the scheduler-holds-the-handoff invariant for the
                # next kill even though this thread never handed it back.
                handoff.acquire(blocking=False)

    def _mark_stuck(self, timeout: float) -> None:
        self.stuck_host_thread = True
        warnings.warn(
            f"goroutine {self.gid} ({self.name}): host thread did not "
            f"unwind within {timeout:g}s after kill; the thread is stuck "
            "and will be abandoned (user code may be swallowing the "
            "Killed signal or blocking outside the simulator)",
            RuntimeWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------
    # Goroutine-side API (called on the goroutine's own host)
    # ------------------------------------------------------------------

    def yield_to_scheduler(self) -> None:
        """Give the token back and park until we are resumed.

        The scheduler's continuation runs right here, on this host: it
        either hands the token straight to the next goroutine (one OS
        switch), wakes the main loop (timers/termination), or — when the
        RNG picked *us* again — tells us to keep running without parking
        at all (zero switches).
        """
        if self._sched._handback(self, terminal=False) != "self":
            self._my_lock.acquire()
        if self._killed:
            raise Killed()
        if self.pending_error is not None:
            error = self.pending_error
            self.pending_error = None
            raise error

    # ------------------------------------------------------------------

    def _execute(self) -> None:
        """Run the user function and classify how it ended (backend-shared)."""
        try:
            if self._killed:
                raise Killed()
            self.result = self.fn(*self.args)
            self.state = GState.DONE
        except Killed:
            self.state = GState.KILLED
        except GoPanic as exc:
            self.state = GState.PANICKED
            self.panic_value = exc
            self.panic_traceback = traceback.format_exc()
        except BaseException as exc:  # host-level bug in user code
            self.state = GState.PANICKED
            self.panic_value = exc
            self.panic_traceback = traceback.format_exc()

    def _run(self) -> None:
        # Park until the scheduler first hands us the token.
        self._my_lock.acquire()
        try:
            self._execute()
        finally:
            # Final token return: run the continuation once more so the
            # terminal state is recorded and the token moves on (to the
            # next goroutine directly, or back to the main loop).
            self._sched._handback(self, terminal=True)

    def on_current_host(self) -> bool:
        """True when the calling code is running on this goroutine's own
        host (thread/continuation) — i.e. it is safe to park it from here.
        Used by teardown to suspend a dying host that swallowed ``Killed``
        and re-entered the runtime."""
        return self._thread is not None and self._thread is threading.current_thread()

    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable one-liner used in deadlock and leak reports."""
        where = f" at {self.creation_site}" if self.creation_site else ""
        reason = f" [{self.block_reason}]" if self.block_reason else ""
        return f"goroutine {self.gid} ({self.name}){where}: {self.state}{reason}"

    def __repr__(self) -> str:
        return f"<Goroutine {self.gid} {self.name} {self.state}>"


class GreenletGoroutine(Goroutine):
    """A goroutine hosted on a greenlet instead of an OS thread.

    All goroutines (and the scheduler) share one OS thread; ``resume`` /
    ``yield_to_scheduler`` become userspace stack switches, eliminating the
    two lock operations and the kernel context switch per scheduling step.
    Requires the optional :mod:`greenlet` package (``HAS_GREENLET``).
    """

    __slots__ = ("_glet", "_hub")

    def __init__(self, *args: Any, hub: Any = None, **kwargs: Any):
        super().__init__(*args, **kwargs)
        #: The scheduler's own greenlet: the parent every goroutine greenlet
        #: returns to when it finishes or yields.
        self._hub = hub
        self._glet: Any = None

    # -- scheduler side -------------------------------------------------

    def start(self) -> None:
        if _greenlet is None:  # pragma: no cover - guarded by the scheduler
            raise RuntimeError("greenlet backend requested but the greenlet "
                               "package is not installed")
        # parent=hub: when the goroutine finishes, control returns to the
        # scheduler's greenlet no matter which goroutine spawned it.
        self._glet = _greenlet.greenlet(self._execute, parent=self._hub)
        self.state = GState.RUNNABLE

    def resume(self) -> None:
        self.state = GState.RUNNING
        self._glet.switch()

    def kill(self, join_timeout: Optional[float] = None) -> None:
        """Unwind the goroutine's greenlet by raising ``Killed`` inside it.

        ``join_timeout`` is accepted for interface parity but unused: a
        greenlet unwinds synchronously inside ``throw`` — unless user code
        swallows the signal and yields again, which is recorded as a stuck
        host exactly like a thread that outlives its join.
        """
        if self.state in GState.TERMINAL or self._glet is None:
            return
        self._killed = True
        # Two attempts: the first throw unwinds well-behaved code; a second
        # covers a handler that swallowed Killed once.  After that the
        # goroutine is stuck by the same definition the thread backend uses.
        for _ in range(2):
            if self._glet.dead:
                break
            self._glet.throw(Killed)
            if self._glet.dead or self.state in GState.TERMINAL:
                break
        else:
            timeout = HOST_JOIN_TIMEOUT if join_timeout is None else join_timeout
            self._mark_stuck(timeout)
            return
        if self.state not in GState.TERMINAL:
            # Killed before its first resume: the body never ran, so
            # ``_execute`` never classified the exit.
            self.state = GState.KILLED

    def on_current_host(self) -> bool:
        return (self._glet is not None
                and _greenlet.getcurrent() is self._glet)

    # -- goroutine side -------------------------------------------------

    def yield_to_scheduler(self) -> None:
        self._hub.switch()
        if self._killed:
            raise Killed()
        if self.pending_error is not None:
            error = self.pending_error
            self.pending_error = None
            raise error


class TaskletGoroutine(Goroutine):
    """A goroutine hosted on an in-tree C continuation (``_ctasklet``).

    Semantically identical to :class:`GreenletGoroutine` — all goroutines
    share the scheduler's OS thread and the handoff is a userspace stack
    switch — but carried by ``repro.runtime._ext._ctasklet`` instead of the
    optional greenlet package, so the coroutine core works out of the box
    on CPython 3.11 / x86-64 Linux with nothing but a C compiler.
    """

    __slots__ = ("_tk", "_hub")

    def __init__(self, *args: Any, hub: Any = None, **kwargs: Any):
        super().__init__(*args, **kwargs)
        #: The scheduler's own tasklet (the thread's main continuation):
        #: the parent every goroutine tasklet returns to when it finishes.
        self._hub = hub
        self._tk: Any = None

    # -- scheduler side -------------------------------------------------

    def start(self) -> None:
        mod = tasklet_module()
        if mod is None:  # pragma: no cover - guarded by backend resolution
            raise RuntimeError("tasklet backend requested but the _ctasklet "
                               "extension is not available on this platform")
        self._tk = mod.Tasklet(self._execute, self._hub)
        self.state = GState.RUNNABLE

    def resume(self) -> None:
        self.state = GState.RUNNING
        self._tk.switch()

    def kill(self, join_timeout: Optional[float] = None) -> None:
        """Unwind the goroutine's continuation by raising ``Killed`` inside
        it (same two-attempt policy as the greenlet vehicle; a continuation
        that swallows both is recorded as a stuck host and its stack is
        abandoned, mirroring an OS thread that outlives its join)."""
        if self.state in GState.TERMINAL or self._tk is None:
            return
        self._killed = True
        for _ in range(2):
            if self._tk.dead:
                break
            self._tk.throw(Killed)
            if self._tk.dead or self.state in GState.TERMINAL:
                break
        else:
            timeout = HOST_JOIN_TIMEOUT if join_timeout is None else join_timeout
            self._mark_stuck(timeout)
            return
        if self.state not in GState.TERMINAL:
            # Killed before its first resume: the body never ran, so
            # ``_execute`` never classified the exit.
            self.state = GState.KILLED

    def on_current_host(self) -> bool:
        return (self._tk is not None
                and tasklet_module().current() is self._tk)

    # -- goroutine side -------------------------------------------------

    def yield_to_scheduler(self) -> None:
        self._hub.switch()
        if self._killed:
            raise Killed()
        if self.pending_error is not None:
            error = self.pending_error
            self.pending_error = None
            raise error


class GeneratorGoroutine(Goroutine):
    """A goroutine whose body is a *generator function*, trampolined by the
    scheduler: every ``yield`` is a voluntary schedule point.

    This is the pure-Python continuation vehicle — no OS thread, no C
    extension, works on any interpreter.  The restriction is structural:
    a generator can only suspend its own frame, so a generator-backed body
    must not call blocking primitives (``chan.send``, ``mutex.lock``, ...)
    or ``rt.gosched()`` — it yields instead.  The scheduler only picks this
    vehicle (under ``backend="generator"``) for bodies that *are* generator
    functions; plain functions ride thread-compat hosts in the same run.
    """

    __slots__ = ("_gen",)

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._gen: Any = None

    # -- scheduler side -------------------------------------------------

    def start(self) -> None:
        self.state = GState.RUNNABLE

    def resume(self) -> None:
        """Drive the generator one step, in the caller's (scheduler) frame.

        Unlike the stack-switching vehicles there is no separate host to
        transfer to, so exit classification (``_execute``'s job elsewhere)
        happens inline here.
        """
        self.state = GState.RUNNING
        try:
            if self._gen is None:
                if self._killed:
                    raise Killed()
                self._gen = self.fn(*self.args)
            if self._killed:
                self._gen.throw(Killed)
            elif self.pending_error is not None:
                error = self.pending_error
                self.pending_error = None
                self._gen.throw(error)
            else:
                next(self._gen)
            # Yielded: state stays RUNNING so the loop records a voluntary
            # schedule point (exactly like yield_to_scheduler elsewhere).
        except StopIteration as stop:
            self.result = stop.value
            self.state = GState.DONE
        except Killed:
            self.state = GState.KILLED
        except GoPanic as exc:
            self.state = GState.PANICKED
            self.panic_value = exc
            self.panic_traceback = traceback.format_exc()
        except BaseException as exc:
            self.state = GState.PANICKED
            self.panic_value = exc
            self.panic_traceback = traceback.format_exc()

    def kill(self, join_timeout: Optional[float] = None) -> None:
        if self.state in GState.TERMINAL:
            return
        self._killed = True
        if self._gen is None:
            self.state = GState.KILLED
            return
        for _ in range(2):
            try:
                self._gen.throw(Killed)
            except StopIteration as stop:
                self.result = stop.value
                self.state = GState.DONE
                return
            except Killed:
                self.state = GState.KILLED
                return
            except BaseException as exc:
                self.state = GState.PANICKED
                self.panic_value = exc
                self.panic_traceback = traceback.format_exc()
                return
            # throw() returned: the generator swallowed Killed and yielded
            # again — one more attempt, then it is stuck by the standard
            # definition (nothing to abandon: dropping the generator is safe).
        timeout = HOST_JOIN_TIMEOUT if join_timeout is None else join_timeout
        self._mark_stuck(timeout)

    def on_current_host(self) -> bool:
        # A generator has no separate host to park; resume() drives it in
        # the scheduler's own frame, so parking from here is impossible.
        return False

    # -- goroutine side -------------------------------------------------

    def yield_to_scheduler(self) -> None:
        raise SchedulerStateError(
            f"goroutine {self.gid} ({self.name}) is generator-backed: its "
            "body must use a bare `yield` as the schedule point and cannot "
            "call blocking primitives or gosched() (only the thread, "
            "greenlet and tasklet vehicles can suspend nested frames)"
        )
