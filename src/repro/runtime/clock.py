"""Virtual time.

The simulator never consults the wall clock.  A :class:`VirtualClock` owns
"now" and a heap of pending timers; when the scheduler finds no runnable
goroutine it advances the clock to the earliest deadline and fires the timer
callbacks.  This makes every timeout-dependent bug in the corpus (Figure 1's
``time.After`` race, Figure 12's ``Timer(0)``, ``context.WithTimeout``)
deterministic and instantaneous.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class TimerHandle:
    """A cancellable entry in the virtual-clock timer heap."""

    __slots__ = ("deadline", "callback", "cancelled", "seq")

    def __init__(self, deadline: float, seq: int, callback: Callable[[], None]):
        self.deadline = deadline
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> bool:
        """Cancel the timer.  Returns True if it had not fired/cancelled yet."""
        if self.cancelled:
            return False
        self.cancelled = True
        return True


class VirtualClock:
    """Discrete-event virtual clock with a cancellable timer heap."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: List[Tuple[float, int, TimerHandle]] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def call_at(self, deadline: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to run when the clock reaches ``deadline``.

        Deadlines in the past fire on the next scheduler idle point.
        """
        handle = TimerHandle(max(deadline, self._now), next(self._seq), callback)
        heapq.heappush(self._heap, (handle.deadline, handle.seq, handle))
        return handle

    def call_after(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        return self.call_at(self._now + max(delay, 0.0), callback)

    def next_deadline(self) -> Optional[float]:
        """Earliest pending (non-cancelled) deadline, or None."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def has_pending(self) -> bool:
        return self.next_deadline() is not None

    def advance_to_next(self) -> List[TimerHandle]:
        """Jump to the earliest deadline and pop every timer due at it.

        Returns the fired handles (callbacks are *not* run here; the
        scheduler runs them so it can interleave wakeups correctly).
        """
        deadline = self.next_deadline()
        if deadline is None:
            return []
        self._now = max(self._now, deadline)
        return self._pop_due()

    def advance(self, delta: float) -> List[TimerHandle]:
        """Advance the clock by ``delta`` and pop every timer now due."""
        self._now += max(delta, 0.0)
        return self._pop_due()

    def _pop_due(self) -> List[TimerHandle]:
        due: List[TimerHandle] = []
        while self._heap and self._heap[0][0] <= self._now:
            _, _, handle = heapq.heappop(self._heap)
            if not handle.cancelled:
                handle.cancelled = True  # a fired timer cannot be cancelled
                due.append(handle)
        return due

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
