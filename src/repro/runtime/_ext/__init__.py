"""Optional compiled accelerators for the repro runtime.

Two hand-written CPython extensions live here:

- ``_ctasklet`` — single-threaded stack-switching continuations (a minimal
  greenlet), used as the default goroutine vehicle when greenlet itself is
  not installed.  CPython 3.11 / x86-64 Linux only.
- ``_hotloop`` — the fused per-step scheduler loop plus a bit-identical
  MT19937 ``BatchedRandom`` and array-backed vector clocks.

Both are compiled lazily with the system C compiler on first import and
cached next to the sources (or under ``REPRO_EXT_CACHE`` when the tree is
read-only).  Everything is gated: when the toolchain, platform, or Python
version doesn't match, the accessors return ``None`` and callers fall back
to pure-Python implementations with identical observable behaviour.

Set ``REPRO_NO_CEXT=1`` to force the pure-Python paths (used by the
compiled-vs-pure parity tests and as an escape hatch).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import sysconfig
import types
from typing import Optional

_EXT_DIR = os.path.dirname(os.path.abspath(__file__))

# module name -> cached module, False = tried and failed, None = not tried
_loaded: dict = {}


def _disabled() -> bool:
    return os.environ.get("REPRO_NO_CEXT", "") not in ("", "0")


def _platform_ok(name: str) -> bool:
    if sys.platform != "linux":
        return False
    if sys.implementation.name != "cpython":
        return False
    if name == "_ctasklet":
        # Stack switching is version- and ABI-specific.
        import platform

        if sys.version_info[:2] != (3, 11):
            return False
        if platform.machine() not in ("x86_64", "AMD64"):
            return False
    return True


def _cache_dir() -> str:
    override = os.environ.get("REPRO_EXT_CACHE")
    if override:
        os.makedirs(override, exist_ok=True)
        return override
    return _EXT_DIR


def _so_path(name: str, src: str) -> Optional[str]:
    """Cache path for the built .so, keyed on the *content* of the source.

    A short sha256 of the .c file rides in the filename, so a cache
    directory shared across machines or CI jobs (``REPRO_EXT_CACHE``) is
    correct by construction: a source change produces a different name and
    a stale cache entry can never be picked up, regardless of checkout
    mtimes.
    """
    try:
        with open(src, "rb") as f:
            digest = hashlib.sha256(f.read()).hexdigest()[:12]
    except OSError:
        return None
    tag = f"cpython-{sys.version_info[0]}{sys.version_info[1]}"
    return os.path.join(_cache_dir(), f"{name}.{digest}.{tag}-{sys.platform}.so")


def _compile(name: str) -> Optional[str]:
    """Compile ``<name>.c`` into a cached .so; return its path or None."""
    src = os.path.join(_EXT_DIR, f"{name}.c")
    if not os.path.exists(src):
        return None
    so = _so_path(name, src)
    if so is None:
        return None
    if os.path.exists(so):
        return so
    cc = os.environ.get("CC") or "cc"
    include = sysconfig.get_path("include")
    tmp = so + f".tmp{os.getpid()}"
    cmd = [
        cc,
        "-O2",
        "-g0",
        "-fPIC",
        "-shared",
        "-fno-strict-aliasing",
        f"-I{include}",
        src,
        "-o",
        tmp,
    ]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120, check=False
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return None
    try:
        os.replace(tmp, so)  # atomic: concurrent builders race harmlessly
    except OSError:
        return None
    return so


def _import_so(name: str, so: str) -> Optional[types.ModuleType]:
    import importlib.util

    spec = importlib.util.spec_from_file_location(name, so)
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception:
        return None
    return module


def load_ext(name: str) -> Optional[types.ModuleType]:
    """Load a compiled extension by name, building it if needed.

    Returns None (and remembers the failure) when disabled, unsupported,
    or the build doesn't work here.
    """
    cached = _loaded.get(name)
    if cached is not None:
        return cached if cached is not False else None
    if _disabled() or not _platform_ok(name):
        _loaded[name] = False
        return None
    so = _compile(name)
    module = _import_so(name, so) if so else None
    _loaded[name] = module if module is not None else False
    return module


def get_ctasklet() -> Optional[types.ModuleType]:
    return load_ext("_ctasklet")


def get_hotloop() -> Optional[types.ModuleType]:
    return load_ext("_hotloop")
