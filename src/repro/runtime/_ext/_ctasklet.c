/* _ctasklet: minimal single-threaded stack-switching continuations.
 *
 * The coroutine scheduler backend (repro.runtime) wants greenlet semantics
 * -- suspend an arbitrary plain-Python call stack and resume it later, all
 * on one OS thread -- without depending on the optional greenlet package.
 * This module implements exactly the slice of greenlet the scheduler uses:
 *
 *   current()                 -> the thread's main tasklet (its original stack)
 *   Tasklet(target, parent)   -> a new continuation running ``target()``
 *   t.switch()                -> transfer control to ``t`` until it yields back
 *   t.throw(exc)              -> resume ``t`` with ``exc`` raised at its
 *                                suspension point (used for Killed unwinding)
 *
 * Supported platform: CPython 3.11, x86-64 System V (Linux).  The build is
 * gated (see repro/runtime/_ext/build.py): anywhere else the scheduler falls
 * back to generator or thread hosts with identical schedules.
 *
 * How a switch works
 * ------------------
 * Each continuation owns a private mmap'd C stack (plus a PROT_NONE guard
 * page).  A switch saves the callee-saved registers and the stack pointer,
 * then the pieces of ``PyThreadState`` that CPython 3.11 threads through the
 * C stack or scopes per logical "coroutine":
 *
 *   - ``cframe``                       (chain of _PyCFrame on the C stack)
 *   - ``datastack_chunk/top/limit``    (the Python frame bump allocator;
 *                                       each continuation gets its own chunks)
 *   - ``exc_info`` / ``exc_state``     (the active-except stack)
 *   - ``recursion_remaining``          (depth accounting)
 *   - ``trash_delete_nesting/later``   (trashcan state, for symmetry)
 *
 * and finally swaps %rsp.  All switches stay on one OS thread holding the
 * GIL throughout, so no locking is involved anywhere.
 *
 * A continuation that runs to completion pops all its Python frames, which
 * frees its datastack chunks; its C stack is recycled through a small
 * free list.  A continuation abandoned while suspended (user code swallowed
 * the Killed signal -- the "stuck host" case) leaks its stack by design,
 * mirroring the abandoned-OS-thread behaviour of the thread backend.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>
#include <sys/mman.h>

#if !defined(__x86_64__) || !defined(__linux__)
#error "_ctasklet only supports x86-64 Linux"
#endif
#if PY_VERSION_HEX < 0x030b0000 || PY_VERSION_HEX >= 0x030c0000
#error "_ctasklet only supports CPython 3.11"
#endif

/* ------------------------------------------------------------------ */
/* The raw stack switch (x86-64 SysV).                                 */
/* ------------------------------------------------------------------ */

/* void _tk_slp_switch(void **save_sp, void *restore_sp)
 *
 * Pushes the callee-saved registers and the FPU/SSE control words onto the
 * current stack, publishes %rsp through *save_sp, installs restore_sp and
 * pops the same image.  ``ret`` then resumes whatever the restored stack
 * was doing -- either the matching _tk_slp_switch call of a previously
 * suspended continuation, or the bootstrap image built by tk_new_stack(). */
__asm__(
    ".text\n"
    ".globl _tk_slp_switch\n"
    ".hidden _tk_slp_switch\n"
    ".type _tk_slp_switch,@function\n"
    "_tk_slp_switch:\n"
    "    pushq %rbp\n"
    "    pushq %rbx\n"
    "    pushq %r12\n"
    "    pushq %r13\n"
    "    pushq %r14\n"
    "    pushq %r15\n"
    "    subq  $16, %rsp\n"
    "    stmxcsr 8(%rsp)\n"
    "    fnstcw  12(%rsp)\n"
    "    movq  %rsp, (%rdi)\n"
    "    movq  %rsi, %rsp\n"
    "    ldmxcsr 8(%rsp)\n"
    "    fldcw   12(%rsp)\n"
    "    addq  $16, %rsp\n"
    "    popq  %r15\n"
    "    popq  %r14\n"
    "    popq  %r13\n"
    "    popq  %r12\n"
    "    popq  %rbx\n"
    "    popq  %rbp\n"
    "    ret\n"
    ".size _tk_slp_switch,.-_tk_slp_switch\n");

extern void _tk_slp_switch(void **save_sp, void *restore_sp);

/* ------------------------------------------------------------------ */
/* Tasklet object                                                      */
/* ------------------------------------------------------------------ */

enum { TK_NEW = 0, TK_STARTED = 1, TK_DEAD = 2 };

/* Marker for "exc_info pointed at the thread state's own base item". */
#define TK_EXC_BASE ((_PyErr_StackItem *)1)

typedef struct TaskletObject {
    PyObject_HEAD
    struct TaskletObject *parent;   /* strong ref; NULL only for main     */
    PyObject *target;               /* strong ref; cleared after it runs  */
    PyThreadState *tstate;          /* owning thread                      */

    void *stack_mem;                /* mmap base, NULL for main           */
    size_t stack_map_size;
    void *sp;                       /* saved %rsp while suspended         */

    /* Saved per-continuation PyThreadState slice while suspended. */
    _PyCFrame *cframe;
    _PyStackChunk *datastack_chunk;
    PyObject **datastack_top;
    PyObject **datastack_limit;
    _PyErr_StackItem *exc_info;
    _PyErr_StackItem exc_state;
    int recursion_remaining;
    int trash_delete_nesting;
    PyObject *trash_delete_later;

    /* Exception to deliver at the next resume (throw / kill). */
    PyObject *pend_type;
    PyObject *pend_value;

    int state;
} TaskletObject;

static PyTypeObject Tasklet_Type;

/* All switching state is per OS thread; the scheduler is single-threaded
 * by construction but test suites may drive independent runs from several
 * threads, so keep it honest with thread locals. */
static __thread TaskletObject *tk_current = NULL;   /* strong ref */
static __thread TaskletObject *tk_handover = NULL;  /* ref the resumed side drops */
static __thread TaskletObject *tk_boot = NULL;      /* tasklet being bootstrapped */

/* Default usable stack: C-stack consumption per Python frame is tiny in
 * 3.11 (frames live on the datastack), so this mostly bounds C-mediated
 * recursion (builtins calling back into Python). */
static size_t tk_stack_size = 512 * 1024;
#define TK_GUARD_SIZE 4096

/* Recycled stacks (all tk_stack_size-sized).  Spawn-heavy simulations
 * create and retire goroutines constantly; recycling keeps that off the
 * mmap/munmap path. */
#define TK_FREELIST_MAX 64
static __thread void *tk_freelist[TK_FREELIST_MAX];
static __thread int tk_freelist_len = 0;

/* ------------------------------------------------------------------ */
/* PyThreadState slice save/restore                                    */
/* ------------------------------------------------------------------ */

static void
tk_save_py_state(TaskletObject *t, PyThreadState *ts)
{
    t->cframe = ts->cframe;
    t->datastack_chunk = ts->datastack_chunk;
    t->datastack_top = ts->datastack_top;
    t->datastack_limit = ts->datastack_limit;
    t->exc_info = (ts->exc_info == &ts->exc_state) ? TK_EXC_BASE : ts->exc_info;
    t->exc_state = ts->exc_state;
    t->recursion_remaining = ts->recursion_remaining;
    t->trash_delete_nesting = ts->trash_delete_nesting;
    t->trash_delete_later = ts->trash_delete_later;
}

static void
tk_restore_py_state(TaskletObject *t, PyThreadState *ts)
{
    ts->cframe = t->cframe;
    ts->datastack_chunk = t->datastack_chunk;
    ts->datastack_top = t->datastack_top;
    ts->datastack_limit = t->datastack_limit;
    ts->exc_state = t->exc_state;
    ts->exc_info = (t->exc_info == TK_EXC_BASE) ? &ts->exc_state : t->exc_info;
    ts->recursion_remaining = t->recursion_remaining;
    ts->trash_delete_nesting = t->trash_delete_nesting;
    ts->trash_delete_later = t->trash_delete_later;
}

static void
tk_fresh_py_state(PyThreadState *ts)
{
    /* What a brand-new logical coroutine starts from: the root cframe, no
     * datastack chunks yet (CPython allocates on first frame push), an
     * empty except stack, and the recursion allowance it inherits. */
    ts->cframe = &ts->root_cframe;
    ts->datastack_chunk = NULL;
    ts->datastack_top = NULL;
    ts->datastack_limit = NULL;
    ts->exc_state.exc_value = NULL;
    ts->exc_state.previous_item = NULL;
    ts->exc_info = &ts->exc_state;
    ts->trash_delete_nesting = 0;
    ts->trash_delete_later = NULL;
    /* recursion_remaining: inherited (left untouched). */
}

/* ------------------------------------------------------------------ */
/* Stacks                                                              */
/* ------------------------------------------------------------------ */

static void *
tk_alloc_stack(size_t *map_size_out)
{
    size_t map_size = tk_stack_size + TK_GUARD_SIZE;
    void *base;
    if (tk_freelist_len > 0) {
        base = tk_freelist[--tk_freelist_len];
        *map_size_out = map_size;
        return base;
    }
    base = mmap(NULL, map_size, PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) {
        PyErr_NoMemory();
        return NULL;
    }
    mprotect(base, TK_GUARD_SIZE, PROT_NONE);  /* low-address guard page */
    *map_size_out = map_size;
    return base;
}

static void
tk_release_stack(void *base, size_t map_size)
{
    if (base == NULL)
        return;
    if (tk_freelist_len < TK_FREELIST_MAX && map_size == tk_stack_size + TK_GUARD_SIZE) {
        tk_freelist[tk_freelist_len++] = base;
        return;
    }
    munmap(base, map_size);
}

/* ------------------------------------------------------------------ */
/* The transfer                                                        */
/* ------------------------------------------------------------------ */

static void tk_entry(void);

/* Build the bootstrap stack image _tk_slp_switch() will "resume": the
 * saved-register area plus a return address pointing at tk_entry, laid out
 * so tk_entry starts with standard call alignment (%rsp % 16 == 8). */
static void *
tk_bootstrap_sp(TaskletObject *t)
{
    uintptr_t top = ((uintptr_t)t->stack_mem + t->stack_map_size) & ~(uintptr_t)15;
    uint64_t *slots = (uint64_t *)top;
    unsigned int mxcsr = 0;
    unsigned short fcw = 0;
    __asm__ volatile("stmxcsr %0" : "=m"(mxcsr));
    __asm__ volatile("fnstcw %0" : "=m"(fcw));

    slots[-1] = 0;                       /* fake return address for tk_entry */
    slots[-2] = (uint64_t)&tk_entry;     /* ``ret`` target                   */
    slots[-3] = 0;                       /* rbp */
    slots[-4] = 0;                       /* rbx */
    slots[-5] = 0;                       /* r12 */
    slots[-6] = 0;                       /* r13 */
    slots[-7] = 0;                       /* r14 */
    slots[-8] = 0;                       /* r15 */
    slots[-9] = 0;                       /* fpu area high half (fcw at +12)  */
    slots[-10] = 0;                      /* fpu area low  half (mxcsr at +8) */
    memcpy((char *)&slots[-10] + 8, &mxcsr, sizeof(mxcsr));
    memcpy((char *)&slots[-10] + 12, &fcw, sizeof(fcw));
    return (void *)&slots[-10];
}

/* Code that runs immediately after control arrives in a (re)entered
 * continuation: drop the previous current's handover reference, then
 * surface any pending thrown exception.  Returns -1 with an exception set
 * when a throw was delivered. */
static int
tk_arrived(void)
{
    TaskletObject *dropped = tk_handover;
    tk_handover = NULL;
    Py_XDECREF(dropped);
    TaskletObject *self = tk_current;
    if (self != NULL && self->pend_type != NULL) {
        PyObject *type = self->pend_type;
        PyObject *value = self->pend_value;
        self->pend_type = NULL;
        self->pend_value = NULL;
        PyErr_SetObject(type, value);
        Py_DECREF(type);
        Py_XDECREF(value);
        return -1;
    }
    return 0;
}

/* Switch from ``cur`` (the running continuation) to ``target``.
 * Returns -1 with an exception set when, on resumption, a thrown exception
 * is pending for ``cur``.  ``dying`` marks the terminal switch out of a
 * finished continuation (its own state is discarded, not saved). */
static int
tk_transfer(TaskletObject *cur, TaskletObject *target, int dying)
{
    PyThreadState *ts = cur->tstate;

    if (!dying)
        tk_save_py_state(cur, ts);

    /* Hand the current-tasklet reference to the side that resumes next. */
    Py_INCREF(target);
    tk_current = target;
    tk_handover = cur;

    if (target->state == TK_NEW) {
        int recursion = ts->recursion_remaining;
        tk_fresh_py_state(ts);
        ts->recursion_remaining = recursion;
        target->state = TK_STARTED;
        tk_boot = target;
        _tk_slp_switch(&cur->sp, tk_bootstrap_sp(target));
    }
    else {
        tk_restore_py_state(target, ts);
        _tk_slp_switch(&cur->sp, target->sp);
    }
    /* Someone switched back into ``cur``: its PyThreadState slice was
     * restored by that switcher; finish the protocol on this side. */
    return tk_arrived();
}

static void
tk_entry(void)
{
    TaskletObject *self = tk_boot;
    tk_boot = NULL;
    if (tk_arrived() < 0) {
        /* A throw was delivered before the target ever ran; the Python
         * layer treats this as killed-before-start.  Nothing to unwind. */
        PyErr_Clear();
    }
    else if (self->target != NULL) {
        PyObject *result = PyObject_CallNoArgs(self->target);
        if (result == NULL) {
            /* The scheduler always passes a catch-all wrapper, so an escaped
             * exception is a bug in the embedding -- report, don't crash. */
            PyErr_WriteUnraisable(self->target);
        }
        else {
            Py_DECREF(result);
        }
    }
    Py_CLEAR(self->target);
    Py_CLEAR(self->pend_type);
    Py_CLEAR(self->pend_value);
    self->state = TK_DEAD;

    TaskletObject *parent = self->parent;
    while (parent != NULL && parent->state == TK_DEAD)
        parent = parent->parent;
    /* parent chains always end at the immortal main tasklet */
    tk_transfer(self, parent, 1);
    /* unreachable: nothing ever switches back into a dead tasklet */
    Py_FatalError("_ctasklet: resumed a dead continuation");
}

/* ------------------------------------------------------------------ */
/* Python-facing type                                                  */
/* ------------------------------------------------------------------ */

static TaskletObject *
tk_new_object(void)
{
    TaskletObject *t = PyObject_New(TaskletObject, &Tasklet_Type);
    if (t == NULL)
        return NULL;
    t->parent = NULL;
    t->target = NULL;
    t->tstate = PyThreadState_Get();
    t->stack_mem = NULL;
    t->stack_map_size = 0;
    t->sp = NULL;
    t->pend_type = NULL;
    t->pend_value = NULL;
    t->state = TK_NEW;
    memset(&t->exc_state, 0, sizeof(t->exc_state));
    return t;
}

/* The thread's main tasklet: represents the original C stack.  Created on
 * demand, kept alive for the thread's lifetime via the tk_current ref. */
static TaskletObject *
tk_get_current(void)
{
    if (tk_current == NULL) {
        TaskletObject *main_t = tk_new_object();
        if (main_t == NULL)
            return NULL;
        main_t->state = TK_STARTED;
        tk_current = main_t;  /* strong ref stays here */
    }
    return tk_current;
}

static PyObject *
mod_current(PyObject *module, PyObject *noargs)
{
    TaskletObject *cur = tk_get_current();
    if (cur == NULL)
        return NULL;
    Py_INCREF(cur);
    return (PyObject *)cur;
}

static PyObject *
tasklet_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"target", "parent", NULL};
    PyObject *target;
    TaskletObject *parent;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO!", kwlist, &target,
                                     &Tasklet_Type, &parent))
        return NULL;
    if (!PyCallable_Check(target)) {
        PyErr_SetString(PyExc_TypeError, "target must be callable");
        return NULL;
    }
    TaskletObject *t = tk_new_object();
    if (t == NULL)
        return NULL;
    t->stack_mem = tk_alloc_stack(&t->stack_map_size);
    if (t->stack_mem == NULL) {
        Py_DECREF(t);
        return NULL;
    }
    Py_INCREF(target);
    t->target = target;
    Py_INCREF(parent);
    t->parent = parent;
    return (PyObject *)t;
}

static int
tk_check_switchable(TaskletObject *self, TaskletObject *cur)
{
    if (self->tstate != cur->tstate) {
        PyErr_SetString(PyExc_RuntimeError,
                        "cannot switch to a tasklet owned by another thread");
        return -1;
    }
    if (self->state == TK_DEAD) {
        PyErr_SetString(PyExc_RuntimeError,
                        "cannot switch to a dead tasklet");
        return -1;
    }
    return 0;
}

static PyObject *
tasklet_switch(TaskletObject *self, PyObject *noargs)
{
    TaskletObject *cur = tk_get_current();
    if (cur == NULL)
        return NULL;
    if (self == cur)
        Py_RETURN_NONE;
    if (tk_check_switchable(self, cur) < 0)
        return NULL;
    if (tk_transfer(cur, self, 0) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
tasklet_throw(TaskletObject *self, PyObject *exc)
{
    TaskletObject *cur = tk_get_current();
    if (cur == NULL)
        return NULL;
    if (self == cur) {
        PyErr_SetString(PyExc_RuntimeError,
                        "a tasklet cannot throw into itself");
        return NULL;
    }
    if (self->state == TK_DEAD)
        Py_RETURN_NONE;  /* nothing left to unwind */
    if (self->state == TK_NEW) {
        /* Killed before it ever ran: no frames exist, just retire it. */
        self->state = TK_DEAD;
        Py_CLEAR(self->target);
        tk_release_stack(self->stack_mem, self->stack_map_size);
        self->stack_mem = NULL;
        Py_RETURN_NONE;
    }
    if (self->tstate != cur->tstate) {
        PyErr_SetString(PyExc_RuntimeError,
                        "cannot throw into a tasklet owned by another thread");
        return NULL;
    }
    PyObject *type, *value;
    if (PyExceptionInstance_Check(exc)) {
        type = (PyObject *)Py_TYPE(exc);
        value = exc;
        Py_INCREF(value);
    }
    else if (PyExceptionClass_Check(exc)) {
        type = exc;
        value = NULL;
    }
    else {
        PyErr_SetString(PyExc_TypeError,
                        "throw() argument must be an exception");
        return NULL;
    }
    Py_INCREF(type);
    Py_XSETREF(self->pend_type, type);
    Py_XSETREF(self->pend_value, value);
    if (tk_transfer(cur, self, 0) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static void
tasklet_dealloc(TaskletObject *self)
{
    if (self->state == TK_STARTED && self->stack_mem != NULL) {
        /* A suspended continuation still owns live Python frames we cannot
         * unwind from here; abandon the stack (the scheduler's kill path
         * prevents this except for deliberately abandoned stuck hosts). */
        self->stack_mem = NULL;
    }
    tk_release_stack(self->stack_mem, self->stack_map_size);
    Py_CLEAR(self->parent);
    Py_CLEAR(self->target);
    Py_CLEAR(self->pend_type);
    Py_CLEAR(self->pend_value);
    PyObject_Free(self);
}

static PyObject *
tasklet_get_dead(TaskletObject *self, void *closure)
{
    return PyBool_FromLong(self->state == TK_DEAD);
}

static PyObject *
tasklet_get_started(TaskletObject *self, void *closure)
{
    return PyBool_FromLong(self->state != TK_NEW);
}

static PyMethodDef tasklet_methods[] = {
    {"switch", (PyCFunction)tasklet_switch, METH_NOARGS,
     "Transfer control to this tasklet until it switches elsewhere."},
    {"throw", (PyCFunction)tasklet_throw, METH_O,
     "Resume this tasklet with the given exception raised at its "
     "suspension point."},
    {NULL},
};

static PyGetSetDef tasklet_getset[] = {
    {"dead", (getter)tasklet_get_dead, NULL, "completed or killed", NULL},
    {"started", (getter)tasklet_get_started, NULL, "ever been switched to", NULL},
    {NULL},
};

static PyTypeObject Tasklet_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_ctasklet.Tasklet",
    .tp_basicsize = sizeof(TaskletObject),
    .tp_dealloc = (destructor)tasklet_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "A single-threaded stack-switching continuation.",
    .tp_methods = tasklet_methods,
    .tp_getset = tasklet_getset,
    .tp_new = tasklet_new,
};

static PyObject *
mod_set_stack_size(PyObject *module, PyObject *arg)
{
    size_t size = PyLong_AsSize_t(arg);
    if (size == (size_t)-1 && PyErr_Occurred())
        return NULL;
    if (size < 64 * 1024) {
        PyErr_SetString(PyExc_ValueError, "stack size must be >= 64 KiB");
        return NULL;
    }
    tk_stack_size = (size + 4095) & ~(size_t)4095;
    Py_RETURN_NONE;
}

static PyMethodDef module_methods[] = {
    {"current", mod_current, METH_NOARGS,
     "The calling thread's main tasklet (created on first use)."},
    {"set_stack_size", mod_set_stack_size, METH_O,
     "Set the usable C-stack size for tasklets created afterwards."},
    {NULL},
};

static struct PyModuleDef ctasklet_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_ctasklet",
    .m_doc = "Minimal stack-switching continuations for the repro scheduler.",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__ctasklet(void)
{
    PyObject *module = PyModule_Create(&ctasklet_module);
    if (module == NULL)
        return NULL;
    if (PyType_Ready(&Tasklet_Type) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    Py_INCREF(&Tasklet_Type);
    if (PyModule_AddObject(module, "Tasklet", (PyObject *)&Tasklet_Type) < 0) {
        Py_DECREF(&Tasklet_Type);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
