/* _hotloop: the compiled per-step scheduler core.
 *
 * Two things live here, both optional accelerations of pure-Python code
 * with bit-identical observable behaviour (asserted by the parity tests):
 *
 *  1. ``BatchedRandom`` — a C MT19937 producing the exact draw sequence of
 *     ``random.Random(seed).randrange(n)`` (CPython's init_by_array seeding
 *     and top-bits rejection sampling), replacing
 *     ``repro.runtime.fastrand.BatchedRandom``.  Because the scheduler, the
 *     ``select`` tie-breaker and the fault injector all share one stream,
 *     the C object is a *drop-in state holder*: Python callers invoke its
 *     ``randrange`` method, the compiled loop below reads the same MT state
 *     directly, and the interleaved sequence is unchanged.
 *
 *  2. ``drive(sched)`` — the fused scheduler loop: stop check, budget,
 *     RNG pick, continuation switch and after-resume bookkeeping with no
 *     Python frames in between.  Only runs when nothing observable differs
 *     from the pure loop: no trace consumer, no injector, no observe hooks,
 *     structured stop conditions, and the scheduler's RNG is the C type
 *     above.  Anything else returns None and the pure loop takes over.
 *
 * Goroutine fields are reached through slot offsets cached from the class
 * ``__slots__`` member descriptors at bind() time — an attribute read is a
 * single pointer load.  The scheduler itself is dict-backed; the loop keeps
 * its counters in C locals and writes them back on every exit path, while
 * ``_current`` (which primitives running *inside* a switched-to goroutine
 * read) is kept accurate step by step.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* MT19937 (CPython-compatible)                                        */
/* ------------------------------------------------------------------ */

#define MT_N 624
#define MT_M 397
#define MT_MATRIX_A 0x9908b0dfU
#define MT_UPPER_MASK 0x80000000U
#define MT_LOWER_MASK 0x7fffffffU

typedef struct {
    PyObject_HEAD
    PyObject *seed;          /* the seed object handed to __init__ */
    uint32_t mt[MT_N];
    int mti;
} BatchedRandomObject;

static void
mt_init_genrand(BatchedRandomObject *self, uint32_t s)
{
    int mti;
    self->mt[0] = s;
    for (mti = 1; mti < MT_N; mti++) {
        self->mt[mti] =
            (1812433253U * (self->mt[mti - 1] ^ (self->mt[mti - 1] >> 30)) + mti);
    }
    self->mti = mti;
}

static void
mt_init_by_array(BatchedRandomObject *self, uint32_t *init_key, size_t key_length)
{
    size_t i, j, k;
    mt_init_genrand(self, 19650218U);
    i = 1; j = 0;
    k = (MT_N > key_length ? MT_N : key_length);
    for (; k; k--) {
        self->mt[i] = (self->mt[i] ^
                       ((self->mt[i - 1] ^ (self->mt[i - 1] >> 30)) * 1664525U))
                      + init_key[j] + (uint32_t)j;
        i++; j++;
        if (i >= MT_N) { self->mt[0] = self->mt[MT_N - 1]; i = 1; }
        if (j >= key_length) j = 0;
    }
    for (k = MT_N - 1; k; k--) {
        self->mt[i] = (self->mt[i] ^
                       ((self->mt[i - 1] ^ (self->mt[i - 1] >> 30)) * 1566083941U))
                      - (uint32_t)i;
        i++;
        if (i >= MT_N) { self->mt[0] = self->mt[MT_N - 1]; i = 1; }
    }
    self->mt[0] = 0x80000000U;
}

static uint32_t
mt_genrand(BatchedRandomObject *self)
{
    uint32_t y;
    static const uint32_t mag01[2] = {0U, MT_MATRIX_A};
    uint32_t *mt = self->mt;

    if (self->mti >= MT_N) {
        int kk;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (mt[kk] & MT_UPPER_MASK) | (mt[kk + 1] & MT_LOWER_MASK);
            mt[kk] = mt[kk + MT_M] ^ (y >> 1) ^ mag01[y & 1U];
        }
        for (; kk < MT_N - 1; kk++) {
            y = (mt[kk] & MT_UPPER_MASK) | (mt[kk + 1] & MT_LOWER_MASK);
            mt[kk] = mt[kk + (MT_M - MT_N)] ^ (y >> 1) ^ mag01[y & 1U];
        }
        y = (mt[MT_N - 1] & MT_UPPER_MASK) | (mt[0] & MT_LOWER_MASK);
        mt[MT_N - 1] = mt[MT_M - 1] ^ (y >> 1) ^ mag01[y & 1U];
        self->mti = 0;
    }
    y = mt[self->mti++];
    y ^= (y >> 11);
    y ^= (y << 7) & 0x9d2c5680U;
    y ^= (y << 15) & 0xefc60000U;
    y ^= (y >> 18);
    return y;
}

/* CPython's _randbelow for n with bit_length <= 32: take the top k bits of
 * one MT word, reject until < n.  This is also exactly what the pure
 * BatchedRandom replays from its buffered words. */
static uint32_t
mt_randrange32(BatchedRandomObject *self, uint32_t n)
{
    int k = 32 - __builtin_clz(n);          /* n >= 1 */
    int shift = 32 - k;
    for (;;) {
        uint32_t r = mt_genrand(self) >> shift;
        if (r < n)
            return r;
    }
}

/* ------------------------------------------------------------------ */
/* BatchedRandom type                                                  */
/* ------------------------------------------------------------------ */

static int
br_init(BatchedRandomObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"seed", NULL};
    PyObject *seed = NULL;
    PyObject *index = NULL, *absval = NULL, *bits_obj = NULL, *bytes = NULL;
    uint32_t *key = NULL;
    int rc = -1;

    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O", kwlist, &seed))
        return -1;
    if (seed == NULL) {
        seed = PyLong_FromLong(0);
        if (seed == NULL)
            return -1;
    }
    else {
        Py_INCREF(seed);
    }

    index = PyNumber_Index(seed);
    if (index == NULL)
        goto done;
    absval = PyNumber_Absolute(index);
    if (absval == NULL)
        goto done;
    bits_obj = PyObject_CallMethod(absval, "bit_length", NULL);
    if (bits_obj == NULL)
        goto done;
    {
        Py_ssize_t bits = PyLong_AsSsize_t(bits_obj);
        if (bits < 0 && PyErr_Occurred())
            goto done;
        /* CPython: key is the absolute value as 32-bit chunks, low first;
         * zero seeds use a single zero chunk. */
        size_t keymax = bits == 0 ? 1 : ((size_t)bits - 1) / 32 + 1;
        key = PyMem_Calloc(keymax, 4);
        if (key == NULL) {
            PyErr_NoMemory();
            goto done;
        }
        bytes = PyObject_CallMethod(absval, "to_bytes", "ns",
                                    (Py_ssize_t)(keymax * 4), "little");
        if (bytes == NULL)
            goto done;
        memcpy(key, PyBytes_AS_STRING(bytes), keymax * 4);
#if PY_BIG_ENDIAN
        for (size_t i = 0; i < keymax; i++) {
            uint32_t w = key[i];
            key[i] = ((w & 0xffU) << 24) | ((w & 0xff00U) << 8) |
                     ((w >> 8) & 0xff00U) | (w >> 24);
        }
#endif
        mt_init_by_array(self, key, keymax);
    }
    Py_XSETREF(self->seed, seed);
    seed = NULL;
    rc = 0;
done:
    PyMem_Free(key);
    Py_XDECREF(bytes);
    Py_XDECREF(bits_obj);
    Py_XDECREF(absval);
    Py_XDECREF(index);
    Py_XDECREF(seed);
    return rc;
}

static void
br_dealloc(BatchedRandomObject *self)
{
    Py_XDECREF(self->seed);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* getrandbits(k): identical value construction to the pure BatchedRandom
 * (32-bit words low-order first, a partial top word takes the word's top
 * bits).  Cold path — only completeness and tests use it. */
static PyObject *
br_getrandbits(BatchedRandomObject *self, PyObject *arg)
{
    Py_ssize_t k = PyLong_AsSsize_t(arg);
    if (k == -1 && PyErr_Occurred())
        return NULL;
    if (k < 0) {
        PyErr_SetString(PyExc_ValueError,
                        "number of bits must be non-negative");
        return NULL;
    }
    if (k == 0)
        return PyLong_FromLong(0);
    if (k <= 32)
        return PyLong_FromUnsignedLong(mt_genrand(self) >> (32 - k));

    Py_ssize_t words = k / 32, rem = k % 32;
    Py_ssize_t total = words + (rem ? 1 : 0);
    uint32_t *buf = PyMem_Malloc((size_t)total * 4);
    if (buf == NULL)
        return PyErr_NoMemory();
    for (Py_ssize_t i = 0; i < words; i++)
        buf[i] = mt_genrand(self);
    if (rem)
        buf[words] = mt_genrand(self) >> (32 - rem);
#if PY_BIG_ENDIAN
    for (Py_ssize_t i = 0; i < total; i++) {
        uint32_t w = buf[i];
        buf[i] = ((w & 0xffU) << 24) | ((w & 0xff00U) << 8) |
                 ((w >> 8) & 0xff00U) | (w >> 24);
    }
#endif
    PyObject *result = _PyLong_FromByteArray((unsigned char *)buf,
                                             (size_t)total * 4, 1, 0);
    PyMem_Free(buf);
    return result;
}

static PyObject *
br_randrange(BatchedRandomObject *self, PyObject *arg)
{
    int overflow = 0;
    long long n = PyLong_AsLongLongAndOverflow(arg, &overflow);
    if (n == -1 && !overflow && PyErr_Occurred())
        return NULL;

    if (!overflow) {
        if (n <= 0) {
            PyErr_SetString(PyExc_ValueError, "empty range for randrange()");
            return NULL;
        }
        if (n <= 0xffffffffLL)
            return PyLong_FromUnsignedLong(
                mt_randrange32(self, (uint32_t)n));
        /* 33..63 bits: two words low-order first, partial top word. */
        {
            uint64_t un = (uint64_t)n;
            int k = 64 - __builtin_clzll(un);
            int rem = k - 32;             /* 1..31 */
            for (;;) {
                uint64_t v = (uint64_t)mt_genrand(self);
                v |= (uint64_t)(mt_genrand(self) >> (32 - rem)) << 32;
                if (v < un)
                    return PyLong_FromUnsignedLongLong(v);
            }
        }
    }
    if (overflow < 0) {
        PyErr_SetString(PyExc_ValueError, "empty range for randrange()");
        return NULL;
    }
    /* Arbitrarily wide n: rejection loop over big-int getrandbits. */
    {
        PyObject *bits_obj = PyObject_CallMethod(arg, "bit_length", NULL);
        if (bits_obj == NULL)
            return NULL;
        for (;;) {
            PyObject *r = br_getrandbits(self, bits_obj);
            if (r == NULL) {
                Py_DECREF(bits_obj);
                return NULL;
            }
            int lt = PyObject_RichCompareBool(r, arg, Py_LT);
            if (lt < 0) {
                Py_DECREF(r);
                Py_DECREF(bits_obj);
                return NULL;
            }
            if (lt) {
                Py_DECREF(bits_obj);
                return r;
            }
            Py_DECREF(r);
        }
    }
}

static PyObject *
br_repr(BatchedRandomObject *self)
{
    return PyUnicode_FromFormat("<BatchedRandom seed=%S>",
                                self->seed ? self->seed : Py_None);
}

static PyMethodDef br_methods[] = {
    {"randrange", (PyCFunction)br_randrange, METH_O,
     "Uniform draw from range(n); CPython's rejection sampling."},
    {"getrandbits", (PyCFunction)br_getrandbits, METH_O,
     "Buffered getrandbits: identical output, word-at-a-time source."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef br_members[] = {
    {"seed", T_OBJECT_EX, offsetof(BatchedRandomObject, seed), 0,
     "the seed this stream was constructed from"},
    {NULL},
};

static PyTypeObject BatchedRandom_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_hotloop.BatchedRandom",
    .tp_basicsize = sizeof(BatchedRandomObject),
    .tp_dealloc = (destructor)br_dealloc,
    .tp_repr = (reprfunc)br_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Drop-in randrange(n) source matching random.Random(seed) "
              "exactly (compiled).",
    .tp_methods = br_methods,
    .tp_members = br_members,
    .tp_init = (initproc)br_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* bind(): cache classes, slot offsets and interned constants          */
/* ------------------------------------------------------------------ */

static int hl_bound = 0;

static PyTypeObject *tk_go_type = NULL;     /* TaskletGoroutine */
static Py_ssize_t off_state = -1;           /* Goroutine.state */
static Py_ssize_t off_ended_at = -1;        /* Goroutine.ended_at */
static Py_ssize_t off_tk = -1;              /* TaskletGoroutine._tk */
static PyObject *switch_meth = NULL;        /* unbound Tasklet.switch */

static PyObject *st_running = NULL, *st_runnable = NULL, *st_done = NULL,
                *st_panicked = NULL, *st_killed = NULL, *terminal_set = NULL;

static PyObject *s_runnable_attr = NULL, *s_rng = NULL, *s_stop_mode = NULL,
                *s_panicked_attr = NULL, *s_budget = NULL, *s_budget_used = NULL,
                *s_steps = NULL, *s_time_limit = NULL, *s_clock = NULL,
                *s_now = NULL, *s_current = NULL, *s_resume = NULL,
                *s_state = NULL, *s_ended_at = NULL;

static PyObject *v_stopped = NULL, *v_timeout = NULL, *v_steps = NULL,
                *v_idle = NULL;

static int
member_offset(PyObject *cls, const char *name, Py_ssize_t *out)
{
    PyObject *descr = PyObject_GetAttrString(cls, name);
    if (descr == NULL)
        return -1;
    if (Py_TYPE(descr) != &PyMemberDescr_Type) {
        Py_DECREF(descr);
        PyErr_Format(PyExc_TypeError,
                     "%s is not a slot member descriptor", name);
        return -1;
    }
    *out = ((PyMemberDescrObject *)descr)->d_member->offset;
    Py_DECREF(descr);
    return 0;
}

static PyObject *
hl_bind(PyObject *module, PyObject *args)
{
    PyObject *goro_cls, *tk_goro_cls, *gstate_cls, *tasklet_cls;
    if (!PyArg_ParseTuple(args, "OOOO",
                          &goro_cls, &tk_goro_cls, &gstate_cls, &tasklet_cls))
        return NULL;
    if (member_offset(goro_cls, "state", &off_state) < 0)
        return NULL;
    if (member_offset(goro_cls, "ended_at", &off_ended_at) < 0)
        return NULL;
    if (member_offset(tk_goro_cls, "_tk", &off_tk) < 0)
        return NULL;
    if (!PyType_Check(tk_goro_cls)) {
        PyErr_SetString(PyExc_TypeError, "expected TaskletGoroutine class");
        return NULL;
    }
    Py_INCREF(tk_goro_cls);
    Py_XSETREF(tk_go_type, (PyTypeObject *)tk_goro_cls);

#define FETCH(dst, name)                                            \
    do {                                                            \
        PyObject *v = PyObject_GetAttrString(gstate_cls, name);     \
        if (v == NULL)                                              \
            return NULL;                                            \
        Py_XSETREF(dst, v);                                         \
    } while (0)
    FETCH(st_running, "RUNNING");
    FETCH(st_runnable, "RUNNABLE");
    FETCH(st_done, "DONE");
    FETCH(st_panicked, "PANICKED");
    FETCH(st_killed, "KILLED");
    FETCH(terminal_set, "TERMINAL");
#undef FETCH

    if (tasklet_cls != Py_None) {
        PyObject *m = PyObject_GetAttrString(tasklet_cls, "switch");
        if (m == NULL)
            return NULL;
        Py_XSETREF(switch_meth, m);
    }
    else {
        Py_CLEAR(switch_meth);
    }
    hl_bound = 1;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* drive(sched)                                                        */
/* ------------------------------------------------------------------ */

static inline PyObject *
slot_get(PyObject *obj, Py_ssize_t off)
{
    return *(PyObject **)((char *)obj + off);   /* borrowed; may be NULL */
}

static inline void
slot_set(PyObject *obj, Py_ssize_t off, PyObject *value)
{
    PyObject **p = (PyObject **)((char *)obj + off);
    PyObject *old = *p;
    Py_INCREF(value);
    *p = value;
    Py_XDECREF(old);
}

static inline int
state_is_terminal(PyObject *st)
{
    if (st == st_done || st == st_panicked || st == st_killed)
        return 1;
    if (st == st_running || st == st_runnable)
        return 0;
    /* Unknown string object (shouldn't happen: states are always GState
     * constants); fall back to a set lookup so behaviour stays correct. */
    return PySet_Contains(terminal_set, st) == 1;
}

static long long
attr_as_longlong(PyObject *obj, PyObject *name, int *err)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL) {
        *err = 1;
        return 0;
    }
    long long out = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (out == -1 && PyErr_Occurred())
        *err = 1;
    return out;
}

/* Remove g from the runnable list by identity (Goroutine defines no __eq__,
 * so this matches ``list.remove`` exactly). */
static void
runnable_remove(PyObject *runnable, PyObject *g)
{
    Py_ssize_t m = PyList_GET_SIZE(runnable);
    for (Py_ssize_t i = 0; i < m; i++) {
        if (PyList_GET_ITEM(runnable, i) == g) {
            PyList_SetSlice(runnable, i, i + 1, NULL);
            return;
        }
    }
}

static PyObject *
hl_drive(PyObject *module, PyObject *sched)
{
    if (!hl_bound) {
        PyErr_SetString(PyExc_RuntimeError, "_hotloop.bind() has not run");
        return NULL;
    }

    PyObject *runnable = NULL, *rng_obj = NULL, *stop_mode = NULL,
             *panicked = NULL, *clock = NULL, *now_obj = NULL,
             *time_limit = NULL;
    PyObject *stop_g = NULL;          /* borrowed from stop_mode */
    BatchedRandomObject *rng = NULL;
    PyObject *verdict = NULL;         /* borrowed from the v_* constants */
    int failed = 0;
    int stop_main = 0;
    int time_exceeded = 0;
    long long budget = 0, budget_used = 0, steps = 0;

    runnable = PyObject_GetAttr(sched, s_runnable_attr);
    if (runnable == NULL || !PyList_CheckExact(runnable))
        goto ineligible;
    rng_obj = PyObject_GetAttr(sched, s_rng);
    if (rng_obj == NULL || Py_TYPE(rng_obj) != &BatchedRandom_Type)
        goto ineligible;
    rng = (BatchedRandomObject *)rng_obj;
    stop_mode = PyObject_GetAttr(sched, s_stop_mode);
    if (stop_mode == NULL || !PyTuple_Check(stop_mode) ||
        PyTuple_GET_SIZE(stop_mode) != 2)
        goto ineligible;
    {
        PyObject *kind = PyTuple_GET_ITEM(stop_mode, 0);
        stop_g = PyTuple_GET_ITEM(stop_mode, 1);
        if (PyUnicode_CompareWithASCIIString(kind, "main") == 0)
            stop_main = 1;
        else if (PyUnicode_CompareWithASCIIString(kind, "panic") == 0)
            stop_main = 0;
        else
            goto ineligible;
        if (stop_main && stop_g == Py_None)
            goto ineligible;
    }

    {
        int err = 0;
        budget = attr_as_longlong(sched, s_budget, &err);
        budget_used = attr_as_longlong(sched, s_budget_used, &err);
        steps = attr_as_longlong(sched, s_steps, &err);
        if (err)
            goto fail_entry;
    }
    panicked = PyObject_GetAttr(sched, s_panicked_attr);
    if (panicked == NULL)
        goto fail_entry;
    clock = PyObject_GetAttr(sched, s_clock);
    if (clock == NULL)
        goto fail_entry;
    now_obj = PyObject_GetAttr(clock, s_now);
    if (now_obj == NULL)
        goto fail_entry;
    time_limit = PyObject_GetAttr(sched, s_time_limit);
    if (time_limit == NULL)
        goto fail_entry;
    if (time_limit != Py_None) {
        double now = PyFloat_AsDouble(now_obj);
        double lim = PyFloat_AsDouble(time_limit);
        if (PyErr_Occurred())
            goto fail_entry;
        time_exceeded = (now >= lim);
    }

    /* ---------------- the loop ---------------- */
    {
        int first = 1;
        for (;;) {
            /* Stop check — same order as the pure _advance. */
            int stop;
            if (stop_main) {
                PyObject *st = slot_get(stop_g, off_state);
                stop = (st != NULL && state_is_terminal(st)) ||
                       (panicked != Py_None);
            }
            else {
                stop = (panicked != Py_None);
            }
            if (stop) { verdict = v_stopped; break; }
            /* The virtual clock is frozen while goroutines run (timers only
             * fire from the idle path, the injector is disabled here), so
             * the time-limit comparison is loop-invariant. */
            if (first) {
                first = 0;
                if (time_exceeded) { verdict = v_timeout; break; }
            }
            if (budget_used >= budget) { verdict = v_steps; break; }
            Py_ssize_t nrun = PyList_GET_SIZE(runnable);
            if (nrun == 0) { verdict = v_idle; break; }
            budget_used++;
            steps++;
            uint32_t idx = mt_randrange32(rng, (uint32_t)nrun);
            PyObject *g = PyList_GET_ITEM(runnable, idx);
            Py_INCREF(g);

            if (Py_TYPE(g) == tk_go_type && switch_meth != NULL) {
                /* Fast path: slot writes + a direct continuation switch
                 * (this is resume() with the Python frames scraped off). */
                slot_set(g, off_state, st_running);
                if (PyObject_SetAttr(sched, s_current, g) < 0) {
                    Py_DECREF(g);
                    failed = 1;
                    break;
                }
                PyObject *tk = slot_get(g, off_tk);
                if (tk == NULL || tk == Py_None) {
                    Py_DECREF(g);
                    PyErr_SetString(PyExc_RuntimeError,
                                    "tasklet goroutine has no continuation");
                    failed = 1;
                    break;
                }
                PyObject *sargs[1] = {tk};
                PyObject *r = PyObject_Vectorcall(switch_meth, sargs, 1, NULL);
                if (r == NULL) {
                    Py_DECREF(g);
                    failed = 1;
                    break;
                }
                Py_DECREF(r);
                PyObject *st = slot_get(g, off_state);
                if (st == st_running) {
                    slot_set(g, off_state, st_runnable);
                }
                else if (st != NULL && state_is_terminal(st)) {
                    runnable_remove(runnable, g);
                    slot_set(g, off_ended_at, now_obj);
                    if (st == st_panicked && panicked == Py_None) {
                        if (PyObject_SetAttr(sched, s_panicked_attr, g) < 0) {
                            Py_DECREF(g);
                            failed = 1;
                            break;
                        }
                        Py_INCREF(g);
                        Py_SETREF(panicked, g);
                    }
                }
                /* BLOCKED: block() already dequeued it before yielding. */
            }
            else {
                /* Generic path (thread-compat hosts, greenlet or generator
                 * vehicles in a centralized run): call resume() and do the
                 * after-resume bookkeeping through ordinary attributes. */
                if (PyObject_SetAttr(sched, s_current, g) < 0) {
                    Py_DECREF(g);
                    failed = 1;
                    break;
                }
                PyObject *rargs[1] = {g};
                PyObject *r = PyObject_VectorcallMethod(s_resume, rargs, 1,
                                                        NULL);
                if (r == NULL) {
                    Py_DECREF(g);
                    failed = 1;
                    break;
                }
                Py_DECREF(r);
                PyObject *st = PyObject_GetAttr(g, s_state);
                if (st == NULL) {
                    Py_DECREF(g);
                    failed = 1;
                    break;
                }
                if (st == st_running) {
                    if (PyObject_SetAttr(g, s_state, st_runnable) < 0) {
                        Py_DECREF(st);
                        Py_DECREF(g);
                        failed = 1;
                        break;
                    }
                }
                else if (state_is_terminal(st)) {
                    runnable_remove(runnable, g);
                    if (PyObject_SetAttr(g, s_ended_at, now_obj) < 0) {
                        Py_DECREF(st);
                        Py_DECREF(g);
                        failed = 1;
                        break;
                    }
                    if (st == st_panicked && panicked == Py_None) {
                        if (PyObject_SetAttr(sched, s_panicked_attr, g) < 0) {
                            Py_DECREF(st);
                            Py_DECREF(g);
                            failed = 1;
                            break;
                        }
                        Py_INCREF(g);
                        Py_SETREF(panicked, g);
                    }
                }
                Py_DECREF(st);
            }
            Py_DECREF(g);
        }
    }

    /* Write the loop-local counters back and clear _current (the pure
     * centralized loop leaves _current None between decisions too). */
    {
        PyObject *exc_type = NULL, *exc_val = NULL, *exc_tb = NULL;
        if (failed)
            PyErr_Fetch(&exc_type, &exc_val, &exc_tb);
        PyObject *bu = PyLong_FromLongLong(budget_used);
        PyObject *stp = PyLong_FromLongLong(steps);
        int wb_failed = (bu == NULL || stp == NULL);
        if (!wb_failed) {
            if (PyObject_SetAttr(sched, s_budget_used, bu) < 0 ||
                PyObject_SetAttr(sched, s_steps, stp) < 0)
                wb_failed = 1;
        }
        if (!failed && !wb_failed &&
            PyObject_SetAttr(sched, s_current, Py_None) < 0)
            wb_failed = 1;
        Py_XDECREF(bu);
        Py_XDECREF(stp);
        if (failed)
            PyErr_Restore(exc_type, exc_val, exc_tb);
        else if (wb_failed)
            failed = 1;
    }

    Py_XDECREF(time_limit);
    Py_XDECREF(now_obj);
    Py_XDECREF(clock);
    Py_XDECREF(panicked);
    Py_XDECREF(stop_mode);
    Py_XDECREF(rng_obj);
    Py_XDECREF(runnable);
    if (failed)
        return NULL;
    Py_INCREF(verdict);
    return verdict;

ineligible:
    /* Static conditions for the compiled loop don't hold for this run:
     * tell Python to use the pure loop (None).  Clear any attribute error
     * raised while probing. */
    PyErr_Clear();
    Py_XDECREF(stop_mode);
    Py_XDECREF(rng_obj);
    Py_XDECREF(runnable);
    Py_RETURN_NONE;

fail_entry:
    Py_XDECREF(time_limit);
    Py_XDECREF(now_obj);
    Py_XDECREF(clock);
    Py_XDECREF(panicked);
    Py_XDECREF(stop_mode);
    Py_XDECREF(rng_obj);
    Py_XDECREF(runnable);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Channel / select / sync fast ops                                    */
/*                                                                     */
/* Compiled bodies for the blocking primitives themselves: channel     */
/* send/recv (buffered and rendezvous), try_send/try_recv, select      */
/* readiness + commit, Mutex and RWMutex.  Unlike drive(), these work  */
/* on every backend: each op re-checks engagement at entry — trace     */
/* inactive, no injector, a current goroutine — and returns            */
/* NotImplemented to defer to the pure path otherwise.  All bail-outs  */
/* happen BEFORE the op's entry schedule point so an op is either      */
/* entirely compiled or entirely pure; the observable schedule is      */
/* identical either way (asserted by the parity tests).                */
/* ------------------------------------------------------------------ */

static int fo_bound = 0;

static PyTypeObject *fo_chan = NULL, *fo_waiter = NULL, *fo_selctx = NULL,
                    *fo_sendcase = NULL, *fo_recvcase = NULL,
                    *fo_mutex = NULL, *fo_mu_ticket = NULL,
                    *fo_rwmutex = NULL, *fo_rw_ticket = NULL,
                    *fo_trace = NULL, *fo_goro = NULL;
static PyObject *fo_gopanic = NULL, *fo_killed = NULL;
static PyObject *dq_popleft_m = NULL, *dq_append_m = NULL, *dq_remove_m = NULL;
static PyObject *st_blocked = NULL;

/* Channel slots */
static Py_ssize_t off_ch_sched = -1, off_ch_capacity = -1, off_ch_buf = -1,
                  off_ch_sendw = -1, off_ch_recvw = -1, off_ch_closed = -1,
                  off_ch_sendseq = -1, off_ch_reason_send = -1,
                  off_ch_reason_recv = -1;
/* _Waiter slots */
static Py_ssize_t off_w_goroutine = -1, off_w_payload = -1, off_w_value = -1,
                  off_w_ok = -1, off_w_completed = -1, off_w_selctx = -1,
                  off_w_caseidx = -1;
/* _SelectContext slots */
static Py_ssize_t off_sc_winner = -1, off_sc_value = -1, off_sc_ok = -1;
/* SelectCase / SendCase slots */
static Py_ssize_t off_case_channel = -1, off_case_value = -1;
/* Mutex slots */
static Py_ssize_t off_mu_sched = -1, off_mu_locked = -1, off_mu_owner = -1,
                  off_mu_waiters = -1, off_mu_reason = -1;
static Py_ssize_t off_mtix_goroutine = -1, off_mtix_granted = -1;
/* RWMutex slots */
static Py_ssize_t off_rw_sched = -1, off_rw_wprio = -1, off_rw_readers = -1,
                  off_rw_writer = -1, off_rw_pw = -1, off_rw_pr = -1,
                  off_rw_reason_r = -1, off_rw_reason_w = -1;
static Py_ssize_t off_rwtix_goroutine = -1, off_rwtix_granted = -1;
/* Goroutine slots beyond bind()'s state/ended_at */
static Py_ssize_t off_g_gid = -1, off_g_blockreason = -1, off_g_external = -1,
                  off_g_pending = -1, off_g_killed = -1;
static Py_ssize_t off_tkg_hub = -1;
static Py_ssize_t off_trace_active = -1;

static PyObject *s_trace = NULL, *s_injector = NULL, *s_preempt = NULL,
                *s_yield = NULL, *r_select = NULL;
static PyObject *msg_send_closed = NULL, *msg_mu_unlock = NULL,
                *msg_rw_runlock = NULL, *msg_rw_unlock = NULL;
static PyObject *long_zero = NULL;

enum { OP_SEND, OP_RECV, OP_TRYSEND, OP_TRYRECV, OP_SELECT, OP_MUTEX,
       OP_RWMUTEX, OP_N };
static long long fo_hits[OP_N], fo_bails[OP_N];

#define FO_BAIL(op)                                                 \
    do {                                                            \
        fo_bails[op]++;                                             \
        Py_RETURN_NOTIMPLEMENTED;                                   \
    } while (0)

static void
fo_panic(PyObject *msg)
{
    PyErr_SetObject(fo_gopanic, msg);
}

static long long
fo_slot_ll(PyObject *obj, Py_ssize_t off, int *err)
{
    PyObject *v = slot_get(obj, off);
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "unset integer slot");
        *err = 1;
        return 0;
    }
    long long out = PyLong_AsLongLong(v);
    if (out == -1 && PyErr_Occurred())
        *err = 1;
    return out;
}

static int
fo_slot_set_ll(PyObject *obj, Py_ssize_t off, long long v)
{
    PyObject *o = PyLong_FromLongLong(v);
    if (o == NULL)
        return -1;
    slot_set(obj, off, o);
    Py_DECREF(o);
    return 0;
}

/* deque access through the cached unbound methods: the queues stay real
 * collections.deque objects, so pure code (close(), the injector, tests)
 * interoperates with compiled ops freely. */

static PyObject *
fo_dq_popleft(PyObject *dq)
{
    PyObject *a[1] = {dq};
    return PyObject_Vectorcall(dq_popleft_m, a, 1, NULL);
}

static int
fo_dq_append(PyObject *dq, PyObject *item)
{
    PyObject *a[2] = {dq, item};
    PyObject *r = PyObject_Vectorcall(dq_append_m, a, 2, NULL);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* deque.remove, swallowing ValueError — exactly Channel._discard's loop
 * body (removal compares by identity: _Waiter defines no __eq__). */
static int
fo_dq_discard(PyObject *dq, PyObject *item)
{
    PyObject *a[2] = {dq, item};
    PyObject *r = PyObject_Vectorcall(dq_remove_m, a, 2, NULL);
    if (r != NULL) {
        Py_DECREF(r);
        return 0;
    }
    if (PyErr_ExceptionMatches(PyExc_ValueError)) {
        PyErr_Clear();
        return 0;
    }
    return -1;
}

static int
fo_ch_discard(PyObject *ch, PyObject *w)
{
    PyObject *q = slot_get(ch, off_ch_sendw);
    if (q == NULL || fo_dq_discard(q, w) < 0)
        return -1;
    q = slot_get(ch, off_ch_recvw);
    if (q == NULL || fo_dq_discard(q, w) < 0)
        return -1;
    return 0;
}

/* yield_to_scheduler: a direct hub switch for tasklet goroutines (with
 * the killed / pending_error checks done here, exactly as the Python
 * method would), the generic method call for every other vehicle. */
static int
fo_yield(PyObject *g)
{
    if (Py_TYPE(g) == tk_go_type && switch_meth != NULL) {
        PyObject *hub = slot_get(g, off_tkg_hub);
        if (hub != NULL && hub != Py_None) {
            PyObject *sargs[1] = {hub};
            PyObject *r = PyObject_Vectorcall(switch_meth, sargs, 1, NULL);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
            if (slot_get(g, off_g_killed) == Py_True) {
                PyErr_SetNone(fo_killed);
                return -1;
            }
            PyObject *pe = slot_get(g, off_g_pending);
            if (pe != NULL && pe != Py_None) {
                Py_INCREF(pe);
                slot_set(g, off_g_pending, Py_None);
                PyErr_SetObject(PyExceptionInstance_Class(pe), pe);
                Py_DECREF(pe);
                return -1;
            }
            return 0;
        }
    }
    PyObject *rargs[1] = {g};
    PyObject *r = PyObject_VectorcallMethod(s_yield, rargs, 1, NULL);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Scheduler.block(reason) with the trace-inactive emit skipped.  On a
 * raise out of the yield (Killed / injected error) block_reason stays
 * set, matching the pure method's control flow. */
static int
fo_block(PyObject *sched, PyObject *g, PyObject *reason)
{
    slot_set(g, off_state, st_blocked);
    slot_set(g, off_g_blockreason, reason);
    slot_set(g, off_g_external, Py_False);
    PyObject *runnable = PyObject_GetAttr(sched, s_runnable_attr);
    if (runnable == NULL)
        return -1;
    if (!PyList_CheckExact(runnable)) {
        Py_DECREF(runnable);
        PyErr_SetString(PyExc_TypeError, "scheduler _runnable is not a list");
        return -1;
    }
    runnable_remove(runnable, g);
    Py_DECREF(runnable);
    if (fo_yield(g) < 0)
        return -1;
    slot_set(g, off_g_blockreason, Py_None);
    slot_set(g, off_g_external, Py_False);
    return 0;
}

/* Scheduler.ready(g): BLOCKED -> RUNNABLE + requeue (emit skipped). */
static int
fo_ready(PyObject *sched, PyObject *g)
{
    if (!PyObject_TypeCheck(g, fo_goro)) {
        PyErr_SetString(PyExc_TypeError, "waiter goroutine is not a Goroutine");
        return -1;
    }
    PyObject *st = slot_get(g, off_state);
    if (st != st_blocked) {
        if (st == NULL)
            return 0;
        int eq = PyObject_RichCompareBool(st, st_blocked, Py_EQ);
        if (eq < 0)
            return -1;
        if (!eq)
            return 0;
    }
    slot_set(g, off_state, st_runnable);
    PyObject *runnable = PyObject_GetAttr(sched, s_runnable_attr);
    if (runnable == NULL)
        return -1;
    if (!PyList_CheckExact(runnable)) {
        Py_DECREF(runnable);
        PyErr_SetString(PyExc_TypeError, "scheduler _runnable is not a list");
        return -1;
    }
    int rc = PyList_Append(runnable, g);
    Py_DECREF(runnable);
    return rc;
}

/* Channel._pop_claimable, with the peek-then-pop collapsed into a single
 * popleft-first loop (every branch of the pure loop pops exactly once).
 * Returns a new reference, or NULL with *err set on failure / clear on
 * an empty queue. */
static PyObject *
fo_pop_claimable(PyObject *queue, int *err)
{
    for (;;) {
        Py_ssize_t sz = PyObject_Size(queue);
        if (sz < 0) {
            *err = 1;
            return NULL;
        }
        if (sz == 0)
            return NULL;
        PyObject *w = fo_dq_popleft(queue);
        if (w == NULL) {
            *err = 1;
            return NULL;
        }
        if (slot_get(w, off_w_completed) == Py_True) {
            Py_DECREF(w);
            continue;
        }
        PyObject *ctx = slot_get(w, off_w_selctx);
        if (ctx == NULL || ctx == Py_None)
            return w;
        PyObject *winner = slot_get(ctx, off_sc_winner);
        if (winner != NULL && winner != Py_None) {
            Py_DECREF(w);          /* lost select: discard */
            continue;
        }
        PyObject *idx = slot_get(w, off_w_caseidx);
        slot_set(ctx, off_sc_winner, idx ? idx : Py_None);
        return w;
    }
}

/* Channel._next_seq: the counter must advance even where the value is
 * only used by (skipped) emits — it is observable in later buffered
 * operations.  Returns the new seq as a new reference. */
static PyObject *
fo_next_seq(PyObject *ch)
{
    PyObject *cur = slot_get(ch, off_ch_sendseq);
    if (cur == NULL) {
        PyErr_SetString(PyExc_AttributeError, "channel _send_seq unset");
        return NULL;
    }
    long long n = PyLong_AsLongLong(cur);
    if (n == -1 && PyErr_Occurred())
        return NULL;
    PyObject *nv = PyLong_FromLongLong(n + 1);
    if (nv == NULL)
        return NULL;
    slot_set(ch, off_ch_sendseq, nv);
    return nv;
}

/* Channel.poll_send: -1 error (incl. the closed-channel panic), 0 would
 * block, 1 completed. */
static int
fo_poll_send(PyObject *ch, PyObject *value)
{
    if (slot_get(ch, off_ch_closed) == Py_True) {
        fo_panic(msg_send_closed);
        return -1;
    }
    PyObject *recvw = slot_get(ch, off_ch_recvw);
    if (recvw == NULL) {
        PyErr_SetString(PyExc_AttributeError, "channel queues unset");
        return -1;
    }
    int err = 0;
    PyObject *w = fo_pop_claimable(recvw, &err);
    if (err)
        return -1;
    if (w != NULL) {
        PyObject *seq = fo_next_seq(ch);
        if (seq == NULL) {
            Py_DECREF(w);
            return -1;
        }
        Py_DECREF(seq);
        slot_set(w, off_w_value, value);
        slot_set(w, off_w_ok, Py_True);
        slot_set(w, off_w_completed, Py_True);
        PyObject *ctx = slot_get(w, off_w_selctx);
        if (ctx != NULL && ctx != Py_None) {
            slot_set(ctx, off_sc_value, value);
            slot_set(ctx, off_sc_ok, Py_True);
        }
        PyObject *sched = slot_get(ch, off_ch_sched);
        PyObject *g = slot_get(w, off_w_goroutine);
        int rc = -1;
        if (sched != NULL && g != NULL)
            rc = fo_ready(sched, g);
        else
            PyErr_SetString(PyExc_AttributeError, "waiter goroutine unset");
        Py_DECREF(w);
        return rc < 0 ? -1 : 1;
    }
    PyObject *buf = slot_get(ch, off_ch_buf);
    if (buf == NULL) {
        PyErr_SetString(PyExc_AttributeError, "channel buffer unset");
        return -1;
    }
    Py_ssize_t blen = PyObject_Size(buf);
    if (blen < 0)
        return -1;
    int cerr = 0;
    long long cap = fo_slot_ll(ch, off_ch_capacity, &cerr);
    if (cerr)
        return -1;
    if (blen < cap) {
        PyObject *seq = fo_next_seq(ch);
        if (seq == NULL)
            return -1;
        PyObject *tup = PyTuple_Pack(2, seq, value);
        Py_DECREF(seq);
        if (tup == NULL)
            return -1;
        int rc = fo_dq_append(buf, tup);
        Py_DECREF(tup);
        return rc < 0 ? -1 : 1;
    }
    return 0;
}

/* Channel.poll_recv: -1 error, 0 would block, 1 completed with
 * *value_out (new ref) and *ok_out. */
static int
fo_poll_recv(PyObject *ch, PyObject **value_out, int *ok_out)
{
    PyObject *buf = slot_get(ch, off_ch_buf);
    PyObject *sendw = slot_get(ch, off_ch_sendw);
    if (buf == NULL || sendw == NULL) {
        PyErr_SetString(PyExc_AttributeError, "channel queues unset");
        return -1;
    }
    Py_ssize_t blen = PyObject_Size(buf);
    if (blen < 0)
        return -1;
    if (blen > 0) {
        PyObject *item = fo_dq_popleft(buf);
        if (item == NULL)
            return -1;
        if (!PyTuple_CheckExact(item) || PyTuple_GET_SIZE(item) != 2) {
            Py_DECREF(item);
            PyErr_SetString(PyExc_TypeError,
                            "channel buffer entry is not (seq, value)");
            return -1;
        }
        PyObject *value = PyTuple_GET_ITEM(item, 1);
        Py_INCREF(value);
        Py_DECREF(item);
        /* A sender blocked on the full buffer can now complete. */
        int err = 0;
        PyObject *w = fo_pop_claimable(sendw, &err);
        if (err) {
            Py_DECREF(value);
            return -1;
        }
        if (w != NULL) {
            PyObject *wseq = fo_next_seq(ch);
            if (wseq == NULL) {
                Py_DECREF(w);
                Py_DECREF(value);
                return -1;
            }
            PyObject *payload = slot_get(w, off_w_payload);
            if (payload == NULL)
                payload = Py_None;
            PyObject *tup = PyTuple_Pack(2, wseq, payload);
            Py_DECREF(wseq);
            if (tup == NULL || fo_dq_append(buf, tup) < 0) {
                Py_XDECREF(tup);
                Py_DECREF(w);
                Py_DECREF(value);
                return -1;
            }
            Py_DECREF(tup);
            slot_set(w, off_w_ok, Py_True);
            slot_set(w, off_w_completed, Py_True);
            PyObject *ctx = slot_get(w, off_w_selctx);
            if (ctx != NULL && ctx != Py_None) {
                slot_set(ctx, off_sc_value, Py_None);
                slot_set(ctx, off_sc_ok, Py_True);
            }
            PyObject *sched = slot_get(ch, off_ch_sched);
            PyObject *g = slot_get(w, off_w_goroutine);
            int rc = (sched != NULL && g != NULL) ? fo_ready(sched, g) : -1;
            Py_DECREF(w);
            if (rc < 0) {
                Py_DECREF(value);
                return -1;
            }
        }
        *value_out = value;
        *ok_out = 1;
        return 1;
    }
    int err = 0;
    PyObject *w = fo_pop_claimable(sendw, &err);
    if (err)
        return -1;
    if (w != NULL) {
        /* Rendezvous with a blocked sender (unbuffered channel). */
        PyObject *seq = fo_next_seq(ch);
        if (seq == NULL) {
            Py_DECREF(w);
            return -1;
        }
        Py_DECREF(seq);
        slot_set(w, off_w_ok, Py_True);
        slot_set(w, off_w_completed, Py_True);
        PyObject *ctx = slot_get(w, off_w_selctx);
        if (ctx != NULL && ctx != Py_None) {
            slot_set(ctx, off_sc_value, Py_None);
            slot_set(ctx, off_sc_ok, Py_True);
        }
        PyObject *payload = slot_get(w, off_w_payload);
        PyObject *value = payload ? payload : Py_None;
        Py_INCREF(value);
        PyObject *sched = slot_get(ch, off_ch_sched);
        PyObject *g = slot_get(w, off_w_goroutine);
        int rc = (sched != NULL && g != NULL) ? fo_ready(sched, g) : -1;
        Py_DECREF(w);
        if (rc < 0) {
            Py_DECREF(value);
            return -1;
        }
        *value_out = value;
        *ok_out = 1;
        return 1;
    }
    if (slot_get(ch, off_ch_closed) == Py_True) {
        Py_INCREF(Py_None);
        *value_out = Py_None;
        *ok_out = 0;
        return 1;
    }
    return 0;
}

/* any(not w.dead for w in queue) — iteration only, no mutation. */
static int
fo_any_live(PyObject *queue)
{
    PyObject *it = PyObject_GetIter(queue);
    if (it == NULL)
        return -1;
    PyObject *w;
    int live = 0;
    while (!live && (w = PyIter_Next(it)) != NULL) {
        if (slot_get(w, off_w_completed) != Py_True) {
            PyObject *ctx = slot_get(w, off_w_selctx);
            if (ctx == NULL || ctx == Py_None) {
                live = 1;
            }
            else {
                PyObject *winner = slot_get(ctx, off_sc_winner);
                if (winner == NULL || winner == Py_None)
                    live = 1;
            }
        }
        Py_DECREF(w);
    }
    Py_DECREF(it);
    if (PyErr_Occurred())
        return -1;
    return live;
}

static int
fo_can_send_now(PyObject *ch)
{
    if (slot_get(ch, off_ch_closed) == Py_True)
        return 1;                   /* "ready": completing panics */
    PyObject *recvw = slot_get(ch, off_ch_recvw);
    if (recvw == NULL) {
        PyErr_SetString(PyExc_AttributeError, "channel queues unset");
        return -1;
    }
    int live = fo_any_live(recvw);
    if (live != 0)
        return live;
    PyObject *buf = slot_get(ch, off_ch_buf);
    Py_ssize_t blen = buf ? PyObject_Size(buf) : -1;
    if (blen < 0)
        return -1;
    int err = 0;
    long long cap = fo_slot_ll(ch, off_ch_capacity, &err);
    if (err)
        return -1;
    return blen < cap;
}

static int
fo_can_recv_now(PyObject *ch)
{
    PyObject *buf = slot_get(ch, off_ch_buf);
    if (buf == NULL) {
        PyErr_SetString(PyExc_AttributeError, "channel buffer unset");
        return -1;
    }
    Py_ssize_t blen = PyObject_Size(buf);
    if (blen < 0)
        return -1;
    if (blen > 0)
        return 1;
    PyObject *sendw = slot_get(ch, off_ch_sendw);
    if (sendw == NULL) {
        PyErr_SetString(PyExc_AttributeError, "channel queues unset");
        return -1;
    }
    int live = fo_any_live(sendw);
    if (live != 0)
        return live;
    return slot_get(ch, off_ch_closed) == Py_True;
}

static PyObject *
fo_pair(PyObject *a, PyObject *b)
{
    PyObject *t = PyTuple_New(2);
    if (t == NULL)
        return NULL;
    Py_INCREF(a);
    PyTuple_SET_ITEM(t, 0, a);
    Py_INCREF(b);
    PyTuple_SET_ITEM(t, 1, b);
    return t;
}

static PyObject *
fo_triple(PyObject *a, PyObject *b, PyObject *c)
{
    PyObject *t = PyTuple_New(3);
    if (t == NULL)
        return NULL;
    Py_INCREF(a);
    PyTuple_SET_ITEM(t, 0, a);
    Py_INCREF(b);
    PyTuple_SET_ITEM(t, 1, b);
    Py_INCREF(c);
    PyTuple_SET_ITEM(t, 2, c);
    return t;
}

/* Per-op engagement check + the entry schedule point.
 * 1 -> engaged (*me_out is a new ref to the current goroutine),
 * 0 -> bail to the pure path (no observable action taken),
 * -1 -> error raised (only possible once the op is committed: every
 *       bail-out condition is evaluated before the entry yield). */
static int
fo_enter(PyObject *sched, PyObject **me_out)
{
    PyObject *trace = PyObject_GetAttr(sched, s_trace);
    if (trace == NULL) {
        PyErr_Clear();
        return 0;
    }
    int traced = (Py_TYPE(trace) != fo_trace ||
                  slot_get(trace, off_trace_active) != Py_False);
    Py_DECREF(trace);
    if (traced)
        return 0;
    PyObject *inj = PyObject_GetAttr(sched, s_injector);
    if (inj == NULL) {
        PyErr_Clear();
        return 0;
    }
    int has_inj = (inj != Py_None);
    Py_DECREF(inj);
    if (has_inj)
        return 0;
    PyObject *me = PyObject_GetAttr(sched, s_current);
    if (me == NULL) {
        PyErr_Clear();
        return 0;
    }
    if (me == Py_None || !PyObject_TypeCheck(me, fo_goro)) {
        Py_DECREF(me);
        return 0;
    }
    PyObject *preempt = PyObject_GetAttr(sched, s_preempt);
    if (preempt == NULL) {
        PyErr_Clear();
        Py_DECREF(me);
        return 0;
    }
    int do_yield = PyObject_IsTrue(preempt);
    Py_DECREF(preempt);
    if (do_yield < 0) {
        Py_DECREF(me);
        return -1;
    }
    if (do_yield && fo_yield(me) < 0) {
        Py_DECREF(me);
        return -1;
    }
    *me_out = me;
    return 1;
}

/* ---- channel ops ---- */

static PyObject *
fo_chan_send(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    if (!fo_bound || nargs != 2)
        FO_BAIL(OP_SEND);
    PyObject *ch = args[0], *value = args[1];
    if (Py_TYPE(ch) != fo_chan)
        FO_BAIL(OP_SEND);
    PyObject *sched = slot_get(ch, off_ch_sched);
    if (sched == NULL)
        FO_BAIL(OP_SEND);
    Py_INCREF(sched);
    PyObject *me = NULL;
    int e = fo_enter(sched, &me);
    if (e <= 0) {
        Py_DECREF(sched);
        if (e < 0)
            return NULL;
        FO_BAIL(OP_SEND);
    }
    fo_hits[OP_SEND]++;
    PyObject *reason = slot_get(ch, off_ch_reason_send);
    if (reason == NULL)
        reason = Py_None;
    Py_INCREF(reason);
    PyObject *result = NULL;
    for (;;) {
        int r = fo_poll_send(ch, value);
        if (r < 0)
            break;
        if (r == 1) {
            Py_INCREF(Py_None);
            result = Py_None;
            break;
        }
        PyObject *w = PyObject_CallFunctionObjArgs((PyObject *)fo_waiter,
                                                   me, Py_True, value, NULL);
        if (w == NULL)
            break;
        PyObject *sendw = slot_get(ch, off_ch_sendw);
        if (sendw == NULL || fo_dq_append(sendw, w) < 0) {
            if (sendw == NULL)
                PyErr_SetString(PyExc_AttributeError, "channel queues unset");
            Py_DECREF(w);
            break;
        }
        if (fo_block(sched, me, reason) < 0) {
            Py_DECREF(w);           /* stays queued, matching pure */
            break;
        }
        if (slot_get(w, off_w_completed) == Py_True) {
            int closed = (slot_get(w, off_w_ok) == Py_False);
            Py_DECREF(w);
            if (closed) {
                fo_panic(msg_send_closed);
                break;
            }
            Py_INCREF(Py_None);
            result = Py_None;
            break;
        }
        if (fo_ch_discard(ch, w) < 0) {
            Py_DECREF(w);
            break;
        }
        Py_DECREF(w);               /* spurious wakeup: retry */
    }
    Py_DECREF(reason);
    Py_DECREF(me);
    Py_DECREF(sched);
    return result;
}

static PyObject *
fo_chan_recv(PyObject *module, PyObject *ch)
{
    if (!fo_bound || Py_TYPE(ch) != fo_chan)
        FO_BAIL(OP_RECV);
    PyObject *sched = slot_get(ch, off_ch_sched);
    if (sched == NULL)
        FO_BAIL(OP_RECV);
    Py_INCREF(sched);
    PyObject *me = NULL;
    int e = fo_enter(sched, &me);
    if (e <= 0) {
        Py_DECREF(sched);
        if (e < 0)
            return NULL;
        FO_BAIL(OP_RECV);
    }
    fo_hits[OP_RECV]++;
    PyObject *reason = slot_get(ch, off_ch_reason_recv);
    if (reason == NULL)
        reason = Py_None;
    Py_INCREF(reason);
    PyObject *result = NULL;
    for (;;) {
        PyObject *value = NULL;
        int ok = 0;
        int r = fo_poll_recv(ch, &value, &ok);
        if (r < 0)
            break;
        if (r == 1) {
            result = fo_pair(value, ok ? Py_True : Py_False);
            Py_DECREF(value);
            break;
        }
        PyObject *w = PyObject_CallFunctionObjArgs((PyObject *)fo_waiter,
                                                   me, Py_False, NULL);
        if (w == NULL)
            break;
        PyObject *recvw = slot_get(ch, off_ch_recvw);
        if (recvw == NULL || fo_dq_append(recvw, w) < 0) {
            if (recvw == NULL)
                PyErr_SetString(PyExc_AttributeError, "channel queues unset");
            Py_DECREF(w);
            break;
        }
        if (fo_block(sched, me, reason) < 0) {
            Py_DECREF(w);
            break;
        }
        if (slot_get(w, off_w_completed) == Py_True) {
            PyObject *wval = slot_get(w, off_w_value);
            if (wval == NULL)
                wval = Py_None;
            PyObject *wok = slot_get(w, off_w_ok);
            result = fo_pair(wval, wok == Py_True ? Py_True : Py_False);
            Py_DECREF(w);
            break;
        }
        if (fo_ch_discard(ch, w) < 0) {
            Py_DECREF(w);
            break;
        }
        Py_DECREF(w);
    }
    Py_DECREF(reason);
    Py_DECREF(me);
    Py_DECREF(sched);
    return result;
}

static PyObject *
fo_chan_try_send(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    if (!fo_bound || nargs != 2)
        FO_BAIL(OP_TRYSEND);
    PyObject *ch = args[0], *value = args[1];
    if (Py_TYPE(ch) != fo_chan)
        FO_BAIL(OP_TRYSEND);
    PyObject *sched = slot_get(ch, off_ch_sched);
    if (sched == NULL)
        FO_BAIL(OP_TRYSEND);
    Py_INCREF(sched);
    PyObject *me = NULL;
    int e = fo_enter(sched, &me);
    if (e <= 0) {
        Py_DECREF(sched);
        if (e < 0)
            return NULL;
        FO_BAIL(OP_TRYSEND);
    }
    fo_hits[OP_TRYSEND]++;
    int r = fo_poll_send(ch, value);
    Py_DECREF(me);
    Py_DECREF(sched);
    if (r < 0)
        return NULL;
    return PyBool_FromLong(r);
}

static PyObject *
fo_chan_try_recv(PyObject *module, PyObject *ch)
{
    if (!fo_bound || Py_TYPE(ch) != fo_chan)
        FO_BAIL(OP_TRYRECV);
    PyObject *sched = slot_get(ch, off_ch_sched);
    if (sched == NULL)
        FO_BAIL(OP_TRYRECV);
    Py_INCREF(sched);
    PyObject *me = NULL;
    int e = fo_enter(sched, &me);
    if (e <= 0) {
        Py_DECREF(sched);
        if (e < 0)
            return NULL;
        FO_BAIL(OP_TRYRECV);
    }
    fo_hits[OP_TRYRECV]++;
    PyObject *value = NULL;
    int ok = 0;
    int r = fo_poll_recv(ch, &value, &ok);
    Py_DECREF(me);
    Py_DECREF(sched);
    if (r < 0)
        return NULL;
    if (r == 0)
        return fo_triple(Py_None, Py_False, Py_False);
    PyObject *result = fo_triple(value, ok ? Py_True : Py_False, Py_True);
    Py_DECREF(value);
    return result;
}

/* ---- select ---- */

static PyObject *
fo_select(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    if (!fo_bound || nargs != 3)
        FO_BAIL(OP_SELECT);
    PyObject *sched = args[0], *cases = args[1], *defarg = args[2];
    if (!PyTuple_CheckExact(cases))
        FO_BAIL(OP_SELECT);
    Py_ssize_t n = PyTuple_GET_SIZE(cases);
    if (n == 0 || n > 64)
        FO_BAIL(OP_SELECT);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *c = PyTuple_GET_ITEM(cases, i);
        PyTypeObject *t = Py_TYPE(c);
        if (t != fo_sendcase && t != fo_recvcase)
            FO_BAIL(OP_SELECT);
        PyObject *ch = slot_get(c, off_case_channel);
        if (ch == NULL || Py_TYPE(ch) != fo_chan)
            FO_BAIL(OP_SELECT);     /* nil channels go the pure route */
    }
    PyObject *rng_obj = PyObject_GetAttr(sched, s_rng);
    if (rng_obj == NULL) {
        PyErr_Clear();
        FO_BAIL(OP_SELECT);
    }
    if (Py_TYPE(rng_obj) != &BatchedRandom_Type) {
        Py_DECREF(rng_obj);
        FO_BAIL(OP_SELECT);
    }
    int use_default = PyObject_IsTrue(defarg);
    if (use_default < 0) {
        Py_DECREF(rng_obj);
        return NULL;
    }
    PyObject *me = NULL;
    int e = fo_enter(sched, &me);
    if (e <= 0) {
        Py_DECREF(rng_obj);
        if (e < 0)
            return NULL;
        FO_BAIL(OP_SELECT);
    }
    fo_hits[OP_SELECT]++;
    BatchedRandomObject *rng = (BatchedRandomObject *)rng_obj;
    PyObject *result = NULL;

    for (;;) {
        int ready_idx[64];
        int n_ready = 0;
        for (Py_ssize_t i = 0; i < n; i++) {
            PyObject *c = PyTuple_GET_ITEM(cases, i);
            PyObject *ch = slot_get(c, off_case_channel);
            int rdy = (Py_TYPE(c) == fo_sendcase)
                          ? fo_can_send_now(ch)
                          : fo_can_recv_now(ch);
            if (rdy < 0)
                goto out;
            if (rdy)
                ready_idx[n_ready++] = (int)i;
        }
        if (n_ready > 0) {
            /* One draw even for a single ready case: randrange(1) consumes
             * an MT word, and the stream is shared with the scheduler. */
            uint32_t k = mt_randrange32(rng, (uint32_t)n_ready);
            Py_ssize_t index = ready_idx[k];
            PyObject *c = PyTuple_GET_ITEM(cases, index);
            PyObject *ch = slot_get(c, off_case_channel);
            PyObject *idxobj = PyLong_FromSsize_t(index);
            if (idxobj == NULL)
                goto out;
            if (Py_TYPE(c) == fo_sendcase) {
                PyObject *sval = slot_get(c, off_case_value);
                if (sval == NULL)
                    sval = Py_None;
                int r = fo_poll_send(ch, sval);
                if (r == 0)
                    PyErr_SetString(PyExc_AssertionError,
                                    "select chose a send case that was "
                                    "not ready");
                if (r != 1) {
                    Py_DECREF(idxobj);
                    goto out;
                }
                result = fo_triple(idxobj, Py_None, Py_True);
            }
            else {
                PyObject *val = NULL;
                int ok = 0;
                int r = fo_poll_recv(ch, &val, &ok);
                if (r == 0)
                    PyErr_SetString(PyExc_AssertionError,
                                    "select chose a recv case that was "
                                    "not ready");
                if (r != 1) {
                    Py_DECREF(idxobj);
                    goto out;
                }
                result = fo_triple(idxobj, val, ok ? Py_True : Py_False);
                Py_DECREF(val);
            }
            Py_DECREF(idxobj);
            goto out;
        }
        if (use_default) {
            PyObject *neg = PyLong_FromLong(-1);
            if (neg == NULL)
                goto out;
            result = fo_triple(neg, Py_None, Py_False);
            Py_DECREF(neg);
            goto out;
        }
        /* Park one waiter per case, sharing a fresh context. */
        PyObject *ctx = PyObject_CallFunctionObjArgs((PyObject *)fo_selctx,
                                                     me, NULL);
        if (ctx == NULL)
            goto out;
        PyObject *waiters[64];
        int nw = 0;
        int failed = 0;
        for (Py_ssize_t i = 0; i < n; i++) {
            PyObject *c = PyTuple_GET_ITEM(cases, i);
            PyObject *ch = slot_get(c, off_case_channel);
            int is_send = (Py_TYPE(c) == fo_sendcase);
            PyObject *payload = is_send ? slot_get(c, off_case_value)
                                        : Py_None;
            if (payload == NULL)
                payload = Py_None;
            PyObject *idxobj = PyLong_FromSsize_t(i);
            if (idxobj == NULL) {
                failed = 1;
                break;
            }
            PyObject *w = PyObject_CallFunctionObjArgs(
                (PyObject *)fo_waiter, me, is_send ? Py_True : Py_False,
                payload, ctx, idxobj, NULL);
            Py_DECREF(idxobj);
            if (w == NULL) {
                failed = 1;
                break;
            }
            PyObject *q = slot_get(ch, is_send ? off_ch_sendw : off_ch_recvw);
            if (q == NULL || fo_dq_append(q, w) < 0) {
                if (q == NULL)
                    PyErr_SetString(PyExc_AttributeError,
                                    "channel queues unset");
                Py_DECREF(w);
                failed = 1;
                break;
            }
            waiters[nw++] = w;
        }
        if (!failed && fo_block(sched, me, r_select) < 0)
            failed = 1;             /* waiters stay queued, matching pure */
        if (failed) {
            for (int j = 0; j < nw; j++)
                Py_DECREF(waiters[j]);
            Py_DECREF(ctx);
            goto out;
        }
        for (int j = 0; j < nw; j++) {
            PyObject *w = waiters[j];
            if (!failed && slot_get(w, off_w_completed) != Py_True) {
                PyObject *c = PyTuple_GET_ITEM(cases, (Py_ssize_t)j);
                PyObject *ch = slot_get(c, off_case_channel);
                if (ch == NULL || fo_ch_discard(ch, w) < 0)
                    failed = 1;
            }
            Py_DECREF(w);
        }
        if (failed) {
            Py_DECREF(ctx);
            goto out;
        }
        PyObject *winner = slot_get(ctx, off_sc_winner);
        if (winner != NULL && winner != Py_None) {
            Py_ssize_t widx = PyLong_AsSsize_t(winner);
            if (widx < 0 || widx >= n) {
                if (!PyErr_Occurred())
                    PyErr_SetString(PyExc_IndexError,
                                    "select winner index out of range");
                Py_DECREF(ctx);
                goto out;
            }
            PyObject *c = PyTuple_GET_ITEM(cases, widx);
            PyObject *ok = slot_get(ctx, off_sc_ok);
            if (ok == NULL)
                ok = Py_False;
            if (Py_TYPE(c) == fo_sendcase && ok != Py_True) {
                fo_panic(msg_send_closed);
                Py_DECREF(ctx);
                goto out;
            }
            PyObject *val = slot_get(ctx, off_sc_value);
            if (val == NULL)
                val = Py_None;
            result = fo_triple(winner, val, ok);
            Py_DECREF(ctx);
            goto out;
        }
        Py_DECREF(ctx);             /* spurious wakeup: retry */
    }
out:
    Py_DECREF(me);
    Py_DECREF(rng_obj);
    return result;
}

/* ---- mutex ---- */

static PyObject *
fo_mutex_lock(PyObject *module, PyObject *mu)
{
    if (!fo_bound || Py_TYPE(mu) != fo_mutex)
        FO_BAIL(OP_MUTEX);
    PyObject *sched = slot_get(mu, off_mu_sched);
    if (sched == NULL)
        FO_BAIL(OP_MUTEX);
    Py_INCREF(sched);
    PyObject *me = NULL;
    int e = fo_enter(sched, &me);
    if (e <= 0) {
        Py_DECREF(sched);
        if (e < 0)
            return NULL;
        FO_BAIL(OP_MUTEX);
    }
    fo_hits[OP_MUTEX]++;
    PyObject *result = NULL;
    if (slot_get(mu, off_mu_locked) != Py_True) {
        slot_set(mu, off_mu_locked, Py_True);
        PyObject *gid = slot_get(me, off_g_gid);
        slot_set(mu, off_mu_owner, gid ? gid : Py_None);
        Py_INCREF(Py_None);
        result = Py_None;
    }
    else {
        PyObject *ticket = PyObject_CallFunctionObjArgs(
            (PyObject *)fo_mu_ticket, me, NULL);
        PyObject *q = ticket ? slot_get(mu, off_mu_waiters) : NULL;
        if (ticket != NULL &&
            (q != NULL && fo_dq_append(q, ticket) == 0)) {
            PyObject *reason = slot_get(mu, off_mu_reason);
            if (reason == NULL)
                reason = Py_None;
            Py_INCREF(reason);
            int failed = 0;
            while (slot_get(ticket, off_mtix_granted) != Py_True) {
                if (fo_block(sched, me, reason) < 0) {
                    failed = 1;
                    break;
                }
            }
            Py_DECREF(reason);
            if (!failed) {
                Py_INCREF(Py_None);
                result = Py_None;
            }
        }
        else if (ticket != NULL && q == NULL) {
            PyErr_SetString(PyExc_AttributeError, "mutex waiters unset");
        }
        Py_XDECREF(ticket);
    }
    Py_DECREF(me);
    Py_DECREF(sched);
    return result;
}

static PyObject *
fo_mutex_trylock(PyObject *module, PyObject *mu)
{
    if (!fo_bound || Py_TYPE(mu) != fo_mutex)
        FO_BAIL(OP_MUTEX);
    PyObject *sched = slot_get(mu, off_mu_sched);
    if (sched == NULL)
        FO_BAIL(OP_MUTEX);
    Py_INCREF(sched);
    PyObject *me = NULL;
    int e = fo_enter(sched, &me);
    if (e <= 0) {
        Py_DECREF(sched);
        if (e < 0)
            return NULL;
        FO_BAIL(OP_MUTEX);
    }
    fo_hits[OP_MUTEX]++;
    PyObject *result;
    if (slot_get(mu, off_mu_locked) == Py_True) {
        result = Py_False;
    }
    else {
        slot_set(mu, off_mu_locked, Py_True);
        PyObject *gid = slot_get(me, off_g_gid);
        slot_set(mu, off_mu_owner, gid ? gid : Py_None);
        result = Py_True;
    }
    Py_INCREF(result);
    Py_DECREF(me);
    Py_DECREF(sched);
    return result;
}

static PyObject *
fo_mutex_unlock(PyObject *module, PyObject *mu)
{
    if (!fo_bound || Py_TYPE(mu) != fo_mutex)
        FO_BAIL(OP_MUTEX);
    PyObject *sched = slot_get(mu, off_mu_sched);
    if (sched == NULL)
        FO_BAIL(OP_MUTEX);
    Py_INCREF(sched);
    PyObject *me = NULL;
    int e = fo_enter(sched, &me);
    if (e <= 0) {
        Py_DECREF(sched);
        if (e < 0)
            return NULL;
        FO_BAIL(OP_MUTEX);
    }
    fo_hits[OP_MUTEX]++;
    PyObject *result = NULL;
    if (slot_get(mu, off_mu_locked) != Py_True) {
        fo_panic(msg_mu_unlock);
        goto out;
    }
    {
        PyObject *q = slot_get(mu, off_mu_waiters);
        if (q == NULL) {
            PyErr_SetString(PyExc_AttributeError, "mutex waiters unset");
            goto out;
        }
        Py_ssize_t sz = PyObject_Size(q);
        if (sz < 0)
            goto out;
        if (sz > 0) {
            /* Direct handoff: stays locked, ownership moves to the head. */
            PyObject *ticket = fo_dq_popleft(q);
            if (ticket == NULL)
                goto out;
            slot_set(ticket, off_mtix_granted, Py_True);
            PyObject *g = slot_get(ticket, off_mtix_goroutine);
            if (g == NULL || !PyObject_TypeCheck(g, fo_goro)) {
                PyErr_SetString(PyExc_TypeError, "mutex ticket goroutine");
                Py_DECREF(ticket);
                goto out;
            }
            PyObject *gid = slot_get(g, off_g_gid);
            slot_set(mu, off_mu_owner, gid ? gid : Py_None);
            int rc = fo_ready(sched, g);
            Py_DECREF(ticket);
            if (rc < 0)
                goto out;
        }
        else {
            slot_set(mu, off_mu_locked, Py_False);
            slot_set(mu, off_mu_owner, Py_None);
        }
    }
    Py_INCREF(Py_None);
    result = Py_None;
out:
    Py_DECREF(me);
    Py_DECREF(sched);
    return result;
}

/* ---- rwmutex ---- */

static int
fo_rw_grant_all(PyObject *rw, PyObject *sched)
{
    PyObject *pr = slot_get(rw, off_rw_pr);
    if (pr == NULL) {
        PyErr_SetString(PyExc_AttributeError, "rwmutex queues unset");
        return -1;
    }
    for (;;) {
        Py_ssize_t sz = PyObject_Size(pr);
        if (sz < 0)
            return -1;
        if (sz == 0)
            return 0;
        PyObject *t = fo_dq_popleft(pr);
        if (t == NULL)
            return -1;
        int err = 0;
        long long readers = fo_slot_ll(rw, off_rw_readers, &err);
        if (err || fo_slot_set_ll(rw, off_rw_readers, readers + 1) < 0) {
            Py_DECREF(t);
            return -1;
        }
        slot_set(t, off_rwtix_granted, Py_True);
        PyObject *g = slot_get(t, off_rwtix_goroutine);
        int rc = (g != NULL) ? fo_ready(sched, g) : -1;
        if (g == NULL)
            PyErr_SetString(PyExc_AttributeError, "ticket goroutine unset");
        Py_DECREF(t);
        if (rc < 0)
            return -1;
    }
}

static int
fo_rw_promote(PyObject *rw, PyObject *sched, int prefer_readers)
{
    if (slot_get(rw, off_rw_writer) == Py_True)
        return 0;
    PyObject *pr = slot_get(rw, off_rw_pr);
    PyObject *pw = slot_get(rw, off_rw_pw);
    if (pr == NULL || pw == NULL) {
        PyErr_SetString(PyExc_AttributeError, "rwmutex queues unset");
        return -1;
    }
    Py_ssize_t npr = PyObject_Size(pr);
    if (npr < 0)
        return -1;
    Py_ssize_t npw = PyObject_Size(pw);
    if (npw < 0)
        return -1;
    if (prefer_readers && npr > 0)
        return fo_rw_grant_all(rw, sched);
    int err = 0;
    long long readers = fo_slot_ll(rw, off_rw_readers, &err);
    if (err)
        return -1;
    if (readers == 0 && npw > 0) {
        PyObject *t = fo_dq_popleft(pw);
        if (t == NULL)
            return -1;
        slot_set(rw, off_rw_writer, Py_True);
        slot_set(t, off_rwtix_granted, Py_True);
        PyObject *g = slot_get(t, off_rwtix_goroutine);
        int rc = (g != NULL) ? fo_ready(sched, g) : -1;
        if (g == NULL)
            PyErr_SetString(PyExc_AttributeError, "ticket goroutine unset");
        Py_DECREF(t);
        return rc;
    }
    if (npr > 0) {
        PyObject *wp = slot_get(rw, off_rw_wprio);
        int prio = wp ? PyObject_IsTrue(wp) : 0;
        if (prio < 0)
            return -1;
        if (!(prio && npw > 0))
            return fo_rw_grant_all(rw, sched);
    }
    return 0;
}

/* Shared ticket-wait loop for the slow paths of rlock and lock. */
static int
fo_rw_wait(PyObject *rw, PyObject *sched, PyObject *me,
           Py_ssize_t off_queue, Py_ssize_t off_reason)
{
    PyObject *q = slot_get(rw, off_queue);
    if (q == NULL) {
        PyErr_SetString(PyExc_AttributeError, "rwmutex queues unset");
        return -1;
    }
    PyObject *ticket = PyObject_CallFunctionObjArgs(
        (PyObject *)fo_rw_ticket, me, NULL);
    if (ticket == NULL)
        return -1;
    if (fo_dq_append(q, ticket) < 0) {
        Py_DECREF(ticket);
        return -1;
    }
    PyObject *reason = slot_get(rw, off_reason);
    if (reason == NULL)
        reason = Py_None;
    Py_INCREF(reason);
    int rc = 0;
    while (slot_get(ticket, off_rwtix_granted) != Py_True) {
        if (fo_block(sched, me, reason) < 0) {
            rc = -1;
            break;
        }
    }
    Py_DECREF(reason);
    Py_DECREF(ticket);
    return rc;
}

/* One engagement prologue shared by the four RWMutex entry points. */
#define FO_RW_ENTER(rw, sched, me)                                  \
    if (!fo_bound || Py_TYPE(rw) != fo_rwmutex)                     \
        FO_BAIL(OP_RWMUTEX);                                        \
    sched = slot_get(rw, off_rw_sched);                             \
    if (sched == NULL)                                              \
        FO_BAIL(OP_RWMUTEX);                                        \
    Py_INCREF(sched);                                               \
    me = NULL;                                                      \
    do {                                                            \
        int _e = fo_enter(sched, &me);                              \
        if (_e <= 0) {                                              \
            Py_DECREF(sched);                                       \
            if (_e < 0)                                             \
                return NULL;                                        \
            FO_BAIL(OP_RWMUTEX);                                    \
        }                                                           \
    } while (0);                                                    \
    fo_hits[OP_RWMUTEX]++

static PyObject *
fo_rw_rlock(PyObject *module, PyObject *rw)
{
    PyObject *sched, *me;
    FO_RW_ENTER(rw, sched, me);
    PyObject *result = NULL;
    int can = (slot_get(rw, off_rw_writer) != Py_True);
    if (can) {
        PyObject *wp = slot_get(rw, off_rw_wprio);
        int prio = wp ? PyObject_IsTrue(wp) : 0;
        if (prio < 0)
            goto out;
        if (prio) {
            PyObject *pw = slot_get(rw, off_rw_pw);
            Py_ssize_t npw = pw ? PyObject_Size(pw) : -1;
            if (npw < 0)
                goto out;
            if (npw > 0)
                can = 0;
        }
    }
    if (can) {
        int err = 0;
        long long readers = fo_slot_ll(rw, off_rw_readers, &err);
        if (err || fo_slot_set_ll(rw, off_rw_readers, readers + 1) < 0)
            goto out;
    }
    else if (fo_rw_wait(rw, sched, me, off_rw_pr, off_rw_reason_r) < 0) {
        goto out;
    }
    Py_INCREF(Py_None);
    result = Py_None;
out:
    Py_DECREF(me);
    Py_DECREF(sched);
    return result;
}

static PyObject *
fo_rw_runlock(PyObject *module, PyObject *rw)
{
    PyObject *sched, *me;
    FO_RW_ENTER(rw, sched, me);
    PyObject *result = NULL;
    int err = 0;
    long long readers = fo_slot_ll(rw, off_rw_readers, &err);
    if (err)
        goto out;
    if (readers <= 0) {
        fo_panic(msg_rw_runlock);
        goto out;
    }
    if (fo_slot_set_ll(rw, off_rw_readers, readers - 1) < 0)
        goto out;
    if (readers - 1 == 0 && fo_rw_promote(rw, sched, 0) < 0)
        goto out;
    Py_INCREF(Py_None);
    result = Py_None;
out:
    Py_DECREF(me);
    Py_DECREF(sched);
    return result;
}

static PyObject *
fo_rw_lock(PyObject *module, PyObject *rw)
{
    PyObject *sched, *me;
    FO_RW_ENTER(rw, sched, me);
    PyObject *result = NULL;
    int err = 0;
    long long readers = fo_slot_ll(rw, off_rw_readers, &err);
    if (err)
        goto out;
    if (slot_get(rw, off_rw_writer) != Py_True && readers == 0) {
        slot_set(rw, off_rw_writer, Py_True);
    }
    else if (fo_rw_wait(rw, sched, me, off_rw_pw, off_rw_reason_w) < 0) {
        goto out;
    }
    Py_INCREF(Py_None);
    result = Py_None;
out:
    Py_DECREF(me);
    Py_DECREF(sched);
    return result;
}

static PyObject *
fo_rw_unlock(PyObject *module, PyObject *rw)
{
    PyObject *sched, *me;
    FO_RW_ENTER(rw, sched, me);
    PyObject *result = NULL;
    if (slot_get(rw, off_rw_writer) != Py_True) {
        fo_panic(msg_rw_unlock);
        goto out;
    }
    slot_set(rw, off_rw_writer, Py_False);
    if (fo_rw_promote(rw, sched, 1) < 0)
        goto out;
    Py_INCREF(Py_None);
    result = Py_None;
out:
    Py_DECREF(me);
    Py_DECREF(sched);
    return result;
}

/* ---- vector-clock kernels ---- */

static PyObject *
hl_vc_join(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2 || !PyList_CheckExact(args[0]) ||
        !PyList_CheckExact(args[1])) {
        PyErr_SetString(PyExc_TypeError, "vc_join expects two lists");
        return NULL;
    }
    PyObject *v = args[0], *o = args[1];
    Py_ssize_t nv = PyList_GET_SIZE(v), no = PyList_GET_SIZE(o);
    for (Py_ssize_t i = 0; i < no; i++) {
        PyObject *oi = PyList_GET_ITEM(o, i);
        if (i < nv) {
            PyObject *vi = PyList_GET_ITEM(v, i);
            int gt = PyObject_RichCompareBool(oi, vi, Py_GT);
            if (gt < 0)
                return NULL;
            if (gt) {
                Py_INCREF(oi);
                PyList_SetItem(v, i, oi);
            }
        }
        else {
            /* The pure join extends with zeros then maxes. */
            int gt = PyObject_RichCompareBool(oi, long_zero, Py_GT);
            if (gt < 0)
                return NULL;
            if (PyList_Append(v, gt ? oi : long_zero) < 0)
                return NULL;
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
hl_vc_le(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2 || !PyList_CheckExact(args[0]) ||
        !PyList_CheckExact(args[1])) {
        PyErr_SetString(PyExc_TypeError, "vc_le expects two lists");
        return NULL;
    }
    PyObject *v = args[0], *o = args[1];
    Py_ssize_t nv = PyList_GET_SIZE(v), no = PyList_GET_SIZE(o);
    for (Py_ssize_t i = 0; i < nv; i++) {
        PyObject *vi = PyList_GET_ITEM(v, i);
        PyObject *oi = (i < no) ? PyList_GET_ITEM(o, i) : long_zero;
        int gt = PyObject_RichCompareBool(vi, oi, Py_GT);
        if (gt < 0)
            return NULL;
        if (gt)
            Py_RETURN_FALSE;
    }
    Py_RETURN_TRUE;
}

/* ---- stats + bind ---- */

static PyObject *
hl_fastops_stats(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    static const char *names[OP_N] = {
        "send", "recv", "try_send", "try_recv", "select", "mutex", "rwmutex",
    };
    int reset = 0;
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError, "fastops_stats([reset])");
        return NULL;
    }
    if (nargs == 1) {
        reset = PyObject_IsTrue(args[0]);
        if (reset < 0)
            return NULL;
    }
    PyObject *engaged = PyDict_New();
    PyObject *bailed = PyDict_New();
    PyObject *result = NULL;
    if (engaged == NULL || bailed == NULL)
        goto done;
    for (int i = 0; i < OP_N; i++) {
        PyObject *h = PyLong_FromLongLong(fo_hits[i]);
        if (h == NULL || PyDict_SetItemString(engaged, names[i], h) < 0) {
            Py_XDECREF(h);
            goto done;
        }
        Py_DECREF(h);
        PyObject *b = PyLong_FromLongLong(fo_bails[i]);
        if (b == NULL || PyDict_SetItemString(bailed, names[i], b) < 0) {
            Py_XDECREF(b);
            goto done;
        }
        Py_DECREF(b);
    }
    result = Py_BuildValue("{sOsO}", "engaged", engaged, "bailed", bailed);
    if (result != NULL && reset) {
        memset(fo_hits, 0, sizeof(fo_hits));
        memset(fo_bails, 0, sizeof(fo_bails));
    }
done:
    Py_XDECREF(engaged);
    Py_XDECREF(bailed);
    return result;
}

static PyObject *
hl_bind_fastops(PyObject *module, PyObject *args)
{
    PyObject *chan_cls, *waiter_cls, *selctx_cls, *sendcase_cls,
             *recvcase_cls, *mutex_cls, *mu_ticket_cls, *rwmutex_cls,
             *rw_ticket_cls, *trace_cls, *goro_cls, *tk_goro_cls,
             *gstate_cls, *gopanic_exc, *killed_exc, *deque_cls;
    if (!PyArg_ParseTuple(args, "OOOOOOOOOOOOOOOO",
                          &chan_cls, &waiter_cls, &selctx_cls, &sendcase_cls,
                          &recvcase_cls, &mutex_cls, &mu_ticket_cls,
                          &rwmutex_cls, &rw_ticket_cls, &trace_cls,
                          &goro_cls, &tk_goro_cls, &gstate_cls,
                          &gopanic_exc, &killed_exc, &deque_cls))
        return NULL;
    if (!hl_bound) {
        PyErr_SetString(PyExc_RuntimeError,
                        "bind() must run before bind_fastops()");
        return NULL;
    }
    fo_bound = 0;

#define OFFSET(cls, name, dst)                                      \
    do {                                                            \
        if (member_offset(cls, name, &dst) < 0)                     \
            return NULL;                                            \
    } while (0)
    OFFSET(chan_cls, "_sched", off_ch_sched);
    OFFSET(chan_cls, "capacity", off_ch_capacity);
    OFFSET(chan_cls, "_buf", off_ch_buf);
    OFFSET(chan_cls, "_send_waiters", off_ch_sendw);
    OFFSET(chan_cls, "_recv_waiters", off_ch_recvw);
    OFFSET(chan_cls, "_closed", off_ch_closed);
    OFFSET(chan_cls, "_send_seq", off_ch_sendseq);
    OFFSET(chan_cls, "_reason_send", off_ch_reason_send);
    OFFSET(chan_cls, "_reason_recv", off_ch_reason_recv);
    OFFSET(waiter_cls, "goroutine", off_w_goroutine);
    OFFSET(waiter_cls, "payload", off_w_payload);
    OFFSET(waiter_cls, "value", off_w_value);
    OFFSET(waiter_cls, "ok", off_w_ok);
    OFFSET(waiter_cls, "completed", off_w_completed);
    OFFSET(waiter_cls, "select_ctx", off_w_selctx);
    OFFSET(waiter_cls, "case_index", off_w_caseidx);
    OFFSET(selctx_cls, "winner", off_sc_winner);
    OFFSET(selctx_cls, "value", off_sc_value);
    OFFSET(selctx_cls, "ok", off_sc_ok);
    OFFSET(sendcase_cls, "channel", off_case_channel);
    OFFSET(sendcase_cls, "value", off_case_value);
    OFFSET(mutex_cls, "_sched", off_mu_sched);
    OFFSET(mutex_cls, "_locked", off_mu_locked);
    OFFSET(mutex_cls, "_owner", off_mu_owner);
    OFFSET(mutex_cls, "_waiters", off_mu_waiters);
    OFFSET(mutex_cls, "_reason", off_mu_reason);
    OFFSET(mu_ticket_cls, "goroutine", off_mtix_goroutine);
    OFFSET(mu_ticket_cls, "granted", off_mtix_granted);
    OFFSET(rwmutex_cls, "_sched", off_rw_sched);
    OFFSET(rwmutex_cls, "writer_priority", off_rw_wprio);
    OFFSET(rwmutex_cls, "_readers", off_rw_readers);
    OFFSET(rwmutex_cls, "_writer", off_rw_writer);
    OFFSET(rwmutex_cls, "_pending_writers", off_rw_pw);
    OFFSET(rwmutex_cls, "_pending_readers", off_rw_pr);
    OFFSET(rwmutex_cls, "_reason_r", off_rw_reason_r);
    OFFSET(rwmutex_cls, "_reason_w", off_rw_reason_w);
    OFFSET(rw_ticket_cls, "goroutine", off_rwtix_goroutine);
    OFFSET(rw_ticket_cls, "granted", off_rwtix_granted);
    OFFSET(trace_cls, "active", off_trace_active);
    OFFSET(goro_cls, "gid", off_g_gid);
    OFFSET(goro_cls, "block_reason", off_g_blockreason);
    OFFSET(goro_cls, "external", off_g_external);
    OFFSET(goro_cls, "pending_error", off_g_pending);
    OFFSET(goro_cls, "_killed", off_g_killed);
    OFFSET(tk_goro_cls, "_hub", off_tkg_hub);
#undef OFFSET

#define STORE_TYPE(dst, src)                                        \
    do {                                                            \
        if (!PyType_Check(src)) {                                   \
            PyErr_SetString(PyExc_TypeError, "expected a class");   \
            return NULL;                                            \
        }                                                           \
        Py_INCREF(src);                                             \
        Py_XSETREF(dst, (PyTypeObject *)(src));                     \
    } while (0)
    STORE_TYPE(fo_chan, chan_cls);
    STORE_TYPE(fo_waiter, waiter_cls);
    STORE_TYPE(fo_selctx, selctx_cls);
    STORE_TYPE(fo_sendcase, sendcase_cls);
    STORE_TYPE(fo_recvcase, recvcase_cls);
    STORE_TYPE(fo_mutex, mutex_cls);
    STORE_TYPE(fo_mu_ticket, mu_ticket_cls);
    STORE_TYPE(fo_rwmutex, rwmutex_cls);
    STORE_TYPE(fo_rw_ticket, rw_ticket_cls);
    STORE_TYPE(fo_trace, trace_cls);
    STORE_TYPE(fo_goro, goro_cls);
#undef STORE_TYPE

    {
        PyObject *b = PyObject_GetAttrString(gstate_cls, "BLOCKED");
        if (b == NULL)
            return NULL;
        Py_XSETREF(st_blocked, b);
    }
    Py_INCREF(gopanic_exc);
    Py_XSETREF(fo_gopanic, gopanic_exc);
    Py_INCREF(killed_exc);
    Py_XSETREF(fo_killed, killed_exc);

#define DQ_METH(dst, name)                                          \
    do {                                                            \
        PyObject *mth = PyObject_GetAttrString(deque_cls, name);    \
        if (mth == NULL)                                            \
            return NULL;                                            \
        Py_XSETREF(dst, mth);                                       \
    } while (0)
    DQ_METH(dq_popleft_m, "popleft");
    DQ_METH(dq_append_m, "append");
    DQ_METH(dq_remove_m, "remove");
#undef DQ_METH

    fo_bound = 1;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */

static PyMethodDef hl_methods[] = {
    {"bind", hl_bind, METH_VARARGS,
     "bind(Goroutine, TaskletGoroutine, GState, TaskletOrNone): cache slot "
     "offsets, state constants and the continuation switch."},
    {"drive", hl_drive, METH_O,
     "drive(scheduler) -> verdict str, or None when the compiled loop "
     "cannot run this scheduler (pure loop takes over)."},
    {"bind_fastops", hl_bind_fastops, METH_VARARGS,
     "bind_fastops(Channel, _Waiter, _SelectContext, SendCase, RecvCase, "
     "Mutex, MutexTicket, RWMutex, RWTicket, Trace, Goroutine, "
     "TaskletGoroutine, GState, GoPanic, Killed, deque): cache the slot "
     "offsets and classes the channel/select/sync fast ops need."},
    {"chan_send", (PyCFunction)fo_chan_send, METH_FASTCALL,
     "chan_send(ch, value) -> None, or NotImplemented to use the pure op."},
    {"chan_recv", (PyCFunction)fo_chan_recv, METH_O,
     "chan_recv(ch) -> (value, ok), or NotImplemented."},
    {"chan_try_send", (PyCFunction)fo_chan_try_send, METH_FASTCALL,
     "chan_try_send(ch, value) -> bool, or NotImplemented."},
    {"chan_try_recv", (PyCFunction)fo_chan_try_recv, METH_O,
     "chan_try_recv(ch) -> (value, ok, received), or NotImplemented."},
    {"select_op", (PyCFunction)fo_select, METH_FASTCALL,
     "select_op(sched, cases, default) -> (index, value, ok), or "
     "NotImplemented."},
    {"mutex_lock", (PyCFunction)fo_mutex_lock, METH_O,
     "mutex_lock(mu) -> None, or NotImplemented."},
    {"mutex_trylock", (PyCFunction)fo_mutex_trylock, METH_O,
     "mutex_trylock(mu) -> bool, or NotImplemented."},
    {"mutex_unlock", (PyCFunction)fo_mutex_unlock, METH_O,
     "mutex_unlock(mu) -> None, or NotImplemented."},
    {"rw_rlock", (PyCFunction)fo_rw_rlock, METH_O,
     "rw_rlock(rw) -> None, or NotImplemented."},
    {"rw_runlock", (PyCFunction)fo_rw_runlock, METH_O,
     "rw_runlock(rw) -> None, or NotImplemented."},
    {"rw_lock", (PyCFunction)fo_rw_lock, METH_O,
     "rw_lock(rw) -> None, or NotImplemented."},
    {"rw_unlock", (PyCFunction)fo_rw_unlock, METH_O,
     "rw_unlock(rw) -> None, or NotImplemented."},
    {"vc_join", (PyCFunction)hl_vc_join, METH_FASTCALL,
     "vc_join(v, o): in-place pointwise max of two dense count lists."},
    {"vc_le", (PyCFunction)hl_vc_le, METH_FASTCALL,
     "vc_le(v, o) -> bool: pointwise v <= o with zero padding."},
    {"fastops_stats", (PyCFunction)hl_fastops_stats, METH_FASTCALL,
     "fastops_stats(reset=False) -> {'engaged': {...}, 'bailed': {...}} "
     "per-op counters for the compiled fast paths."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef hl_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_hotloop",
    .m_doc = "Compiled per-step scheduler loop and MT19937 BatchedRandom.",
    .m_size = -1,
    .m_methods = hl_methods,
};

PyMODINIT_FUNC
PyInit__hotloop(void)
{
    PyObject *m = PyModule_Create(&hl_module);
    if (m == NULL)
        return NULL;
    if (PyType_Ready(&BatchedRandom_Type) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&BatchedRandom_Type);
    if (PyModule_AddObject(m, "BatchedRandom",
                           (PyObject *)&BatchedRandom_Type) < 0) {
        Py_DECREF(&BatchedRandom_Type);
        Py_DECREF(m);
        return NULL;
    }

#define INTERN(var, text)                                   \
    do {                                                    \
        var = PyUnicode_InternFromString(text);             \
        if (var == NULL) {                                  \
            Py_DECREF(m);                                   \
            return NULL;                                    \
        }                                                   \
    } while (0)
    INTERN(s_runnable_attr, "_runnable");
    INTERN(s_rng, "rng");
    INTERN(s_stop_mode, "_stop_mode");
    INTERN(s_panicked_attr, "panicked");
    INTERN(s_budget, "_budget");
    INTERN(s_budget_used, "_budget_used");
    INTERN(s_steps, "_steps");
    INTERN(s_time_limit, "_time_limit");
    INTERN(s_clock, "clock");
    INTERN(s_now, "now");
    INTERN(s_current, "_current");
    INTERN(s_resume, "resume");
    INTERN(s_state, "state");
    INTERN(s_ended_at, "ended_at");
    INTERN(v_stopped, "stopped");
    INTERN(v_timeout, "timeout");
    INTERN(v_steps, "steps");
    INTERN(v_idle, "idle");
    INTERN(s_trace, "trace");
    INTERN(s_injector, "injector");
    INTERN(s_preempt, "preempt");
    INTERN(s_yield, "yield_to_scheduler");
    INTERN(r_select, "select");
#undef INTERN

#define MKSTR(var, text)                                    \
    do {                                                    \
        var = PyUnicode_FromString(text);                   \
        if (var == NULL) {                                  \
            Py_DECREF(m);                                   \
            return NULL;                                    \
        }                                                   \
    } while (0)
    MKSTR(msg_send_closed, "send on closed channel");
    MKSTR(msg_mu_unlock, "sync: unlock of unlocked mutex");
    MKSTR(msg_rw_runlock, "sync: RUnlock of unlocked RWMutex");
    MKSTR(msg_rw_unlock, "sync: Unlock of unlocked RWMutex");
#undef MKSTR
    long_zero = PyLong_FromLong(0);
    if (long_zero == NULL) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
