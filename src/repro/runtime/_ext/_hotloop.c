/* _hotloop: the compiled per-step scheduler core.
 *
 * Two things live here, both optional accelerations of pure-Python code
 * with bit-identical observable behaviour (asserted by the parity tests):
 *
 *  1. ``BatchedRandom`` — a C MT19937 producing the exact draw sequence of
 *     ``random.Random(seed).randrange(n)`` (CPython's init_by_array seeding
 *     and top-bits rejection sampling), replacing
 *     ``repro.runtime.fastrand.BatchedRandom``.  Because the scheduler, the
 *     ``select`` tie-breaker and the fault injector all share one stream,
 *     the C object is a *drop-in state holder*: Python callers invoke its
 *     ``randrange`` method, the compiled loop below reads the same MT state
 *     directly, and the interleaved sequence is unchanged.
 *
 *  2. ``drive(sched)`` — the fused scheduler loop: stop check, budget,
 *     RNG pick, continuation switch and after-resume bookkeeping with no
 *     Python frames in between.  Only runs when nothing observable differs
 *     from the pure loop: no trace consumer, no injector, no observe hooks,
 *     structured stop conditions, and the scheduler's RNG is the C type
 *     above.  Anything else returns None and the pure loop takes over.
 *
 * Goroutine fields are reached through slot offsets cached from the class
 * ``__slots__`` member descriptors at bind() time — an attribute read is a
 * single pointer load.  The scheduler itself is dict-backed; the loop keeps
 * its counters in C locals and writes them back on every exit path, while
 * ``_current`` (which primitives running *inside* a switched-to goroutine
 * read) is kept accurate step by step.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* MT19937 (CPython-compatible)                                        */
/* ------------------------------------------------------------------ */

#define MT_N 624
#define MT_M 397
#define MT_MATRIX_A 0x9908b0dfU
#define MT_UPPER_MASK 0x80000000U
#define MT_LOWER_MASK 0x7fffffffU

typedef struct {
    PyObject_HEAD
    PyObject *seed;          /* the seed object handed to __init__ */
    uint32_t mt[MT_N];
    int mti;
} BatchedRandomObject;

static void
mt_init_genrand(BatchedRandomObject *self, uint32_t s)
{
    int mti;
    self->mt[0] = s;
    for (mti = 1; mti < MT_N; mti++) {
        self->mt[mti] =
            (1812433253U * (self->mt[mti - 1] ^ (self->mt[mti - 1] >> 30)) + mti);
    }
    self->mti = mti;
}

static void
mt_init_by_array(BatchedRandomObject *self, uint32_t *init_key, size_t key_length)
{
    size_t i, j, k;
    mt_init_genrand(self, 19650218U);
    i = 1; j = 0;
    k = (MT_N > key_length ? MT_N : key_length);
    for (; k; k--) {
        self->mt[i] = (self->mt[i] ^
                       ((self->mt[i - 1] ^ (self->mt[i - 1] >> 30)) * 1664525U))
                      + init_key[j] + (uint32_t)j;
        i++; j++;
        if (i >= MT_N) { self->mt[0] = self->mt[MT_N - 1]; i = 1; }
        if (j >= key_length) j = 0;
    }
    for (k = MT_N - 1; k; k--) {
        self->mt[i] = (self->mt[i] ^
                       ((self->mt[i - 1] ^ (self->mt[i - 1] >> 30)) * 1566083941U))
                      - (uint32_t)i;
        i++;
        if (i >= MT_N) { self->mt[0] = self->mt[MT_N - 1]; i = 1; }
    }
    self->mt[0] = 0x80000000U;
}

static uint32_t
mt_genrand(BatchedRandomObject *self)
{
    uint32_t y;
    static const uint32_t mag01[2] = {0U, MT_MATRIX_A};
    uint32_t *mt = self->mt;

    if (self->mti >= MT_N) {
        int kk;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (mt[kk] & MT_UPPER_MASK) | (mt[kk + 1] & MT_LOWER_MASK);
            mt[kk] = mt[kk + MT_M] ^ (y >> 1) ^ mag01[y & 1U];
        }
        for (; kk < MT_N - 1; kk++) {
            y = (mt[kk] & MT_UPPER_MASK) | (mt[kk + 1] & MT_LOWER_MASK);
            mt[kk] = mt[kk + (MT_M - MT_N)] ^ (y >> 1) ^ mag01[y & 1U];
        }
        y = (mt[MT_N - 1] & MT_UPPER_MASK) | (mt[0] & MT_LOWER_MASK);
        mt[MT_N - 1] = mt[MT_M - 1] ^ (y >> 1) ^ mag01[y & 1U];
        self->mti = 0;
    }
    y = mt[self->mti++];
    y ^= (y >> 11);
    y ^= (y << 7) & 0x9d2c5680U;
    y ^= (y << 15) & 0xefc60000U;
    y ^= (y >> 18);
    return y;
}

/* CPython's _randbelow for n with bit_length <= 32: take the top k bits of
 * one MT word, reject until < n.  This is also exactly what the pure
 * BatchedRandom replays from its buffered words. */
static uint32_t
mt_randrange32(BatchedRandomObject *self, uint32_t n)
{
    int k = 32 - __builtin_clz(n);          /* n >= 1 */
    int shift = 32 - k;
    for (;;) {
        uint32_t r = mt_genrand(self) >> shift;
        if (r < n)
            return r;
    }
}

/* ------------------------------------------------------------------ */
/* BatchedRandom type                                                  */
/* ------------------------------------------------------------------ */

static int
br_init(BatchedRandomObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"seed", NULL};
    PyObject *seed = NULL;
    PyObject *index = NULL, *absval = NULL, *bits_obj = NULL, *bytes = NULL;
    uint32_t *key = NULL;
    int rc = -1;

    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O", kwlist, &seed))
        return -1;
    if (seed == NULL) {
        seed = PyLong_FromLong(0);
        if (seed == NULL)
            return -1;
    }
    else {
        Py_INCREF(seed);
    }

    index = PyNumber_Index(seed);
    if (index == NULL)
        goto done;
    absval = PyNumber_Absolute(index);
    if (absval == NULL)
        goto done;
    bits_obj = PyObject_CallMethod(absval, "bit_length", NULL);
    if (bits_obj == NULL)
        goto done;
    {
        Py_ssize_t bits = PyLong_AsSsize_t(bits_obj);
        if (bits < 0 && PyErr_Occurred())
            goto done;
        /* CPython: key is the absolute value as 32-bit chunks, low first;
         * zero seeds use a single zero chunk. */
        size_t keymax = bits == 0 ? 1 : ((size_t)bits - 1) / 32 + 1;
        key = PyMem_Calloc(keymax, 4);
        if (key == NULL) {
            PyErr_NoMemory();
            goto done;
        }
        bytes = PyObject_CallMethod(absval, "to_bytes", "ns",
                                    (Py_ssize_t)(keymax * 4), "little");
        if (bytes == NULL)
            goto done;
        memcpy(key, PyBytes_AS_STRING(bytes), keymax * 4);
#if PY_BIG_ENDIAN
        for (size_t i = 0; i < keymax; i++) {
            uint32_t w = key[i];
            key[i] = ((w & 0xffU) << 24) | ((w & 0xff00U) << 8) |
                     ((w >> 8) & 0xff00U) | (w >> 24);
        }
#endif
        mt_init_by_array(self, key, keymax);
    }
    Py_XSETREF(self->seed, seed);
    seed = NULL;
    rc = 0;
done:
    PyMem_Free(key);
    Py_XDECREF(bytes);
    Py_XDECREF(bits_obj);
    Py_XDECREF(absval);
    Py_XDECREF(index);
    Py_XDECREF(seed);
    return rc;
}

static void
br_dealloc(BatchedRandomObject *self)
{
    Py_XDECREF(self->seed);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* getrandbits(k): identical value construction to the pure BatchedRandom
 * (32-bit words low-order first, a partial top word takes the word's top
 * bits).  Cold path — only completeness and tests use it. */
static PyObject *
br_getrandbits(BatchedRandomObject *self, PyObject *arg)
{
    Py_ssize_t k = PyLong_AsSsize_t(arg);
    if (k == -1 && PyErr_Occurred())
        return NULL;
    if (k < 0) {
        PyErr_SetString(PyExc_ValueError,
                        "number of bits must be non-negative");
        return NULL;
    }
    if (k == 0)
        return PyLong_FromLong(0);
    if (k <= 32)
        return PyLong_FromUnsignedLong(mt_genrand(self) >> (32 - k));

    Py_ssize_t words = k / 32, rem = k % 32;
    Py_ssize_t total = words + (rem ? 1 : 0);
    uint32_t *buf = PyMem_Malloc((size_t)total * 4);
    if (buf == NULL)
        return PyErr_NoMemory();
    for (Py_ssize_t i = 0; i < words; i++)
        buf[i] = mt_genrand(self);
    if (rem)
        buf[words] = mt_genrand(self) >> (32 - rem);
#if PY_BIG_ENDIAN
    for (Py_ssize_t i = 0; i < total; i++) {
        uint32_t w = buf[i];
        buf[i] = ((w & 0xffU) << 24) | ((w & 0xff00U) << 8) |
                 ((w >> 8) & 0xff00U) | (w >> 24);
    }
#endif
    PyObject *result = _PyLong_FromByteArray((unsigned char *)buf,
                                             (size_t)total * 4, 1, 0);
    PyMem_Free(buf);
    return result;
}

static PyObject *
br_randrange(BatchedRandomObject *self, PyObject *arg)
{
    int overflow = 0;
    long long n = PyLong_AsLongLongAndOverflow(arg, &overflow);
    if (n == -1 && !overflow && PyErr_Occurred())
        return NULL;

    if (!overflow) {
        if (n <= 0) {
            PyErr_SetString(PyExc_ValueError, "empty range for randrange()");
            return NULL;
        }
        if (n <= 0xffffffffLL)
            return PyLong_FromUnsignedLong(
                mt_randrange32(self, (uint32_t)n));
        /* 33..63 bits: two words low-order first, partial top word. */
        {
            uint64_t un = (uint64_t)n;
            int k = 64 - __builtin_clzll(un);
            int rem = k - 32;             /* 1..31 */
            for (;;) {
                uint64_t v = (uint64_t)mt_genrand(self);
                v |= (uint64_t)(mt_genrand(self) >> (32 - rem)) << 32;
                if (v < un)
                    return PyLong_FromUnsignedLongLong(v);
            }
        }
    }
    if (overflow < 0) {
        PyErr_SetString(PyExc_ValueError, "empty range for randrange()");
        return NULL;
    }
    /* Arbitrarily wide n: rejection loop over big-int getrandbits. */
    {
        PyObject *bits_obj = PyObject_CallMethod(arg, "bit_length", NULL);
        if (bits_obj == NULL)
            return NULL;
        for (;;) {
            PyObject *r = br_getrandbits(self, bits_obj);
            if (r == NULL) {
                Py_DECREF(bits_obj);
                return NULL;
            }
            int lt = PyObject_RichCompareBool(r, arg, Py_LT);
            if (lt < 0) {
                Py_DECREF(r);
                Py_DECREF(bits_obj);
                return NULL;
            }
            if (lt) {
                Py_DECREF(bits_obj);
                return r;
            }
            Py_DECREF(r);
        }
    }
}

static PyObject *
br_repr(BatchedRandomObject *self)
{
    return PyUnicode_FromFormat("<BatchedRandom seed=%S>",
                                self->seed ? self->seed : Py_None);
}

static PyMethodDef br_methods[] = {
    {"randrange", (PyCFunction)br_randrange, METH_O,
     "Uniform draw from range(n); CPython's rejection sampling."},
    {"getrandbits", (PyCFunction)br_getrandbits, METH_O,
     "Buffered getrandbits: identical output, word-at-a-time source."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef br_members[] = {
    {"seed", T_OBJECT_EX, offsetof(BatchedRandomObject, seed), 0,
     "the seed this stream was constructed from"},
    {NULL},
};

static PyTypeObject BatchedRandom_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_hotloop.BatchedRandom",
    .tp_basicsize = sizeof(BatchedRandomObject),
    .tp_dealloc = (destructor)br_dealloc,
    .tp_repr = (reprfunc)br_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Drop-in randrange(n) source matching random.Random(seed) "
              "exactly (compiled).",
    .tp_methods = br_methods,
    .tp_members = br_members,
    .tp_init = (initproc)br_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* bind(): cache classes, slot offsets and interned constants          */
/* ------------------------------------------------------------------ */

static int hl_bound = 0;

static PyTypeObject *tk_go_type = NULL;     /* TaskletGoroutine */
static Py_ssize_t off_state = -1;           /* Goroutine.state */
static Py_ssize_t off_ended_at = -1;        /* Goroutine.ended_at */
static Py_ssize_t off_tk = -1;              /* TaskletGoroutine._tk */
static PyObject *switch_meth = NULL;        /* unbound Tasklet.switch */

static PyObject *st_running = NULL, *st_runnable = NULL, *st_done = NULL,
                *st_panicked = NULL, *st_killed = NULL, *terminal_set = NULL;

static PyObject *s_runnable_attr = NULL, *s_rng = NULL, *s_stop_mode = NULL,
                *s_panicked_attr = NULL, *s_budget = NULL, *s_budget_used = NULL,
                *s_steps = NULL, *s_time_limit = NULL, *s_clock = NULL,
                *s_now = NULL, *s_current = NULL, *s_resume = NULL,
                *s_state = NULL, *s_ended_at = NULL;

static PyObject *v_stopped = NULL, *v_timeout = NULL, *v_steps = NULL,
                *v_idle = NULL;

static int
member_offset(PyObject *cls, const char *name, Py_ssize_t *out)
{
    PyObject *descr = PyObject_GetAttrString(cls, name);
    if (descr == NULL)
        return -1;
    if (Py_TYPE(descr) != &PyMemberDescr_Type) {
        Py_DECREF(descr);
        PyErr_Format(PyExc_TypeError,
                     "%s is not a slot member descriptor", name);
        return -1;
    }
    *out = ((PyMemberDescrObject *)descr)->d_member->offset;
    Py_DECREF(descr);
    return 0;
}

static PyObject *
hl_bind(PyObject *module, PyObject *args)
{
    PyObject *goro_cls, *tk_goro_cls, *gstate_cls, *tasklet_cls;
    if (!PyArg_ParseTuple(args, "OOOO",
                          &goro_cls, &tk_goro_cls, &gstate_cls, &tasklet_cls))
        return NULL;
    if (member_offset(goro_cls, "state", &off_state) < 0)
        return NULL;
    if (member_offset(goro_cls, "ended_at", &off_ended_at) < 0)
        return NULL;
    if (member_offset(tk_goro_cls, "_tk", &off_tk) < 0)
        return NULL;
    if (!PyType_Check(tk_goro_cls)) {
        PyErr_SetString(PyExc_TypeError, "expected TaskletGoroutine class");
        return NULL;
    }
    Py_INCREF(tk_goro_cls);
    Py_XSETREF(tk_go_type, (PyTypeObject *)tk_goro_cls);

#define FETCH(dst, name)                                            \
    do {                                                            \
        PyObject *v = PyObject_GetAttrString(gstate_cls, name);     \
        if (v == NULL)                                              \
            return NULL;                                            \
        Py_XSETREF(dst, v);                                         \
    } while (0)
    FETCH(st_running, "RUNNING");
    FETCH(st_runnable, "RUNNABLE");
    FETCH(st_done, "DONE");
    FETCH(st_panicked, "PANICKED");
    FETCH(st_killed, "KILLED");
    FETCH(terminal_set, "TERMINAL");
#undef FETCH

    if (tasklet_cls != Py_None) {
        PyObject *m = PyObject_GetAttrString(tasklet_cls, "switch");
        if (m == NULL)
            return NULL;
        Py_XSETREF(switch_meth, m);
    }
    else {
        Py_CLEAR(switch_meth);
    }
    hl_bound = 1;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* drive(sched)                                                        */
/* ------------------------------------------------------------------ */

static inline PyObject *
slot_get(PyObject *obj, Py_ssize_t off)
{
    return *(PyObject **)((char *)obj + off);   /* borrowed; may be NULL */
}

static inline void
slot_set(PyObject *obj, Py_ssize_t off, PyObject *value)
{
    PyObject **p = (PyObject **)((char *)obj + off);
    PyObject *old = *p;
    Py_INCREF(value);
    *p = value;
    Py_XDECREF(old);
}

static inline int
state_is_terminal(PyObject *st)
{
    if (st == st_done || st == st_panicked || st == st_killed)
        return 1;
    if (st == st_running || st == st_runnable)
        return 0;
    /* Unknown string object (shouldn't happen: states are always GState
     * constants); fall back to a set lookup so behaviour stays correct. */
    return PySet_Contains(terminal_set, st) == 1;
}

static long long
attr_as_longlong(PyObject *obj, PyObject *name, int *err)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL) {
        *err = 1;
        return 0;
    }
    long long out = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (out == -1 && PyErr_Occurred())
        *err = 1;
    return out;
}

/* Remove g from the runnable list by identity (Goroutine defines no __eq__,
 * so this matches ``list.remove`` exactly). */
static void
runnable_remove(PyObject *runnable, PyObject *g)
{
    Py_ssize_t m = PyList_GET_SIZE(runnable);
    for (Py_ssize_t i = 0; i < m; i++) {
        if (PyList_GET_ITEM(runnable, i) == g) {
            PyList_SetSlice(runnable, i, i + 1, NULL);
            return;
        }
    }
}

static PyObject *
hl_drive(PyObject *module, PyObject *sched)
{
    if (!hl_bound) {
        PyErr_SetString(PyExc_RuntimeError, "_hotloop.bind() has not run");
        return NULL;
    }

    PyObject *runnable = NULL, *rng_obj = NULL, *stop_mode = NULL,
             *panicked = NULL, *clock = NULL, *now_obj = NULL,
             *time_limit = NULL;
    PyObject *stop_g = NULL;          /* borrowed from stop_mode */
    BatchedRandomObject *rng = NULL;
    PyObject *verdict = NULL;         /* borrowed from the v_* constants */
    int failed = 0;
    int stop_main = 0;
    int time_exceeded = 0;
    long long budget = 0, budget_used = 0, steps = 0;

    runnable = PyObject_GetAttr(sched, s_runnable_attr);
    if (runnable == NULL || !PyList_CheckExact(runnable))
        goto ineligible;
    rng_obj = PyObject_GetAttr(sched, s_rng);
    if (rng_obj == NULL || Py_TYPE(rng_obj) != &BatchedRandom_Type)
        goto ineligible;
    rng = (BatchedRandomObject *)rng_obj;
    stop_mode = PyObject_GetAttr(sched, s_stop_mode);
    if (stop_mode == NULL || !PyTuple_Check(stop_mode) ||
        PyTuple_GET_SIZE(stop_mode) != 2)
        goto ineligible;
    {
        PyObject *kind = PyTuple_GET_ITEM(stop_mode, 0);
        stop_g = PyTuple_GET_ITEM(stop_mode, 1);
        if (PyUnicode_CompareWithASCIIString(kind, "main") == 0)
            stop_main = 1;
        else if (PyUnicode_CompareWithASCIIString(kind, "panic") == 0)
            stop_main = 0;
        else
            goto ineligible;
        if (stop_main && stop_g == Py_None)
            goto ineligible;
    }

    {
        int err = 0;
        budget = attr_as_longlong(sched, s_budget, &err);
        budget_used = attr_as_longlong(sched, s_budget_used, &err);
        steps = attr_as_longlong(sched, s_steps, &err);
        if (err)
            goto fail_entry;
    }
    panicked = PyObject_GetAttr(sched, s_panicked_attr);
    if (panicked == NULL)
        goto fail_entry;
    clock = PyObject_GetAttr(sched, s_clock);
    if (clock == NULL)
        goto fail_entry;
    now_obj = PyObject_GetAttr(clock, s_now);
    if (now_obj == NULL)
        goto fail_entry;
    time_limit = PyObject_GetAttr(sched, s_time_limit);
    if (time_limit == NULL)
        goto fail_entry;
    if (time_limit != Py_None) {
        double now = PyFloat_AsDouble(now_obj);
        double lim = PyFloat_AsDouble(time_limit);
        if (PyErr_Occurred())
            goto fail_entry;
        time_exceeded = (now >= lim);
    }

    /* ---------------- the loop ---------------- */
    {
        int first = 1;
        for (;;) {
            /* Stop check — same order as the pure _advance. */
            int stop;
            if (stop_main) {
                PyObject *st = slot_get(stop_g, off_state);
                stop = (st != NULL && state_is_terminal(st)) ||
                       (panicked != Py_None);
            }
            else {
                stop = (panicked != Py_None);
            }
            if (stop) { verdict = v_stopped; break; }
            /* The virtual clock is frozen while goroutines run (timers only
             * fire from the idle path, the injector is disabled here), so
             * the time-limit comparison is loop-invariant. */
            if (first) {
                first = 0;
                if (time_exceeded) { verdict = v_timeout; break; }
            }
            if (budget_used >= budget) { verdict = v_steps; break; }
            Py_ssize_t nrun = PyList_GET_SIZE(runnable);
            if (nrun == 0) { verdict = v_idle; break; }
            budget_used++;
            steps++;
            uint32_t idx = mt_randrange32(rng, (uint32_t)nrun);
            PyObject *g = PyList_GET_ITEM(runnable, idx);
            Py_INCREF(g);

            if (Py_TYPE(g) == tk_go_type && switch_meth != NULL) {
                /* Fast path: slot writes + a direct continuation switch
                 * (this is resume() with the Python frames scraped off). */
                slot_set(g, off_state, st_running);
                if (PyObject_SetAttr(sched, s_current, g) < 0) {
                    Py_DECREF(g);
                    failed = 1;
                    break;
                }
                PyObject *tk = slot_get(g, off_tk);
                if (tk == NULL || tk == Py_None) {
                    Py_DECREF(g);
                    PyErr_SetString(PyExc_RuntimeError,
                                    "tasklet goroutine has no continuation");
                    failed = 1;
                    break;
                }
                PyObject *sargs[1] = {tk};
                PyObject *r = PyObject_Vectorcall(switch_meth, sargs, 1, NULL);
                if (r == NULL) {
                    Py_DECREF(g);
                    failed = 1;
                    break;
                }
                Py_DECREF(r);
                PyObject *st = slot_get(g, off_state);
                if (st == st_running) {
                    slot_set(g, off_state, st_runnable);
                }
                else if (st != NULL && state_is_terminal(st)) {
                    runnable_remove(runnable, g);
                    slot_set(g, off_ended_at, now_obj);
                    if (st == st_panicked && panicked == Py_None) {
                        if (PyObject_SetAttr(sched, s_panicked_attr, g) < 0) {
                            Py_DECREF(g);
                            failed = 1;
                            break;
                        }
                        Py_INCREF(g);
                        Py_SETREF(panicked, g);
                    }
                }
                /* BLOCKED: block() already dequeued it before yielding. */
            }
            else {
                /* Generic path (thread-compat hosts, greenlet or generator
                 * vehicles in a centralized run): call resume() and do the
                 * after-resume bookkeeping through ordinary attributes. */
                if (PyObject_SetAttr(sched, s_current, g) < 0) {
                    Py_DECREF(g);
                    failed = 1;
                    break;
                }
                PyObject *rargs[1] = {g};
                PyObject *r = PyObject_VectorcallMethod(s_resume, rargs, 1,
                                                        NULL);
                if (r == NULL) {
                    Py_DECREF(g);
                    failed = 1;
                    break;
                }
                Py_DECREF(r);
                PyObject *st = PyObject_GetAttr(g, s_state);
                if (st == NULL) {
                    Py_DECREF(g);
                    failed = 1;
                    break;
                }
                if (st == st_running) {
                    if (PyObject_SetAttr(g, s_state, st_runnable) < 0) {
                        Py_DECREF(st);
                        Py_DECREF(g);
                        failed = 1;
                        break;
                    }
                }
                else if (state_is_terminal(st)) {
                    runnable_remove(runnable, g);
                    if (PyObject_SetAttr(g, s_ended_at, now_obj) < 0) {
                        Py_DECREF(st);
                        Py_DECREF(g);
                        failed = 1;
                        break;
                    }
                    if (st == st_panicked && panicked == Py_None) {
                        if (PyObject_SetAttr(sched, s_panicked_attr, g) < 0) {
                            Py_DECREF(st);
                            Py_DECREF(g);
                            failed = 1;
                            break;
                        }
                        Py_INCREF(g);
                        Py_SETREF(panicked, g);
                    }
                }
                Py_DECREF(st);
            }
            Py_DECREF(g);
        }
    }

    /* Write the loop-local counters back and clear _current (the pure
     * centralized loop leaves _current None between decisions too). */
    {
        PyObject *exc_type = NULL, *exc_val = NULL, *exc_tb = NULL;
        if (failed)
            PyErr_Fetch(&exc_type, &exc_val, &exc_tb);
        PyObject *bu = PyLong_FromLongLong(budget_used);
        PyObject *stp = PyLong_FromLongLong(steps);
        int wb_failed = (bu == NULL || stp == NULL);
        if (!wb_failed) {
            if (PyObject_SetAttr(sched, s_budget_used, bu) < 0 ||
                PyObject_SetAttr(sched, s_steps, stp) < 0)
                wb_failed = 1;
        }
        if (!failed && !wb_failed &&
            PyObject_SetAttr(sched, s_current, Py_None) < 0)
            wb_failed = 1;
        Py_XDECREF(bu);
        Py_XDECREF(stp);
        if (failed)
            PyErr_Restore(exc_type, exc_val, exc_tb);
        else if (wb_failed)
            failed = 1;
    }

    Py_XDECREF(time_limit);
    Py_XDECREF(now_obj);
    Py_XDECREF(clock);
    Py_XDECREF(panicked);
    Py_XDECREF(stop_mode);
    Py_XDECREF(rng_obj);
    Py_XDECREF(runnable);
    if (failed)
        return NULL;
    Py_INCREF(verdict);
    return verdict;

ineligible:
    /* Static conditions for the compiled loop don't hold for this run:
     * tell Python to use the pure loop (None).  Clear any attribute error
     * raised while probing. */
    PyErr_Clear();
    Py_XDECREF(stop_mode);
    Py_XDECREF(rng_obj);
    Py_XDECREF(runnable);
    Py_RETURN_NONE;

fail_entry:
    Py_XDECREF(time_limit);
    Py_XDECREF(now_obj);
    Py_XDECREF(clock);
    Py_XDECREF(panicked);
    Py_XDECREF(stop_mode);
    Py_XDECREF(rng_obj);
    Py_XDECREF(runnable);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */

static PyMethodDef hl_methods[] = {
    {"bind", hl_bind, METH_VARARGS,
     "bind(Goroutine, TaskletGoroutine, GState, TaskletOrNone): cache slot "
     "offsets, state constants and the continuation switch."},
    {"drive", hl_drive, METH_O,
     "drive(scheduler) -> verdict str, or None when the compiled loop "
     "cannot run this scheduler (pure loop takes over)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef hl_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_hotloop",
    .m_doc = "Compiled per-step scheduler loop and MT19937 BatchedRandom.",
    .m_size = -1,
    .m_methods = hl_methods,
};

PyMODINIT_FUNC
PyInit__hotloop(void)
{
    PyObject *m = PyModule_Create(&hl_module);
    if (m == NULL)
        return NULL;
    if (PyType_Ready(&BatchedRandom_Type) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&BatchedRandom_Type);
    if (PyModule_AddObject(m, "BatchedRandom",
                           (PyObject *)&BatchedRandom_Type) < 0) {
        Py_DECREF(&BatchedRandom_Type);
        Py_DECREF(m);
        return NULL;
    }

#define INTERN(var, text)                                   \
    do {                                                    \
        var = PyUnicode_InternFromString(text);             \
        if (var == NULL) {                                  \
            Py_DECREF(m);                                   \
            return NULL;                                    \
        }                                                   \
    } while (0)
    INTERN(s_runnable_attr, "_runnable");
    INTERN(s_rng, "rng");
    INTERN(s_stop_mode, "_stop_mode");
    INTERN(s_panicked_attr, "panicked");
    INTERN(s_budget, "_budget");
    INTERN(s_budget_used, "_budget_used");
    INTERN(s_steps, "_steps");
    INTERN(s_time_limit, "_time_limit");
    INTERN(s_clock, "clock");
    INTERN(s_now, "now");
    INTERN(s_current, "_current");
    INTERN(s_resume, "resume");
    INTERN(s_state, "state");
    INTERN(s_ended_at, "ended_at");
    INTERN(v_stopped, "stopped");
    INTERN(v_timeout, "timeout");
    INTERN(v_steps, "steps");
    INTERN(v_idle, "idle");
#undef INTERN
    return m;
}
