"""Exception hierarchy for the Go-concurrency simulator.

The simulator mirrors Go's failure modes:

* ``GoPanic`` corresponds to a Go ``panic``.  An unrecovered panic in any
  goroutine aborts the whole run, exactly as in Go.
* ``DeadlockError`` corresponds to the runtime's
  ``fatal error: all goroutines are asleep - deadlock!`` report.
* ``Killed`` is host-level machinery: it unwinds goroutine threads that are
  abandoned when a run ends (leaked goroutines, panic aborts).  User code
  must never catch it.
"""

from __future__ import annotations


class SimulatorError(Exception):
    """Base class for every error raised by the simulator itself."""


class GoPanic(SimulatorError):
    """A Go ``panic``.

    Raised by primitives on rule violations (send on closed channel, close of
    closed channel, negative WaitGroup counter, ...) and by user code via
    :meth:`repro.runtime.runtime.Runtime.panic`.
    """

    def __init__(self, value: object):
        super().__init__(value)
        self.value = value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"panic: {self.value}"


class DeadlockError(SimulatorError):
    """All goroutines are asleep: the built-in detector's fatal report."""

    def __init__(self, message: str, blocked: tuple = ()):  # type: ignore[type-arg]
        super().__init__(message)
        #: Descriptions of the goroutines that were blocked at report time.
        self.blocked = tuple(blocked)


class Killed(BaseException):
    """Injected into a goroutine thread to force it to unwind.

    Derives from ``BaseException`` so ordinary ``except Exception`` blocks in
    user programs cannot swallow it.
    """


class SchedulerStateError(SimulatorError):
    """An operation was attempted outside a running goroutine context."""


class StepLimitExceeded(SimulatorError):
    """The run exceeded its configured scheduling-step budget.

    Used as a livelock backstop: a purely spinning program never deadlocks,
    so the scheduler bounds total steps instead of hanging the host.
    """
