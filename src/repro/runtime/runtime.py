"""The public runtime facade: what a Go program sees.

A simulated program is a callable ``main(rt)`` where ``rt`` is a
:class:`Runtime`.  All concurrency primitives are constructed through the
runtime (``rt.make_chan``, ``rt.mutex``, ``rt.waitgroup``, ...), mirroring
how a Go program reaches them through the language and standard library.

Example::

    from repro import run

    def main(rt):
        ch = rt.make_chan(capacity=1)

        def worker():
            ch.send(42)

        rt.go(worker)
        assert ch.recv() == 42

    result = run(main, seed=7)
    assert result.status == "ok"
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import DeadlockError, GoPanic, StepLimitExceeded
from .goroutine import Goroutine, GState
from .scheduler import Scheduler, short_site
from .trace import EventKind, Trace


def _creation_site(depth: int = 2) -> Optional[str]:
    """``file:line`` of the caller ``depth`` frames up, for reports."""
    try:
        frame = sys._getframe(depth)
    except ValueError:  # pragma: no cover - shallow stacks in exotic hosts
        return None
    return f"{frame.f_code.co_filename.rsplit('/', 1)[-1]}:{frame.f_lineno}"


def _is_anonymous(fn: Callable[..., Any]) -> bool:
    """Heuristic mirroring the paper's named/anonymous goroutine split.

    Go's anonymous functions correspond to Python lambdas and closures
    defined inside another function; module-level functions and bound
    methods correspond to named functions.
    """
    name = getattr(fn, "__name__", "")
    if name == "<lambda>":
        return True
    qualname = getattr(fn, "__qualname__", "")
    return "<locals>" in qualname


class Runtime:
    """Per-run facade handing out primitives bound to one scheduler."""

    def __init__(self, scheduler: Scheduler):
        self.sched = scheduler
        self._next_obj_id = 1
        self._fresh_ids: Dict[str, int] = {}
        self._shared_vars: List[Any] = []
        #: Every channel created through :meth:`make_chan`, in creation
        #: order; the fault injector targets channels by name through this.
        self._channels: List[Any] = []
        #: Every cancellable context created in this run (WithCancel /
        #: WithTimeout), for context-cancellation storms.
        self._cancel_contexts: List[Any] = []
        #: Every simulated network fabric created through :meth:`network`,
        #: in creation order; the fault injector reaches partitions, link
        #: loss and link delays through this.
        self._networks: List[Any] = []

    # ------------------------------------------------------------------
    # Object identity for traces
    # ------------------------------------------------------------------

    def new_obj_id(self) -> int:
        oid = self._next_obj_id
        self._next_obj_id += 1
        return oid

    def fresh_id(self, kind: str = "id") -> int:
        """Per-run monotone counter; an independent sequence per ``kind``.

        Application components that embed an id in the name of a seeded
        RNG (txn-retry jitter, container restart backoff) must draw the
        id here: a process-global counter would make the schedule depend
        on how many runs preceded this one in the process, breaking
        same-seed-same-trace.
        """
        nxt = self._fresh_ids.get(kind, 0) + 1
        self._fresh_ids[kind] = nxt
        return nxt

    # ------------------------------------------------------------------
    # Goroutines
    # ------------------------------------------------------------------

    def go(self, fn: Callable[..., Any], *args: Any, name: Optional[str] = None) -> Goroutine:
        """Start a goroutine, like Go's ``go fn(args...)``."""
        g = self.sched.spawn(
            fn,
            args,
            name=name,
            anonymous=_is_anonymous(fn),
            creation_site=_creation_site(),
        )
        # Creating a goroutine is itself a scheduling point in practice.
        self.sched.schedule_point()
        return g

    def gosched(self) -> None:
        """Yield the processor, like ``runtime.Gosched()``."""
        self.sched.schedule_point()

    def gid(self) -> int:
        """The id of the calling goroutine."""
        return self.sched.current.gid

    def panic(self, value: object) -> "GoPanic":
        """Panic, like Go's ``panic(value)``.  Never returns."""
        raise GoPanic(value)

    def num_goroutine(self) -> int:
        """Live goroutine count, like ``runtime.NumGoroutine()``."""
        return len(self.sched.live_goroutines())

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def now(self) -> float:
        """Virtual-clock time in seconds."""
        return self.sched.clock.now

    def sleep(self, duration: float) -> None:
        """Sleep on the virtual clock, like ``time.Sleep``."""
        g = self.sched.current
        self.sched.emit(EventKind.SLEEP, info={"duration": duration})
        if duration <= 0:
            self.sched.schedule_point()
            return
        woke = [False]

        def wake() -> None:
            woke[0] = True
            self.sched.ready(g)

        self.sched.clock.call_after(duration, wake)
        while not woke[0]:
            self.sched.block("time.sleep")

    def external_wait(self, what: str, duration: Optional[float] = None) -> None:
        """Block on a modelled external resource (network, disk, subprocess).

        The built-in deadlock detector ignores goroutines parked here — the
        second miss cause the paper identifies in Section 5.3.  With a
        ``duration`` the wait completes on the virtual clock; without one the
        goroutine waits forever.
        """
        g = self.sched.current
        self.sched.emit(EventKind.EXTERNAL_WAIT, info={"what": what})
        if duration is None:
            while True:
                self.sched.block(f"external:{what}", external=True)
            return
        woke = [False]

        def wake() -> None:
            woke[0] = True
            self.sched.ready(g)

        self.sched.clock.call_after(duration, wake)
        while not woke[0]:
            self.sched.block(f"external:{what}", external=True)

    # ------------------------------------------------------------------
    # Channels and select
    # ------------------------------------------------------------------

    def make_chan(self, capacity: int = 0, name: Optional[str] = None):
        """Create a channel, like ``make(chan T)`` / ``make(chan T, n)``."""
        from ..chan.channel import Channel

        channel = Channel(self, capacity=capacity, name=name)
        self._channels.append(channel)
        return channel

    def nil_chan(self):
        """A nil channel: every send/receive on it blocks forever."""
        from ..chan.channel import NilChannel

        return NilChannel(self)

    def select(self, *cases, default: bool = False):
        """Wait on multiple channel operations, like Go's ``select``.

        Args:
            cases: :func:`repro.chan.cases.send` / :func:`repro.chan.cases.recv`
                case objects.
            default: when True, behaves like a ``select`` with a ``default``
                branch and returns index ``-1`` immediately if no case is
                ready.

        Returns:
            ``(index, value, ok)``: the chosen case index (``-1`` for
            default), the received value (None for send cases), and the
            channel-open flag.
        """
        sched = self.sched
        fast = sched._fastops
        if fast is not None:
            # Dispatch the compiled op before paying for the pure
            # machinery below; it validates the cases itself and bails
            # (idempotently, before anything observable) on anything it
            # cannot handle, so re-dispatching inside the slow path is
            # harmless.
            outcome = fast.select_op(sched, cases, default)
            if outcome is not NotImplemented:
                return outcome
        from ..chan.select import select as _select

        return _select(self, cases, default=default)

    # ------------------------------------------------------------------
    # Shared-memory synchronization
    # ------------------------------------------------------------------

    def mutex(self, name: Optional[str] = None):
        from ..sync.mutex import Mutex

        return Mutex(self, name=name)

    def rwmutex(self, name: Optional[str] = None, writer_priority: bool = True):
        from ..sync.rwmutex import RWMutex

        return RWMutex(self, name=name, writer_priority=writer_priority)

    def waitgroup(self, name: Optional[str] = None):
        from ..sync.waitgroup import WaitGroup

        return WaitGroup(self, name=name)

    def once(self, name: Optional[str] = None):
        from ..sync.once import Once

        return Once(self, name=name)

    def cond(self, locker, name: Optional[str] = None):
        from ..sync.cond import Cond

        return Cond(self, locker, name=name)

    def atomic_int(self, value: int = 0, name: Optional[str] = None):
        from ..sync.atomic import AtomicInt

        return AtomicInt(self, value, name=name)

    def atomic_value(self, value: Any = None, name: Optional[str] = None):
        from ..sync.atomic import AtomicValue

        return AtomicValue(self, value, name=name)

    def sync_map(self, name: Optional[str] = None):
        """A concurrency-safe map, like ``sync.Map``."""
        from ..sync.syncmap import SyncMap

        return SyncMap(self, name=name)

    def errgroup(self, ctx_parent: Any = None, with_ctx: bool = False):
        """An errgroup, like ``errgroup.Group`` / ``errgroup.WithContext``."""
        from ..stdlib.errgroup import new_group, with_context

        if with_ctx:
            return with_context(self, ctx_parent)
        return new_group(self)

    def shared(self, name: str, value: Any = None):
        """An *unsynchronized* shared variable.

        Accesses through :class:`repro.sync.shared.SharedVar` are visible to
        the data race detector; this models plain Go struct fields and local
        variables captured by anonymous functions.
        """
        from ..sync.shared import SharedVar

        var = SharedVar(self, name, value)
        self._shared_vars.append(var)
        return var

    # ------------------------------------------------------------------
    # Standard-library analogues
    # ------------------------------------------------------------------

    def background(self):
        """Root context, like ``context.Background()``."""
        from ..stdlib.context import background

        return background(self)

    def with_cancel(self, parent):
        from ..stdlib.context import with_cancel

        return with_cancel(self, parent)

    def with_timeout(self, parent, timeout: float):
        from ..stdlib.context import with_timeout

        return with_timeout(self, parent, timeout)

    def with_value(self, parent, key, value):
        from ..stdlib.context import with_value

        return with_value(self, parent, key, value)

    def new_timer(self, duration: float):
        from ..stdlib.gotime import Timer

        return Timer(self, duration)

    def after(self, duration: float):
        """A channel that fires once after ``duration``, like ``time.After``."""
        from ..stdlib.gotime import Timer

        return Timer(self, duration).c

    def new_ticker(self, interval: float):
        from ..stdlib.gotime import Ticker

        return Ticker(self, interval)

    def pipe(self):
        """An in-memory synchronous pipe, like ``io.Pipe()``."""
        from ..stdlib.iopipe import Pipe

        p = Pipe(self)
        return p.reader, p.writer

    # ------------------------------------------------------------------
    # Simulated network (repro.net)
    # ------------------------------------------------------------------

    def network(self, name: Optional[str] = None, *,
                default_latency: float = 0.001,
                log_messages: bool = True):
        """Create a deterministic simulated network fabric (:mod:`repro.net`).

        Nodes join the fabric, listen on ``"node:port"`` addresses and dial
        each other over message-oriented connections with per-link
        virtual-clock latency.  Fault plans reach partitions and link loss
        through the runtime's network list.
        """
        from ..net.fabric import Network

        net = Network(self, name=name, default_latency=default_latency,
                      log_messages=log_messages)
        self._networks.append(net)
        return net


class RunResult:
    """Outcome of one simulated execution.

    Attributes:
        status: ``"ok"`` | ``"leak"`` | ``"deadlock"`` | ``"panic"`` |
            ``"hang"`` | ``"timeout"`` | ``"steps"``.
        main_result: return value of the main goroutine (when it completed).
        leaked: goroutines still blocked after main returned and the
            runnable backlog drained — the paper's goroutine-leak symptom.
        abandoned: goroutines that were still runnable when the run was
            torn down (drain budget exhausted or drain disabled).
        panic_value: the unrecovered panic that aborted the run, if any.
        deadlock: the built-in detector's report, if it fired.
        trace: the full event trace (when ``keep_trace``).
        stuck_host_threads: goroutines whose host threads survived the kill
            join timeout at teardown (previously dropped silently).
        backend: the resolved goroutine vehicle that ran this simulation
            (``"greenlet"`` | ``"tasklet"`` | ``"generator"`` |
            ``"thread"``) — what ``backend="coroutine"`` actually picked.
        compiled: True when the scheduler had compiled accelerators loaded
            (the fused step loop and/or the channel/select/sync fast ops);
            False on pure-Python runs (``REPRO_NO_CEXT=1``, off-platform,
            or under ``force_pure``).  Availability, not engagement: a
            traced run reports True even though every fast op bailed out.
        injected: records of faults the injector fired during this run
            (empty when no fault plan was attached).
        observation: the :class:`repro.observe.Observer` that watched this
            run (``run(..., observe=...)``), carrying the metrics registry,
            profiles, and exporters; None when the run was unobserved.
    """

    def __init__(
        self,
        status: str,
        *,
        seed: int,
        steps: int,
        end_time: float,
        goroutines: Sequence[Goroutine],
        main_result: Any = None,
        leaked: Sequence[Goroutine] = (),
        abandoned: Sequence[Goroutine] = (),
        panic_value: Optional[BaseException] = None,
        panic_goroutine: Optional[Goroutine] = None,
        deadlock: Optional[DeadlockError] = None,
        trace: Optional[Trace] = None,
        stuck_host_threads: Sequence[Goroutine] = (),
        injected: Sequence[Any] = (),
        observation: Optional[Any] = None,
        backend: Optional[str] = None,
        compiled: Optional[bool] = None,
    ):
        self.status = status
        self.seed = seed
        self.steps = steps
        self.end_time = end_time
        self.goroutines = list(goroutines)
        self.main_result = main_result
        self.leaked = list(leaked)
        self.abandoned = list(abandoned)
        self.panic_value = panic_value
        self.panic_goroutine = panic_goroutine
        self.deadlock = deadlock
        self.trace = trace
        self.stuck_host_threads = list(stuck_host_threads)
        self.injected = list(injected)
        self.observation = observation
        self.backend = backend
        self.compiled = compiled

    @property
    def completed(self) -> bool:
        """True when the main goroutine returned normally."""
        return self.status in ("ok", "leak")

    @property
    def leak_count(self) -> int:
        return len(self.leaked)

    @property
    def blocked_forever(self) -> List[str]:
        """Descriptions of all stuck goroutines (leaked or deadlocked)."""
        if self.deadlock is not None:
            return list(self.deadlock.blocked)
        return [g.describe() for g in self.leaked]

    def to_dict(self) -> dict:
        """A JSON-serializable summary, for ``--json`` CLI output and CI."""
        main_result = self.main_result
        if not isinstance(main_result, (type(None), bool, int, float, str)):
            main_result = repr(main_result)
        return {
            "status": self.status,
            "seed": self.seed,
            "steps": self.steps,
            "virtual_time": self.end_time,
            "main_result": main_result,
            "goroutines": len(self.goroutines),
            "leaked": [g.describe() for g in self.leaked],
            "abandoned": [g.describe() for g in self.abandoned],
            "panic": None if self.panic_value is None else str(self.panic_value),
            "deadlock": list(self.deadlock.blocked) if self.deadlock else None,
            "stuck_host_threads": [g.describe() for g in self.stuck_host_threads],
            "faults_injected": [record.to_dict() if hasattr(record, "to_dict")
                                else record for record in self.injected],
            "backend": self.backend,
            "compiled": self.compiled,
        }

    def __repr__(self) -> str:
        bits = [f"status={self.status!r}", f"seed={self.seed}", f"steps={self.steps}"]
        if self.leaked:
            bits.append(f"leaked={len(self.leaked)}")
        if self.panic_value is not None:
            bits.append(f"panic={self.panic_value!r}")
        return f"<RunResult {' '.join(bits)}>"


def run(
    main: Callable[[Runtime], Any],
    *,
    seed: int = 0,
    max_steps: int = 1_000_000,
    preempt: bool = True,
    drain: bool = True,
    drain_budget: int = 50_000,
    keep_trace: bool = True,
    observers: Iterable[Any] = (),
    args: Tuple[Any, ...] = (),
    time_limit: Optional[float] = None,
    rng: Optional[Any] = None,
    inject: Optional[Any] = None,
    observe: Any = None,
    backend: str = "coroutine",
    host_join_timeout: Optional[float] = None,
) -> RunResult:
    """Execute ``main(rt, *args)`` under the simulator and classify the outcome.

    Args:
        main: program entry point; receives the :class:`Runtime`.
        seed: scheduler RNG seed.  Same seed, same trace.
        max_steps: livelock backstop on total scheduling steps.
        preempt: make every primitive op a preemption point (richer
            interleavings) instead of only blocking ops.
        drain: after main returns, keep running remaining goroutines (clock
            included) until quiescence so leak classification is precise:
            whatever is still blocked then is blocked forever.  Go itself
            exits immediately; disable to match that exactly.
        drain_budget: step cap for the drain phase.
        keep_trace: record the event trace on the result.
        observers: objects with an ``attach(runtime)`` method (detectors);
            ``finish(result)`` is called on them at the end when present.
        args: extra positional args passed to ``main`` after the runtime.
        time_limit: stop observing after this much *virtual* time.  Models
            a long-running server: a run cut off here with main still
            blocked gets status ``"timeout"`` — the situation where Go's
            built-in deadlock detector stays silent because other
            goroutines keep running.
        rng: override the scheduler's choice source (anything with
            ``randrange(n)``); used by the systematic explorer.
        inject: a :class:`repro.inject.FaultPlan` (or a prebuilt
            :class:`repro.inject.FaultInjector`) of deterministic faults to
            perturb this run with.  Same ``(seed, plan)``, same trace.
        observe: opt-in observability (:mod:`repro.observe`).  ``True``
            attaches a default :class:`repro.observe.Observer`; pass a
            configured Observer to control site capture and sampling.  The
            observer is a pure trace consumer — attaching it never changes
            the schedule — and lands on ``result.observation``.
        backend: goroutine host backend.  ``"coroutine"`` (the default)
            resolves to the best single-threaded continuation vehicle
            available — ``"greenlet"``, then the in-tree ``"tasklet"`` C
            extension, then the pure-Python ``"generator"`` trampoline.
            ``"thread"`` is the opt-in compatibility mode (one OS thread
            per goroutine).  A specific vehicle can also be named directly;
            unavailable ones fall back with a once-per-process warning.
            Every backend produces bit-identical schedules; the resolved
            vehicle is surfaced as ``result.backend``.
        host_join_timeout: *total* teardown budget in seconds for unwinding
            host threads at the end of the run (default
            :data:`repro.runtime.goroutine.HOST_JOIN_TIMEOUT`); hosts that
            outlive their share of it are declared stuck.  Only
            thread-compat hosts can consume it — continuation vehicles
            unwind synchronously.  Sweep engines shrink it so one
            pathological seed cannot stall a whole sweep.
    """
    sched = Scheduler(seed=seed, max_steps=max_steps, preempt=preempt,
                      keep_trace=keep_trace, rng=rng, backend=backend)
    if host_join_timeout is not None:
        sched.host_join_timeout = host_join_timeout
    rt = Runtime(sched)
    injector = None
    if inject is not None:
        from ..inject.injector import FaultInjector
        from ..inject.plan import FaultPlan

        injector = (FaultInjector(inject, seed=seed)
                    if isinstance(inject, FaultPlan) else inject)
        injector.attach(rt)
    observation = None
    if observe:
        from ..observe.observer import Observer

        observation = Observer() if observe is True else observe
        observation.attach(rt)
    for obs in observers:
        obs.attach(rt)

    code = getattr(main, "__code__", None)
    main_site = (short_site(code.co_filename, code.co_firstlineno)
                 if code is not None else None)
    main_g = sched.spawn(main, (rt,) + tuple(args), name="main",
                         anonymous=False, creation_site=main_site)

    status: str
    leaked: List[Goroutine] = []
    abandoned: List[Goroutine] = []
    deadlock: Optional[DeadlockError] = None

    try:
        # Structured stop condition ("main is terminal or anything
        # panicked") so the compiled hot loop can check it without a
        # Python call per step; the scheduler synthesizes the equivalent
        # closure for the pure paths.
        outcome = sched.run_until_quiescent(stop_mode=("main", main_g),
                                            time_limit=time_limit)
        if sched.panicked is not None:
            status = "panic"
        elif outcome == "steps":
            status = "steps"
        elif outcome == "timeout":
            # Observation window closed with the program still going: any
            # goroutine blocked right now — except transient sleepers — is
            # a leak suspect (goleak-style).
            status = "timeout"
            leaked = [
                g for g in sched.blocked_goroutines()
                if g.block_reason != "time.sleep" and not g.external
            ]
        elif outcome == "quiescent":
            # Main is still alive but nothing can run: the built-in
            # detector's condition — unless someone waits on an external
            # resource, which the detector (and Go's) cannot see.
            blocked = sched.blocked_goroutines()
            if any(g.external for g in blocked):
                status = "hang"
                leaked = blocked
            else:
                status = "deadlock"
                leaked = blocked  # every participant is stuck forever
                deadlock = DeadlockError(
                    "all goroutines are asleep - deadlock!",
                    blocked=[g.describe() for g in blocked],
                )
        else:  # main finished
            if drain:
                # Keep running (and let the virtual clock advance, so plain
                # sleepers and armed timers finish) until quiescence: what
                # remains blocked then is blocked *forever*.
                sched.run_until_quiescent(
                    stop_mode=("panic", None),
                    advance_clock=True,
                    step_budget=drain_budget,
                )
            if sched.panicked is not None:
                status = "panic"
            else:
                leaked = sched.blocked_goroutines()
                abandoned = [
                    g for g in sched.live_goroutines() if g.state != GState.BLOCKED
                ]
                status = "leak" if leaked else "ok"
    finally:
        sched.kill_all()

    result = RunResult(
        status,
        seed=seed,
        steps=sched.steps,
        end_time=sched.clock.now,
        goroutines=sched.goroutines,
        main_result=main_g.result,
        leaked=leaked,
        abandoned=abandoned,
        panic_value=sched.panicked.panic_value if sched.panicked else None,
        panic_goroutine=sched.panicked,
        deadlock=deadlock,
        trace=sched.trace if keep_trace else None,
        stuck_host_threads=[g for g in sched.goroutines if g.stuck_host_thread],
        injected=injector.log if injector is not None else (),
        observation=observation,
        backend=sched.backend,
        compiled=sched._hot is not None or sched._fastops is not None,
    )
    if observation is not None:
        observation.finish(result)
    for obs in observers:
        finish = getattr(obs, "finish", None)
        if finish is not None:
            finish(result)
    return result


def explore(
    main: Callable[[Runtime], Any],
    seeds: Iterable[int],
    *,
    jobs: int = 1,
    summaries: bool = False,
    **kwargs: Any,
) -> List[Any]:
    """Run ``main`` under every seed; the seed-sweep analogue of rerunning a
    flaky program many times.

    Args:
        jobs: worker processes for the sweep (:mod:`repro.parallel`).  The
            default of 1 runs in-process and returns full
            :class:`RunResult` objects, exactly as before.  With ``jobs > 1``
            (or ``summaries=True``) every run is reduced to a picklable
            :class:`repro.parallel.RunSummary`; the list is merged in seed
            order and is byte-identical to what ``jobs=1, summaries=True``
            produces.
        summaries: force the summary representation even in-process —
            useful to compare serial and parallel sweeps bit-for-bit.
    """
    if jobs <= 1 and not summaries:
        return [run(main, seed=seed, **kwargs) for seed in seeds]
    from ..parallel import sweep_seeds

    return sweep_seeds(main, seeds, jobs=jobs, **kwargs)
