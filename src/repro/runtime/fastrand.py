"""Batched scheduling RNG: bit-identical to ``random.Random``, cheaper per draw.

The scheduler consumes randomness one ``randrange(n)`` at a time — one draw
per scheduling step plus one per ready ``select``.  ``random.Random.randrange``
pays a deep pure-Python call chain per draw (``randrange`` → ``_randbelow`` →
``getrandbits``), which shows up clearly in sweep profiles.

:class:`BatchedRandom` removes that overhead while preserving every schedule:
it pulls Mersenne-Twister output in blocks of 32-bit words (one
``getrandbits(32 * BATCH)`` call yields ``BATCH`` words in generation order)
and replays CPython's own rejection-sampling algorithm on top of the buffered
words.  The draw sequence is **bit-identical** to
``random.Random(seed).randrange(n)`` for every ``n`` — asserted by the
fast-path tests — so switching the scheduler to this source changes no trace,
no manifestation seed, and no fingerprint anywhere in the repo.
"""

from __future__ import annotations

import random
from typing import List

__all__ = ["BatchedRandom"]

#: 32-bit words fetched per refill.  One refill amortizes one Python-level
#: ``getrandbits`` call over this many scheduling decisions.
_BATCH = 512
_WORD_BITS = 32
_WORD_MASK = 0xFFFFFFFF


class BatchedRandom:
    """Drop-in ``randrange(n)`` source matching ``random.Random(seed)`` exactly.

    Only the scheduler-facing surface is implemented (``randrange`` plus
    ``getrandbits`` for completeness); anything needing the full
    ``random.Random`` API should build its own instance from the same seed.
    """

    __slots__ = ("seed", "_rng", "_buf", "_pos")

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._buf: List[int] = []
        self._pos = 0

    # ------------------------------------------------------------------

    def _refill(self) -> None:
        block = self._rng.getrandbits(_WORD_BITS * _BATCH)
        # getrandbits fills words low-order first, each word one MT draw.
        self._buf = [(block >> (_WORD_BITS * i)) & _WORD_MASK
                     for i in range(_BATCH)]
        self._pos = 0

    def _next_word(self) -> int:
        if self._pos >= len(self._buf):
            self._refill()
        word = self._buf[self._pos]
        self._pos += 1
        return word

    # ------------------------------------------------------------------

    def getrandbits(self, k: int) -> int:
        """Buffered ``getrandbits``: identical output, word-at-a-time source."""
        if k < 0:
            raise ValueError("number of bits must be non-negative")
        if k == 0:
            return 0
        if k <= _WORD_BITS:
            return self._next_word() >> (_WORD_BITS - k)
        words, rem = divmod(k, _WORD_BITS)
        value = 0
        for i in range(words):
            value |= self._next_word() << (_WORD_BITS * i)
        if rem:
            value |= (self._next_word() >> (_WORD_BITS - rem)) << (
                _WORD_BITS * words)
        return value

    def randrange(self, n: int) -> int:
        """Uniform draw from ``range(n)``; CPython's rejection sampling."""
        if n <= 0:
            raise ValueError("empty range for randrange()")
        k = n.bit_length()
        if k <= _WORD_BITS:
            # Hot path: one buffered word per attempt, no call chain.
            shift = _WORD_BITS - k
            buf = self._buf
            pos = self._pos
            while True:
                if pos >= len(buf):
                    self._refill()
                    buf = self._buf
                    pos = 0
                r = buf[pos] >> shift
                pos += 1
                if r < n:
                    self._pos = pos
                    return r
        r = self.getrandbits(k)
        while r >= n:
            r = self.getrandbits(k)
        return r

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BatchedRandom seed={self.seed}>"
