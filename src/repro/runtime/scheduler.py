"""The deterministic, seeded goroutine scheduler.

The scheduler owns the token described in :mod:`repro.runtime.goroutine`,
the virtual clock, the runnable set, and the trace.  Every run is a pure
function of ``(program, seed, options)``: the only source of nondeterminism
Go programs observe (which runnable goroutine runs next, which ready
``select`` case fires) is drawn from one seeded RNG.

Sweeping seeds is the simulator's replacement for the paper's "run the buggy
program a lot of times": a bug that manifests on 3% of real executions
manifests on a similar fraction of seeds.
"""

from __future__ import annotations

import os
import random
import sys
import threading
from typing import Any, Callable, List, Optional, Tuple

from .clock import VirtualClock
from .errors import Killed, SchedulerStateError, StepLimitExceeded
from .goroutine import Goroutine, GState
from .trace import EventKind, Trace, TraceEvent

#: Package directories whose frames are simulator plumbing, not user code.
#: Bug kernels (``repro.bugs``), mini-apps (``repro.apps``) and the chaos
#: scenarios (``repro.inject.scenarios``) are *user* code for profiling
#: purposes; the injector itself only runs in scheduler context and never
#: appears above a block, so ``inject`` needs no entry here.
_INTERNAL_PACKAGES = ("runtime", "chan", "sync", "stdlib")
_internal_dirs: Optional[Tuple[str, ...]] = None


def _internal_frame_dirs() -> Tuple[str, ...]:
    global _internal_dirs
    if _internal_dirs is None:
        base = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        _internal_dirs = tuple(
            os.path.join(base, pkg) + os.sep for pkg in _INTERNAL_PACKAGES
        )
    return _internal_dirs


_site_cache: dict = {}


def short_site(filename: str, lineno: int) -> str:
    """``dir/file.py:line`` — stable across checkouts (no absolute prefix)."""
    key = (filename, lineno)
    site = _site_cache.get(key)
    if site is None:
        parts = filename.replace(os.sep, "/").rsplit("/", 2)
        site = f"{'/'.join(parts[-2:])}:{lineno}"
        _site_cache[key] = site
    return site


def user_stack(limit: int = 8) -> Tuple[str, ...]:
    """User-code call sites above the current frame, innermost first.

    Frames inside the simulator's own packages (scheduler, primitives,
    stdlib analogues, fault injection) are skipped so profiles attribute
    waits to the program under study, not to the plumbing.  The walk stops
    at the goroutine trampoline (``Goroutine._run``), never leaking host
    ``threading`` frames into a profile.
    """
    internal = _internal_frame_dirs()
    frames: List[str] = []
    try:
        frame = sys._getframe(1)
    except ValueError:  # pragma: no cover - exotic hosts
        return ()
    while frame is not None and len(frames) < limit:
        code = frame.f_code
        filename = code.co_filename
        if code.co_name == "_run" and filename.endswith("goroutine.py"):
            break
        if not filename.startswith(internal):
            frames.append(short_site(filename, frame.f_lineno))
        frame = frame.f_back
    return tuple(frames)


class Scheduler:
    """Cooperative scheduler enforcing the one-runner invariant.

    Not part of the public API: user code talks to
    :class:`repro.runtime.runtime.Runtime`, which delegates here.
    """

    def __init__(
        self,
        seed: int = 0,
        max_steps: int = 1_000_000,
        preempt: bool = True,
        keep_trace: bool = True,
        rng: Optional[Any] = None,
    ):
        #: Source of all scheduling nondeterminism.  Anything with a
        #: ``randrange(n)`` method works; the systematic explorer injects a
        #: scripted source here to enumerate schedules exhaustively.
        self.rng = rng if rng is not None else random.Random(seed)
        self.seed = seed
        self.clock = VirtualClock()
        self.trace = Trace(keep_events=keep_trace)
        self.max_steps = max_steps
        #: When True, every primitive operation is a preemption point; when
        #: False only genuinely blocking operations yield (faster, but fewer
        #: interleavings are explored).
        self.preempt = preempt

        self.goroutines: List[Goroutine] = []
        self._runnable: List[Goroutine] = []
        self._current: Optional[Goroutine] = None
        self._steps = 0
        self._wakeup = threading.Event()
        self._next_gid = 1
        self._shutting_down = False
        #: First goroutine to panic, if any (aborts the whole run, as in Go).
        self.panicked: Optional[Goroutine] = None
        #: Optional fault injector (:mod:`repro.inject`): pulsed once per
        #: scheduler-loop iteration, in scheduler context, so every injected
        #: fault lands at an existing scheduling point.
        self.injector: Optional[Any] = None
        #: Join bound handed to :meth:`Goroutine.kill` during teardown.
        self.host_join_timeout: Optional[float] = None
        #: Observability hooks (:mod:`repro.observe`).  When ``capture_sites``
        #: is on, every GO_BLOCK event carries the user call-site stack; the
        #: ``on_step`` callback sees ``(step, runnable_depth, gid)`` for each
        #: scheduling decision.  Both are inert by default: one flag test and
        #: one None check per step when nothing is attached.
        self.capture_sites = False
        self.on_step: Optional[Callable[[int, int, int], None]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def steps(self) -> int:
        """Scheduling steps taken so far (one per token handoff)."""
        return self._steps

    @property
    def current(self) -> Goroutine:
        """The goroutine currently holding the token."""
        if self._current is None:
            raise SchedulerStateError("no goroutine is currently running")
        return self._current

    @property
    def current_gid(self) -> int:
        """gid of the running goroutine, or 0 in scheduler context."""
        return self._current.gid if self._current is not None else 0

    def live_goroutines(self) -> List[Goroutine]:
        return [g for g in self.goroutines if g.state in GState.LIVE]

    def blocked_goroutines(self) -> List[Goroutine]:
        return [g for g in self.goroutines if g.state == GState.BLOCKED]

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def emit(
        self,
        kind: str,
        obj: Optional[int] = None,
        info: Optional[dict] = None,
        gid: Optional[int] = None,
    ) -> None:
        """Append a trace event attributed to the running goroutine."""
        self.trace.emit(
            TraceEvent(
                step=self._steps,
                time=self.clock.now,
                gid=self.current_gid if gid is None else gid,
                kind=kind,
                obj=obj,
                info=info,
            )
        )

    # ------------------------------------------------------------------
    # Goroutine management
    # ------------------------------------------------------------------

    def spawn(
        self,
        fn: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        name: Optional[str] = None,
        anonymous: bool = False,
        creation_site: Optional[str] = None,
    ) -> Goroutine:
        """Create a goroutine and put it on the runnable set."""
        g = Goroutine(
            gid=self._next_gid,
            fn=fn,
            args=args,
            scheduler_wakeup=self._wakeup,
            name=name,
            anonymous=anonymous,
            creation_site=creation_site,
        )
        self._next_gid += 1
        g.created_at = self.clock.now
        self.goroutines.append(g)
        self._runnable.append(g)
        g.start()
        self.emit(EventKind.GO_CREATE, obj=g.gid,
                  info={"anonymous": anonymous, "name": g.name,
                        "site": creation_site})
        return g

    # ------------------------------------------------------------------
    # Goroutine-side primitives (run on a goroutine thread holding token)
    # ------------------------------------------------------------------

    def schedule_point(self) -> None:
        """A voluntary preemption point: let the scheduler pick again."""
        if not self.preempt or self._current is None:
            return
        g = self._current
        # State stays RUNNING so the loop knows this was a yield, not a block.
        g.yield_to_scheduler()

    def block(self, reason: str, external: bool = False) -> None:
        """Park the running goroutine until another party readies it.

        Primitive code must register the goroutine on the relevant wait queue
        *before* calling this, then re-check its wait condition after it
        returns (the standard wait-loop discipline).
        """
        g = self.current
        g.state = GState.BLOCKED
        g.block_reason = reason
        g.external = external
        info: dict = {"reason": reason}
        if self.capture_sites:
            stack = user_stack()
            if stack:
                info["site"] = stack[0]
                info["stack"] = stack
        self.emit(EventKind.GO_BLOCK, info=info)
        if g in self._runnable:
            self._runnable.remove(g)
        g.yield_to_scheduler()
        g.block_reason = None
        g.external = False

    def ready(self, g: Goroutine) -> None:
        """Move a blocked goroutine back to the runnable set."""
        if g.state != GState.BLOCKED:
            return
        g.state = GState.RUNNABLE
        self._runnable.append(g)
        self.emit(EventKind.GO_UNBLOCK, obj=g.gid)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run_until_quiescent(
        self,
        stop_when: Optional[Callable[[], bool]] = None,
        advance_clock: bool = True,
        step_budget: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> str:
        """Drive goroutines until nothing can run.

        Returns one of:
          * ``"stopped"``   — ``stop_when()`` became true (e.g. main exited,
            or a goroutine panicked),
          * ``"quiescent"`` — no goroutine runnable and no timer armed (or
            clock advancement disabled),
          * ``"steps"``     — the step budget ran out (livelock backstop),
          * ``"timeout"``   — the virtual clock passed ``time_limit`` (the
            observation-window cutoff for programs that run forever).
        """
        budget = self.max_steps if step_budget is None else step_budget
        used = 0
        while True:
            if stop_when is not None and stop_when():
                return "stopped"
            if time_limit is not None and self.clock.now >= time_limit:
                return "timeout"
            if used >= budget:
                return "steps"
            if self.injector is not None and self.injector.pulse(self):
                # A fault fired (goroutines woken/killed, clock jumped,
                # channels mutated): re-evaluate the stop conditions before
                # taking the next step.
                continue
            if self._runnable:
                used += 1
                self._steps += 1
                g = self._pick()
                if self.on_step is not None:
                    self.on_step(self._steps, len(self._runnable), g.gid)
                self._current = g
                g.resume()
                self._current = None
                self._after_resume(g)
                continue
            if advance_clock and self.clock.has_pending():
                self.fire_timers(self.clock.advance_to_next())
                continue
            return "quiescent"

    def fire_timers(self, fired) -> None:
        """Run fired timer callbacks in scheduler context (one trace event
        each), shared by the main loop and the fault injector's clock jumps."""
        for handle in fired:
            self.emit(EventKind.TIMER_FIRE, gid=0)
            handle.callback()

    def _pick(self) -> Goroutine:
        index = self.rng.randrange(len(self._runnable))
        return self._runnable[index]

    def _after_resume(self, g: Goroutine) -> None:
        if g.state == GState.RUNNING:
            g.state = GState.RUNNABLE  # voluntary yield at a schedule point
            return
        # Blocked goroutines already removed themselves in block().
        if g.state in GState.TERMINAL:
            if g in self._runnable:
                self._runnable.remove(g)
            g.ended_at = self.clock.now
            if g.state == GState.PANICKED and self.panicked is None:
                self.panicked = g
            kind = EventKind.GO_PANIC if g.state == GState.PANICKED else EventKind.GO_END
            self.emit(kind, gid=g.gid)

    # ------------------------------------------------------------------
    # Fault-injection entry points (scheduler context; used by repro.inject)
    # ------------------------------------------------------------------

    def inject_wakeup(self, g: Goroutine) -> bool:
        """Spuriously ready a blocked goroutine.

        Safe under the wait-loop discipline: every primitive re-checks its
        wait condition after :meth:`block` returns, so a spurious wakeup can
        only add interleavings, never corrupt state.
        """
        if g.state != GState.BLOCKED:
            return False
        self.ready(g)
        return True

    def inject_delay(self, g: Goroutine, duration: float) -> bool:
        """Park a runnable goroutine for ``duration`` virtual seconds."""
        if g.state != GState.RUNNABLE or g not in self._runnable:
            return False
        self._runnable.remove(g)
        g.state = GState.BLOCKED
        g.block_reason = "inject.delay"

        def wake() -> None:
            g.block_reason = None
            self.ready(g)

        self.clock.call_after(max(duration, 0.0), wake)
        return True

    def inject_kill(self, g: Goroutine) -> bool:
        """Mark a goroutine dead: it unwinds (state ``KILLED``) at its next
        resume, modelling a goroutine that dies while peers still block on
        it.  Anything it left on wait queues stays there, as in real crashes.
        """
        if g.state not in (GState.RUNNABLE, GState.BLOCKED):
            return False
        g._killed = True
        if g.state == GState.BLOCKED:
            g.block_reason = None
            self.ready(g)
        return True

    def inject_panic(self, g: Goroutine, error: BaseException) -> bool:
        """Raise ``error`` inside the goroutine at its next scheduling point."""
        if g.state not in (GState.RUNNABLE, GState.BLOCKED):
            return False
        g.pending_error = error
        if g.state == GState.BLOCKED:
            self.ready(g)
        return True

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def kill_all(self) -> None:
        """Unwind every live goroutine's host thread (end of run cleanup)."""
        self._shutting_down = True
        for g in self.goroutines:
            if g.state in GState.LIVE:
                g.kill(join_timeout=self.host_join_timeout)

    def check_step_limit(self) -> None:
        if self._steps > self.max_steps:
            raise StepLimitExceeded(
                f"exceeded {self.max_steps} scheduling steps (seed={self.seed})"
            )
