"""The deterministic, seeded goroutine scheduler.

The scheduler owns the token described in :mod:`repro.runtime.goroutine`,
the virtual clock, the runnable set, and the trace.  Every run is a pure
function of ``(program, seed, options)``: the only source of nondeterminism
Go programs observe (which runnable goroutine runs next, which ready
``select`` case fires) is drawn from one seeded RNG.

Sweeping seeds is the simulator's replacement for the paper's "run the buggy
program a lot of times": a bug that manifests on 3% of real executions
manifests on a similar fraction of seeds.  Because sweep throughput is the
system's effective speed, the per-step path here is deliberately lean:

* scheduling randomness comes from :class:`repro.runtime.fastrand.BatchedRandom`
  (bit-identical to ``random.Random``, a fraction of the call overhead);
* trace events are only *allocated* when someone will see them — a kept
  trace or a subscribed listener (``Trace.active``); a ``keep_trace=False``
  run with no detectors pays one attribute check per would-be event;
* ``user_stack()`` walks only happen under ``capture_sites`` (profiling).
"""

from __future__ import annotations

import inspect
import os
import random
import sys
import threading
import time as _time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .clock import VirtualClock
from .errors import Killed, SchedulerStateError, StepLimitExceeded
from ._hotloop import BatchedRandom, get_drive, get_fastops
from .goroutine import (
    HAS_GREENLET,
    GeneratorGoroutine,
    Goroutine,
    GreenletGoroutine,
    GState,
    TaskletGoroutine,
    has_tasklet,
    tasklet_module,
)
from .trace import EventKind, Trace, TraceEvent

#: Package directories whose frames are simulator plumbing, not user code.
#: Bug kernels (``repro.bugs``), mini-apps (``repro.apps``) and the chaos
#: scenarios (``repro.inject.scenarios``) are *user* code for profiling
#: purposes; the injector itself only runs in scheduler context and never
#: appears above a block, so ``inject`` needs no entry here.
_INTERNAL_PACKAGES = ("runtime", "chan", "sync", "stdlib")
_internal_dirs: Optional[Tuple[str, ...]] = None

#: Goroutine host backends.  ``"coroutine"`` (the default) resolves to the
#: best single-threaded continuation vehicle available — greenlet, then the
#: in-tree ``_ctasklet`` C extension, then the pure-Python generator
#: trampoline.  ``"thread"`` is the always-available opt-in compatibility
#: mode (one daemon OS thread per goroutine); the remaining names request a
#: specific vehicle and fall back (with a one-time warning) when it is
#: unavailable.  Every backend produces bit-identical schedules.
BACKENDS = ("coroutine", "thread", "greenlet", "tasklet", "generator")

#: Backends whose goroutines share the scheduler's OS thread.  For these the
#: main loop drives every step itself (``_direct`` is False); only the
#: ``"thread"`` backend uses the inline direct-handoff continuation.
COROUTINE_BACKENDS = frozenset({"greenlet", "tasklet", "generator"})


def _internal_frame_dirs() -> Tuple[str, ...]:
    global _internal_dirs
    if _internal_dirs is None:
        base = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        _internal_dirs = tuple(
            os.path.join(base, pkg) + os.sep for pkg in _INTERNAL_PACKAGES
        )
    return _internal_dirs


#: Interned ``file:line`` strings.  Bounded: a long-lived process sweeping
#: many programs touches an unbounded set of ``(filename, lineno)`` pairs,
#: and the cache used to grow forever.  On overflow the oldest entries are
#: evicted FIFO (dict preserves insertion order), which keeps the hot
#: working set — sites recur heavily within one program — while capping
#: memory.
_SITE_CACHE_MAX = 4096
_site_cache: dict = {}


def short_site(filename: str, lineno: int) -> str:
    """``dir/file.py:line`` — stable across checkouts (no absolute prefix)."""
    key = (filename, lineno)
    site = _site_cache.get(key)
    if site is None:
        parts = filename.replace(os.sep, "/").rsplit("/", 2)
        site = f"{'/'.join(parts[-2:])}:{lineno}"
        if len(_site_cache) >= _SITE_CACHE_MAX:
            for stale in list(_site_cache)[: _SITE_CACHE_MAX // 8]:
                del _site_cache[stale]
        _site_cache[key] = site
    return site


def user_stack(limit: int = 8) -> Tuple[str, ...]:
    """User-code call sites above the current frame, innermost first.

    Frames inside the simulator's own packages (scheduler, primitives,
    stdlib analogues, fault injection) are skipped so profiles attribute
    waits to the program under study, not to the plumbing.  The walk stops
    at the goroutine trampoline (``Goroutine._execute``), never leaking host
    ``threading`` frames into a profile.
    """
    internal = _internal_frame_dirs()
    frames: List[str] = []
    try:
        frame = sys._getframe(1)
    except ValueError:  # pragma: no cover - exotic hosts
        return ()
    while frame is not None and len(frames) < limit:
        code = frame.f_code
        filename = code.co_filename
        if code.co_name in ("_run", "_execute") and filename.endswith("goroutine.py"):
            break
        if not filename.startswith(internal):
            frames.append(short_site(filename, frame.f_lineno))
        frame = frame.f_back
    return tuple(frames)


# Requested backends we have already warned about falling back from.
# Module-level so the warning fires exactly once per process, no matter how
# many Schedulers a sweep constructs.
_fallback_warned: set = set()

# Every fallback that actually happened, counted per (requested -> fallback)
# edge.  The warning above fires once; the counts keep accumulating so
# ``repro bench`` can report how many schedulers silently ran on a different
# vehicle than the one requested.
_fallback_counts: Dict[str, int] = {}


def backend_fallbacks() -> Dict[str, int]:
    """Counts of backend fallbacks this process, keyed ``"requested->used"``."""
    return dict(_fallback_counts)


def _best_coroutine_backend() -> str:
    if HAS_GREENLET:
        return "greenlet"
    if has_tasklet():
        return "tasklet"
    return "generator"


def resolve_backend(backend: str) -> str:
    """Map a requested backend name to the concrete vehicle that will run.

    ``"coroutine"`` picks the best continuation vehicle silently; asking for
    a specific unavailable vehicle (``"greenlet"`` without the package,
    ``"tasklet"`` off-platform) falls back to the next-best one with a
    once-per-process ``RuntimeWarning``.  Fallbacks never change schedules —
    every vehicle draws the identical seeded decision sequence.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown goroutine backend {backend!r}; expected one of {BACKENDS}")
    if backend == "coroutine":
        return _best_coroutine_backend()
    if backend == "greenlet" and not HAS_GREENLET:
        fallback = "tasklet" if has_tasklet() else "generator"
        _warn_fallback(backend, fallback, "the greenlet package is not installed")
        return fallback
    if backend == "tasklet" and not has_tasklet():
        fallback = "greenlet" if HAS_GREENLET else "generator"
        _warn_fallback(backend, fallback,
                       "the _ctasklet extension is unavailable on this platform")
        return fallback
    return backend


def _warn_fallback(requested: str, fallback: str, why: str) -> None:
    edge = f"{requested}->{fallback}"
    _fallback_counts[edge] = _fallback_counts.get(edge, 0) + 1
    if requested in _fallback_warned:
        return
    _fallback_warned.add(requested)
    import warnings

    warnings.warn(
        f"{requested} backend requested but {why}; falling back to the "
        f"{fallback} backend (schedules are identical)",
        RuntimeWarning,
        stacklevel=4,
    )


# Backwards-compatible alias (pre-coroutine-core name).
_resolve_backend = resolve_backend


class Scheduler:
    """Cooperative scheduler enforcing the one-runner invariant.

    Not part of the public API: user code talks to
    :class:`repro.runtime.runtime.Runtime`, which delegates here.
    """

    def __init__(
        self,
        seed: int = 0,
        max_steps: int = 1_000_000,
        preempt: bool = True,
        keep_trace: bool = True,
        rng: Optional[Any] = None,
        backend: str = "coroutine",
    ):
        #: Source of all scheduling nondeterminism.  Anything with a
        #: ``randrange(n)`` method works; the systematic explorer injects a
        #: scripted source here to enumerate schedules exhaustively.  The
        #: default is a batched Mersenne-Twister front-end that draws the
        #: exact sequence ``random.Random(seed)`` would.
        self.rng = rng if rng is not None else BatchedRandom(seed)
        self._randrange = self.rng.randrange  # hot-path bound method
        self.seed = seed
        self.clock = VirtualClock()
        self.trace = Trace(keep_events=keep_trace)
        self.max_steps = max_steps
        #: When True, every primitive operation is a preemption point; when
        #: False only genuinely blocking operations yield (faster, but fewer
        #: interleavings are explored).
        self.preempt = preempt
        #: The backend name the caller asked for (possibly ``"coroutine"``).
        self.requested_backend = backend
        #: The concrete vehicle carrying the token: "greenlet", "tasklet",
        #: "generator" (single-thread continuations) or "thread" (compat).
        self.backend = resolve_backend(backend)
        #: True only for the thread backend: yields run the scheduler's
        #: continuation inline on the yielding host (direct handoff).  The
        #: coroutine backends bounce every yield back to the main loop —
        #: a userspace switch, so there is nothing to save by not bouncing.
        self._direct = self.backend == "thread"
        self._hub: Any = None
        if self.backend == "greenlet":
            import greenlet

            # The scheduler loop runs on whatever greenlet constructs the
            # Scheduler (the main greenlet of the calling thread); every
            # goroutine greenlet yields back to it.
            self._hub = greenlet.getcurrent()
        elif self.backend == "tasklet":
            # Same pattern: the calling thread's main continuation is the
            # hub every goroutine tasklet switches back to.
            self._hub = tasklet_module().current()

        self.goroutines: List[Goroutine] = []
        self._runnable: List[Goroutine] = []
        self._current: Optional[Goroutine] = None
        self._steps = 0
        #: Scheduler-owned half of the token handoff (thread backend):
        #: created held; goroutines release it when handing the token back.
        self._handoff = threading.Lock()
        self._handoff.acquire()
        self._next_gid = 1
        self._shutting_down = False
        #: The goroutine currently being unwound by :meth:`kill_all`, so a
        #: dying host that re-enters the runtime can be parked (see
        #: :meth:`_teardown_park`).
        self._teardown_g: Optional[Goroutine] = None
        #: The compiled fused step loop (``repro.runtime._ext._hotloop``),
        #: or None.  Only the centralized (coroutine-core) loop can use it;
        #: the thread backend's direct handoff never goes through here.
        self._hot: Optional[Callable[["Scheduler"], Optional[str]]] = (
            None if self._direct else get_drive())
        #: Compiled channel/select/mutex fast ops (the same C module), or
        #: None.  Unlike ``_hot`` these work on every backend: each op
        #: re-checks engagement (trace inactive, no injector, goroutine
        #: context) at entry and returns ``NotImplemented`` to defer to the
        #: pure path when any observer is attached.
        self._fastops = get_fastops()
        # Per-call loop state, shared with the inline continuations that
        # goroutine hosts run in ``_handback`` (all token-serialized).
        self._stop_when: Optional[Callable[[], bool]] = None
        #: Structured stop condition (``("main", g)`` / ``("panic", None)``)
        #: mirroring ``_stop_when`` when the caller used one of the standard
        #: shapes; lets the compiled loop evaluate the stop check without a
        #: Python call per step.
        self._stop_mode: Optional[Tuple[str, Optional[Goroutine]]] = None
        self._time_limit: Optional[float] = None
        self._budget = 0
        self._budget_used = 0
        #: Why the main loop was woken: one of the ``run_until_quiescent``
        #: outcome strings, ``"idle"`` (no runnable goroutine — the main
        #: thread must fire timers or declare quiescence), or ``"error"``
        #: (scheduler-context code raised on a goroutine host; see
        #: ``_loop_error``).
        self._main_verdict: Optional[str] = None
        self._loop_error: Optional[BaseException] = None
        #: First goroutine to panic, if any (aborts the whole run, as in Go).
        self.panicked: Optional[Goroutine] = None
        #: Optional fault injector (:mod:`repro.inject`): pulsed once per
        #: scheduler-loop iteration, in scheduler context, so every injected
        #: fault lands at an existing scheduling point.
        self.injector: Optional[Any] = None
        #: Join bound handed to :meth:`Goroutine.kill` during teardown.
        self.host_join_timeout: Optional[float] = None
        #: Observability hooks (:mod:`repro.observe`).  When ``capture_sites``
        #: is on, every GO_BLOCK event carries the user call-site stack; the
        #: ``on_step`` callback sees ``(step, runnable_depth, gid)`` for each
        #: scheduling decision.  Both are inert by default: one flag test and
        #: one None check per step when nothing is attached.
        self.capture_sites = False
        self.on_step: Optional[Callable[[int, int, int], None]] = None
        #: Exploration hook (:mod:`repro.detect.annotate`): sees the full
        #: runnable list and the chosen index for every scheduling decision,
        #: so the systematic explorer can learn which goroutines each choice
        #: point offered.  Inert by default (one None check per step).
        self.annotate_pick: Optional[Callable[[List[Goroutine], int], None]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def steps(self) -> int:
        """Scheduling steps taken so far (one per token handoff)."""
        return self._steps

    @property
    def current(self) -> Goroutine:
        """The goroutine currently holding the token."""
        if self._current is None:
            self._teardown_park()
            raise SchedulerStateError("no goroutine is currently running")
        return self._current

    def _teardown_park(self) -> None:
        """Park a dying host that re-entered the runtime during teardown.

        A goroutine that swallows ``Killed`` and retries a blocking
        primitive lands here (`sched.current` with the run already over).
        On an OS-thread host, raising was survivable — the thread spun or
        died on its own core.  On a single-threaded continuation, raising
        returns control *to the swallowing loop*, which retries forever and
        hangs the whole process.  The only safe move is to suspend the
        continuation right here: control returns to ``kill``, which marks
        the goroutine stuck and abandons it.  Never returns once it parks;
        a further kill attempt re-raises ``Killed`` from the yield.
        """
        g = self._teardown_g
        if self._shutting_down and g is not None and g.on_current_host():
            while True:
                g.yield_to_scheduler()

    @property
    def current_gid(self) -> int:
        """gid of the running goroutine, or 0 in scheduler context."""
        return self._current.gid if self._current is not None else 0

    def live_goroutines(self) -> List[Goroutine]:
        return [g for g in self.goroutines if g.state in GState.LIVE]

    def blocked_goroutines(self) -> List[Goroutine]:
        return [g for g in self.goroutines if g.state == GState.BLOCKED]

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def emit(
        self,
        kind: str,
        obj: Optional[int] = None,
        info: Optional[dict] = None,
        gid: Optional[int] = None,
    ) -> None:
        """Append a trace event attributed to the running goroutine.

        Fast path: when nobody consumes events (``keep_trace=False`` and no
        subscribed detector/observer) the event object is never allocated.
        """
        trace = self.trace
        if not trace.active:
            return
        trace.emit(
            TraceEvent(
                step=self._steps,
                time=self.clock.now,
                gid=self.current_gid if gid is None else gid,
                kind=kind,
                obj=obj,
                info=info,
            )
        )

    # ------------------------------------------------------------------
    # Goroutine management
    # ------------------------------------------------------------------

    def spawn(
        self,
        fn: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        name: Optional[str] = None,
        anonymous: bool = False,
        creation_site: Optional[str] = None,
    ) -> Goroutine:
        """Create a goroutine and put it on the runnable set."""
        common = dict(
            gid=self._next_gid,
            fn=fn,
            args=args,
            scheduler=self,
            name=name,
            anonymous=anonymous,
            creation_site=creation_site,
        )
        backend = self.backend
        if backend == "greenlet":
            g: Goroutine = GreenletGoroutine(hub=self._hub, **common)
        elif backend == "tasklet":
            g = TaskletGoroutine(hub=self._hub, **common)
        elif backend == "generator" and inspect.isgeneratorfunction(fn):
            g = GeneratorGoroutine(**common)
        else:
            # thread backend, or a plain-function body under the generator
            # backend (which can only trampoline generator functions).
            g = Goroutine(**common)
        self._next_gid += 1
        g.created_at = self.clock.now
        self.goroutines.append(g)
        self._runnable.append(g)
        g.start()
        if self.trace.active:
            self.emit(EventKind.GO_CREATE, obj=g.gid,
                      info={"anonymous": anonymous, "name": g.name,
                            "site": creation_site})
        return g

    # ------------------------------------------------------------------
    # Goroutine-side primitives (run on a goroutine host holding the token)
    # ------------------------------------------------------------------

    def schedule_point(self) -> None:
        """A voluntary preemption point: let the scheduler pick again."""
        if not self.preempt or self._current is None:
            return
        g = self._current
        # State stays RUNNING so the loop knows this was a yield, not a block.
        g.yield_to_scheduler()

    def block(self, reason: str, external: bool = False,
              obj: "Optional[object]" = None) -> None:
        """Park the running goroutine until another party readies it.

        Primitive code must register the goroutine on the relevant wait queue
        *before* calling this, then re-check its wait condition after it
        returns (the standard wait-loop discipline).  ``obj`` names the
        object(s) whose wait queue the goroutine registered on — a single
        primitive id or a tuple of ids (a select parks on every case
        channel); it rides on the ``GO_BLOCK`` event so schedule-equivalence
        pruning knows the blocked attempt's full footprint.
        """
        g = self.current
        g.state = GState.BLOCKED
        g.block_reason = reason
        g.external = external
        if self.trace.active:
            info: dict = {"reason": reason}
            event_obj: Optional[int] = None
            if obj is not None:
                if isinstance(obj, int):
                    event_obj = obj
                else:
                    info["objs"] = tuple(obj)
            if self.capture_sites:
                stack = user_stack()
                if stack:
                    info["site"] = stack[0]
                    info["stack"] = stack
            self.emit(EventKind.GO_BLOCK, obj=event_obj, info=info)
        if g in self._runnable:
            self._runnable.remove(g)
        g.yield_to_scheduler()
        g.block_reason = None
        g.external = False

    def ready(self, g: Goroutine) -> None:
        """Move a blocked goroutine back to the runnable set."""
        if g.state != GState.BLOCKED:
            return
        g.state = GState.RUNNABLE
        self._runnable.append(g)
        self.emit(EventKind.GO_UNBLOCK, obj=g.gid)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run_until_quiescent(
        self,
        stop_when: Optional[Callable[[], bool]] = None,
        advance_clock: bool = True,
        step_budget: Optional[int] = None,
        time_limit: Optional[float] = None,
        stop_mode: Optional[Tuple[str, Optional[Goroutine]]] = None,
    ) -> str:
        """Drive goroutines until nothing can run.

        ``stop_mode`` is the structured form of the two standard stop
        conditions — ``("main", g)`` (stop when ``g`` is terminal or any
        goroutine panicked) and ``("panic", None)`` (stop only on panic).
        Passing it instead of a ``stop_when`` closure means the compiled
        hot loop can evaluate the condition without calling into Python,
        and this method synthesizes the equivalent closure for the pure
        paths.  An explicit ``stop_when`` always wins.

        Returns one of:
          * ``"stopped"``   — ``stop_when()`` became true (e.g. main exited,
            or a goroutine panicked),
          * ``"quiescent"`` — no goroutine runnable and no timer armed (or
            clock advancement disabled),
          * ``"steps"``     — the step budget ran out (livelock backstop),
          * ``"timeout"``   — the virtual clock passed ``time_limit`` (the
            observation-window cutoff for programs that run forever).

        Thread backend: after the first ``resume`` the token moves between
        goroutine hosts *directly* — each yield runs :meth:`_handback` on the
        yielding host, which performs this loop's per-step logic inline and
        wakes the next host itself.  The main thread parks here and only
        wakes when a continuation leaves a verdict (timers to fire, loop
        done).  Coroutine backends (greenlet/tasklet/generator): every yield
        comes straight back into this loop, which does the bookkeeping
        itself — switches are userspace-cheap and the whole simulation
        shares one OS thread anyway.  Thread-compat hosts spawned under a
        coroutine backend (plain functions on the generator backend) bounce
        through the same centralized path.
        """
        if stop_mode is not None:
            if stop_when is not None:
                stop_mode = None  # explicit closure wins; compiled loop off
            else:
                kind, stop_g = stop_mode
                if kind == "main":
                    def stop_when() -> bool:
                        return (stop_g.state in GState.TERMINAL
                                or self.panicked is not None)
                elif kind == "panic":
                    def stop_when() -> bool:
                        return self.panicked is not None
                else:
                    raise ValueError(f"unknown stop mode {kind!r}")
        self._stop_when = stop_when
        self._stop_mode = stop_mode
        self._time_limit = time_limit
        self._budget = self.max_steps if step_budget is None else step_budget
        self._budget_used = 0
        self._main_verdict = None
        direct = self._direct
        # The compiled fused loop stands in for the whole per-step body
        # below whenever nothing observable differs from the pure path: a
        # structured stop condition, no trace consumer, no injector, no
        # observe/explore hooks, and the stock RNG (checked inside drive).
        hot = self._hot if stop_mode is not None else None
        try:
            while True:
                if (hot is not None and self.injector is None
                        and self.on_step is None
                        and self.annotate_pick is None
                        and not self.trace.active):
                    verdict = hot(self)
                    if verdict is None:
                        # Static mismatch (e.g. a scripted RNG): the pure
                        # loop takes over for the rest of this call.
                        hot = None
                    elif verdict == "idle":
                        if advance_clock and self.clock.has_pending():
                            self.fire_timers(self.clock.advance_to_next())
                            continue
                        return "quiescent"
                    else:
                        return verdict
                g = self._advance()
                if g is not None:
                    self._current = g
                    g.resume()
                    if not direct:
                        # Coroutine core: the yield switched (or bounced)
                        # straight back here.
                        self._current = None
                        self._after_resume(g)
                        continue
                    # Thread: some host's continuation woke us with a verdict.
                verdict = self._main_verdict
                self._main_verdict = None
                if verdict == "idle":
                    if advance_clock and self.clock.has_pending():
                        self.fire_timers(self.clock.advance_to_next())
                        continue
                    return "quiescent"
                if verdict == "error":
                    error = self._loop_error
                    self._loop_error = None
                    assert error is not None
                    raise error
                return verdict
        finally:
            self._stop_when = None
            self._stop_mode = None

    def fire_timers(self, fired) -> None:
        """Run fired timer callbacks in scheduler context (one trace event
        each), shared by the main loop and the fault injector's clock jumps."""
        for handle in fired:
            self.emit(EventKind.TIMER_FIRE, gid=0)
            handle.callback()

    def _advance(self) -> Optional[Goroutine]:
        """One scheduler-loop decision, in scheduler context on whichever
        host holds the token.  Returns the goroutine to run next, or ``None``
        after stashing the reason in ``_main_verdict``."""
        while True:
            if self._stop_when is not None and self._stop_when():
                self._main_verdict = "stopped"
                return None
            if self._time_limit is not None and self.clock.now >= self._time_limit:
                self._main_verdict = "timeout"
                return None
            if self._budget_used >= self._budget:
                self._main_verdict = "steps"
                return None
            if self.injector is not None and self.injector.pulse(self):
                # A fault fired (goroutines woken/killed, clock jumped,
                # channels mutated): re-evaluate the stop conditions before
                # taking the next step.
                continue
            runnable = self._runnable
            if runnable:
                self._budget_used += 1
                self._steps += 1
                idx = self._randrange(len(runnable))
                g = runnable[idx]
                if self.annotate_pick is not None:
                    self.annotate_pick(runnable, idx)
                if self.on_step is not None:
                    self.on_step(self._steps, len(runnable), g.gid)
                return g
            # No runnable goroutine: only the main thread may fire timers
            # or declare the run quiescent.
            self._main_verdict = "idle"
            return None

    def _handback(self, g: Goroutine, terminal: bool) -> Optional[str]:
        """Thread-backend continuation, run on ``g``'s own host right after
        it yields (or its body ends).  Records the yield, makes the next
        scheduling decision inline, and moves the token with at most one OS
        context switch:

          * next pick is another goroutine — wake its private lock directly;
          * next pick is ``g`` itself — return ``"self"`` so the caller keeps
            running without parking (no switch at all);
          * the main loop must act (timers, termination, a scheduler-context
            exception) — stash a verdict and release the main handoff lock.
        """
        if self._shutting_down:
            # Teardown: hand the token straight back to ``kill``'s timed
            # acquire; no bookkeeping (matches the historical semantics where
            # teardown-killed goroutines emit no GO_END event).
            try:
                self._handoff.release()
            except RuntimeError:  # pragma: no cover - late stuck-thread race
                pass
            return None
        if not self._direct:
            # Centralized mode (thread-compat host under a coroutine
            # backend): wake the main loop, which does all bookkeeping.
            self._handoff.release()
            return None
        self._current = None
        try:
            self._after_resume(g)
            nxt = self._advance()
        except BaseException as exc:
            # Scheduler-context code (stop_when, injector, on_step, a
            # scripted RNG) raised on this host: relay it to the main loop,
            # which re-raises it out of run_until_quiescent as before.
            self._loop_error = exc
            self._main_verdict = "error"
            self._handoff.release()
            return None
        if nxt is None:
            self._handoff.release()  # verdict already stashed by _advance
            return None
        self._current = nxt
        nxt.state = GState.RUNNING
        if nxt is g and not terminal:
            return "self"
        nxt._my_lock.release()
        return None

    def _after_resume(self, g: Goroutine) -> None:
        if g.state == GState.RUNNING:
            g.state = GState.RUNNABLE  # voluntary yield at a schedule point
            return
        # Blocked goroutines already removed themselves in block().
        if g.state in GState.TERMINAL:
            if g in self._runnable:
                self._runnable.remove(g)
            g.ended_at = self.clock.now
            if g.state == GState.PANICKED and self.panicked is None:
                self.panicked = g
            kind = EventKind.GO_PANIC if g.state == GState.PANICKED else EventKind.GO_END
            self.emit(kind, gid=g.gid)

    # ------------------------------------------------------------------
    # Fault-injection entry points (scheduler context; used by repro.inject)
    # ------------------------------------------------------------------

    def inject_wakeup(self, g: Goroutine) -> bool:
        """Spuriously ready a blocked goroutine.

        Safe under the wait-loop discipline: every primitive re-checks its
        wait condition after :meth:`block` returns, so a spurious wakeup can
        only add interleavings, never corrupt state.
        """
        if g.state != GState.BLOCKED:
            return False
        self.ready(g)
        return True

    def inject_delay(self, g: Goroutine, duration: float) -> bool:
        """Park a runnable goroutine for ``duration`` virtual seconds."""
        if g.state != GState.RUNNABLE or g not in self._runnable:
            return False
        self._runnable.remove(g)
        g.state = GState.BLOCKED
        g.block_reason = "inject.delay"

        def wake() -> None:
            g.block_reason = None
            self.ready(g)

        self.clock.call_after(max(duration, 0.0), wake)
        return True

    def inject_kill(self, g: Goroutine) -> bool:
        """Mark a goroutine dead: it unwinds (state ``KILLED``) at its next
        resume, modelling a goroutine that dies while peers still block on
        it.  Anything it left on wait queues stays there, as in real crashes.
        """
        if g.state not in (GState.RUNNABLE, GState.BLOCKED):
            return False
        g._killed = True
        if g.state == GState.BLOCKED:
            g.block_reason = None
            self.ready(g)
        return True

    def inject_panic(self, g: Goroutine, error: BaseException) -> bool:
        """Raise ``error`` inside the goroutine at its next scheduling point."""
        if g.state not in (GState.RUNNABLE, GState.BLOCKED):
            return False
        g.pending_error = error
        if g.state == GState.BLOCKED:
            self.ready(g)
        return True

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def kill_all(self) -> None:
        """Unwind every live goroutine's host (end of run cleanup).

        ``host_join_timeout`` is a *total* teardown budget, not a
        per-goroutine one: with N hung thread-compat hosts the old
        per-goroutine bound stalled teardown for N x timeout, which let a
        mixed-backend test suite leak minutes to a handful of stuck
        threads.  Each kill gets the time remaining on the shared deadline
        (with a small floor so a well-behaved host can always unwind);
        coroutine vehicles unwind synchronously and spend none of it.
        """
        self._shutting_down = True
        from .goroutine import HOST_JOIN_TIMEOUT

        budget = (HOST_JOIN_TIMEOUT if self.host_join_timeout is None
                  else self.host_join_timeout)
        deadline = _time.monotonic() + max(budget, 0.0)
        try:
            for g in self.goroutines:
                if g.state in GState.LIVE:
                    remaining = deadline - _time.monotonic()
                    self._teardown_g = g
                    g.kill(join_timeout=max(remaining, 0.05))
        finally:
            self._teardown_g = None

    def check_step_limit(self) -> None:
        if self._steps > self.max_steps:
            raise StepLimitExceeded(
                f"exceeded {self.max_steps} scheduling steps (seed={self.seed})"
            )
