"""Goroutine runtime substrate: scheduler, goroutines, virtual clock, traces."""

from .clock import TimerHandle, VirtualClock
from .errors import (
    DeadlockError,
    GoPanic,
    Killed,
    SchedulerStateError,
    SimulatorError,
    StepLimitExceeded,
)
from .goroutine import Goroutine, GState
from .runtime import Runtime, RunResult, explore, run
from .scheduler import Scheduler
from .trace import EventKind, Trace, TraceEvent

__all__ = [
    "DeadlockError",
    "EventKind",
    "GState",
    "GoPanic",
    "Goroutine",
    "Killed",
    "RunResult",
    "Runtime",
    "Scheduler",
    "SchedulerStateError",
    "SimulatorError",
    "StepLimitExceeded",
    "TimerHandle",
    "Trace",
    "TraceEvent",
    "VirtualClock",
    "explore",
    "run",
]
