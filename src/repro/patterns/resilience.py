"""Resilience patterns: seeded backoff, retry, circuit breaker.

These are the idioms the hardened mini-apps use to survive the chaos suite
(:mod:`repro.inject`): transient failures — a killed peer, a dropped
connection, an injected cancellation — are retried with exponential backoff
and jitter instead of propagating.

Determinism: a :class:`Backoff`'s jitter RNG is seeded from
``(scheduler seed, name)`` via a stable hash, never from Python's per-process
hash seed and never from the scheduler's own RNG (consuming scheduler
randomness for jitter would change every subsequent scheduling decision and
make "with backoff" and "without backoff" runs incomparable).
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Callable, Optional, Tuple, Type

from ..runtime.errors import SimulatorError


def _stable_rng(seed: int, name: str) -> random.Random:
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class Backoff:
    """Exponential backoff with deterministic jitter on the virtual clock."""

    def __init__(self, rt, base: float = 0.05, factor: float = 2.0,
                 max_delay: float = 2.0, jitter: float = 0.5,
                 name: str = "backoff"):
        self._rt = rt
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        self.attempt = 0
        self._rng = _stable_rng(rt.sched.seed, name)

    def next_delay(self) -> float:
        """The next sleep: ``min(base * factor^n, max) * (1 + U[0, jitter])``."""
        raw = min(self.base * (self.factor ** self.attempt), self.max_delay)
        self.attempt += 1
        return raw * (1.0 + self.jitter * self._rng.random())

    def sleep(self) -> None:
        self._rt.sleep(self.next_delay())

    def reset(self) -> None:
        self.attempt = 0


def retry(rt, fn: Callable[[], Any], attempts: int = 5,
          retry_on: Tuple[Type[BaseException], ...] = (SimulatorError,),
          backoff: Optional[Backoff] = None, ctx=None,
          name: str = "retry") -> Any:
    """Call ``fn`` until it succeeds, sleeping a backoff between attempts.

    Retries only exceptions in ``retry_on`` (default: simulator errors such
    as ``GoPanic`` — a closed channel, a dead peer); anything else, and the
    final attempt's failure, propagate.  An already-cancelled ``ctx`` stops
    the loop early and re-raises the last failure.
    """
    if attempts < 1:
        raise ValueError("retry needs at least one attempt")
    policy = backoff if backoff is not None else Backoff(rt, name=name)
    last: Optional[BaseException] = None
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt == attempts - 1:
                break
            if ctx is not None and ctx.err() is not None:
                break
            policy.sleep()
    assert last is not None
    raise last


class CircuitOpen(SimulatorError):
    """Raised by :meth:`CircuitBreaker.call` while the circuit is open."""


class CircuitBreaker:
    """Fail fast after repeated failures; probe again after a cooldown.

    closed --(``threshold`` consecutive failures)--> open
    open --(``cooldown`` virtual seconds)--> half-open
    half-open --success--> closed, --failure--> open
    """

    def __init__(self, rt, threshold: int = 3, cooldown: float = 1.0,
                 failure_on: Tuple[Type[BaseException], ...] = (SimulatorError,),
                 name: str = "breaker"):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self._rt = rt
        self.name = name
        self.threshold = threshold
        self.cooldown = cooldown
        self.failure_on = failure_on
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if self._rt.now() - self.opened_at >= self.cooldown:
            return "half-open"
        return "open"

    def call(self, fn: Callable[[], Any]) -> Any:
        if self.state == "open":
            raise CircuitOpen(f"{self.name}: circuit open")
        try:
            result = fn()
        except self.failure_on:
            self._record_failure()
            raise
        self.failures = 0
        self.opened_at = None
        return result

    def _record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.threshold or self.opened_at is not None:
            if self.opened_at is None:
                self.trips += 1
            self.opened_at = self._rt.now()

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.name} {self.state} failures={self.failures}>"
