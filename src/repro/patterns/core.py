"""Pattern implementations.

Every producer goroutine spawned here follows the same discipline:

* it selects on ``done`` alongside every send, so cancellation can never
  strand it on a full or abandoned channel (the Figure 1/Figure 7 class);
* it closes its output when finished, so consumers' range loops end (the
  missing-close class);
* helpers that spawn several goroutines join them with a WaitGroup before
  closing shared outputs (the premature-close class).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from ..chan.cases import recv, send


def generate(rt, values: Iterable[Any], done, buffer: int = 0):
    """Produce ``values`` on a new channel until consumed or cancelled.

    ``done`` is a channel (close-to-cancel).  The output channel is closed
    when the values run out or cancellation wins.
    """
    out = rt.make_chan(buffer, name="gen.out")
    items = list(values)

    def producer():
        for item in items:
            index, _v, _ok = rt.select(recv(done), send(out, item))
            if index == 0:
                break
        out.close()

    rt.go(producer, name="gen.producer")
    return out


def or_done(rt, done, channel):
    """Wrap ``channel`` so receives also honor ``done`` (Ajmani's
    or-done-channel).  The wrapper closes when either side finishes."""
    out = rt.make_chan(0, name="ordone.out")

    def forwarder():
        while True:
            index, value, ok = rt.select(recv(done), recv(channel))
            if index == 0 or not ok:
                break
            inner, _v, _ok = rt.select(recv(done), send(out, value))
            if inner == 0:
                break
        out.close()

    rt.go(forwarder, name="ordone.forwarder")
    return out


def pipeline(rt, source, done, *stages: Callable[[Any], Any]):
    """Chain transform stages: each runs in its own goroutine.

    ``source`` may be a channel or an iterable (wrapped via
    :func:`generate`).  Returns the final stage's output channel.
    """
    current = source if hasattr(source, "recv") else generate(rt, source, done)
    for position, stage in enumerate(stages):
        upstream = current
        downstream = rt.make_chan(0, name=f"pipe.{position}")

        def worker(upstream=upstream, downstream=downstream, stage=stage):
            for value in or_done(rt, done, upstream):
                index, _v, _ok = rt.select(recv(done),
                                           send(downstream, stage(value)))
                if index == 0:
                    break
            downstream.close()

        rt.go(worker, name=f"pipe.stage-{position}")
        current = downstream
    return current


def fan_out(rt, source, done, n: int):
    """Split one channel across ``n`` output channels (work stealing)."""
    outputs = [rt.make_chan(0, name=f"fanout.{i}") for i in range(n)]

    def distributor():
        index = 0
        for value in or_done(rt, done, source):
            out = outputs[index % n]
            chosen, _v, _ok = rt.select(recv(done), send(out, value))
            if chosen == 0:
                break
            index += 1
        for out in outputs:
            out.close()

    rt.go(distributor, name="fanout.distributor")
    return outputs


def fan_in(rt, done, channels: Sequence) -> Any:
    """Merge many channels into one; closes when all inputs closed."""
    out = rt.make_chan(0, name="fanin.out")
    wg = rt.waitgroup("fanin")

    def drain(channel):
        for value in or_done(rt, done, channel):
            index, _v, _ok = rt.select(recv(done), send(out, value))
            if index == 0:
                break
        wg.done()

    for channel in channels:
        wg.add(1)
        rt.go(drain, channel, name="fanin.drain")

    def closer():
        wg.wait()
        out.close()

    rt.go(closer, name="fanin.closer")
    return out


def take(rt, done, channel, n: int) -> List[Any]:
    """Receive the first ``n`` values (or fewer if the channel closes)."""
    taken: List[Any] = []
    for _ in range(n):
        index, value, ok = rt.select(recv(done), recv(channel))
        if index == 0 or not ok:
            break
        taken.append(value)
    return taken


def worker_pool(rt, jobs: Iterable[Any], handler: Callable[[Any], Any],
                workers: int = 4) -> List[Tuple[Any, Any]]:
    """Run ``handler`` over ``jobs`` with bounded concurrency.

    Returns ``(job, result)`` pairs in completion order.  Blocks until
    every job finished; leaks nothing (the pattern Figure 5 and the
    Add/Wait kernels get wrong).
    """
    job_list = list(jobs)
    job_ch = rt.make_chan(len(job_list) or 1, name="pool.jobs")
    results_ch = rt.make_chan(len(job_list) or 1, name="pool.results")
    wg = rt.waitgroup("pool")

    for job in job_list:
        job_ch.send(job)
    job_ch.close()

    def worker():
        for job in job_ch:
            results_ch.send((job, handler(job)))
        wg.done()

    for i in range(max(workers, 1)):
        wg.add(1)
        rt.go(worker, name=f"pool.worker-{i}")
    wg.wait()
    results_ch.close()
    return list(results_ch)


class Semaphore:
    """Counting semaphore over a buffered channel (the Go idiom)."""

    def __init__(self, rt, permits: int, name: Optional[str] = None):
        if permits < 1:
            raise ValueError("a semaphore needs at least one permit")
        self._rt = rt
        self._slots = rt.make_chan(permits, name=name or "semaphore")
        self.permits = permits

    def acquire(self) -> None:
        self._slots.send(None)

    def try_acquire(self) -> bool:
        return self._slots.try_send(None)

    def release(self) -> None:
        value, _ok, received = self._slots.try_recv()
        if not received:
            raise ValueError("release without a matching acquire")

    def in_use(self) -> int:
        return len(self._slots)

    def __enter__(self) -> "Semaphore":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def broadcast(rt, source, done, subscribers: int, buffer: int = 8):
    """Copy every value from ``source`` to N subscriber channels."""
    outputs = [rt.make_chan(buffer, name=f"bcast.{i}")
               for i in range(subscribers)]

    def pump():
        for value in or_done(rt, done, source):
            for out in outputs:
                index, _v, _ok = rt.select(recv(done), send(out, value))
                if index == 0:
                    for o in outputs:
                        o.close()
                    return
        for out in outputs:
            out.close()

    rt.go(pump, name="bcast.pump")
    return outputs
