"""Go concurrency patterns, done right.

The paper's background cites Pike's "Go Concurrency Patterns" and
Ajmani's "Advanced Go Concurrency Patterns" [3, 50] as the idioms Go
programmers build from — and Section 5/6 show what happens when the
idioms are hand-rolled carelessly.  This package provides the canonical
patterns with the studied bug classes engineered out (every helper is
cancellation-aware and leak-free; the test suite verifies both under
seed sweeps).

=================  ====================================================
``generate``       a cancellable producer channel
``pipeline``       chained transform stages
``fan_out``        one channel split across N workers
``fan_in``         N channels merged into one
``or_done``        wrap a channel so consumers honor cancellation
``take``           first N values, then cancel upstream
``worker_pool``    bounded-concurrency job execution with results
``semaphore``      counting semaphore over a buffered channel
``broadcast``      one value stream copied to many subscribers
``Backoff``        seeded exponential backoff with jitter
``retry``          call-until-success with backoff between attempts
``CircuitBreaker`` fail fast after repeated failures, probe on cooldown
=================  ====================================================
"""

from .core import (
    Semaphore,
    broadcast,
    fan_in,
    fan_out,
    generate,
    or_done,
    pipeline,
    take,
    worker_pool,
)
from .resilience import Backoff, CircuitBreaker, CircuitOpen, retry

__all__ = [
    "Backoff",
    "CircuitBreaker",
    "CircuitOpen",
    "retry",
    "Semaphore",
    "broadcast",
    "fan_in",
    "fan_out",
    "generate",
    "or_done",
    "pipeline",
    "take",
    "worker_pool",
]
