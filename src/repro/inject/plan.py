"""Fault plans: the serializable, composable description of *what* to break.

A :class:`FaultPlan` is a named list of :class:`Fault` specs.  Each fault
names an action (goroutine kill/delay, spurious wakeup, panic injection,
context-cancellation storm, virtual-clock jump, channel close/fill), a
trigger (``at_step`` / ``after_time`` / ``every``), an optional probability
gate, and an optional ``target`` glob over goroutine or channel names.

Plans carry **no randomness of their own**: all chance (probability gates,
victim choice) is drawn from the injector's RNG, which is seeded from
``(run seed, plan fingerprint)``.  The same ``(seed, plan)`` pair therefore
always injects the same faults at the same points and reproduces the same
trace — every chaos failure is a deterministic reproducer.

Plans serialize to plain JSON (``to_json`` / ``from_json``) so a failing
``(seed, plan)`` pair can be attached to a bug report and replayed anywhere.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: The fault actions the injector implements.
ACTIONS = (
    "kill",         # unwind a goroutine at its next resume
    "delay",        # park a runnable goroutine for `value` virtual seconds
    "wakeup",       # spuriously ready a blocked goroutine
    "panic",        # raise GoPanic(`value`) inside a goroutine
    "cancel_ctx",   # cancel up to `count` live cancellable contexts
    "clock_jump",   # advance the virtual clock by `value` seconds
    "chan_close",   # close a matching open channel
    "chan_fill",    # stuff a matching buffered channel to capacity
    # Network faults (repro.net fabrics; no-ops for programs without one).
    "net_partition",  # split nodes matching `target` from the rest (or
                      # `value` = explicit list of name groups)
    "net_heal",       # remove the active partition
    "net_drop",       # set link loss probability `value` on links matching
                      # `target` ("src->dst" glob, default all)
    "net_dup",        # set link duplication probability `value`
    "net_reorder",    # set link reorder probability `value`
    "net_delay",      # add `value` seconds of extra delay on matching links
    # Crash-recovery faults (repro.net nodes with a lifecycle).  Targets
    # glob node names; "n2/*" (the kill-style machine glob) also matches
    # node n2, so kill plans port to crash plans unchanged.
    "crash",          # crash-stop matching nodes: kill their goroutines,
                      # reset their conns, discard un-fsynced disk writes
    "restart",        # restart matching crashed/stopped nodes
    "crash_restart",  # crash now, restart after `value` seconds
)


@dataclass(frozen=True)
class Fault:
    """One fault spec.  At least one trigger must be set.

    Attributes:
        action: one of :data:`ACTIONS`.
        target: ``fnmatch`` glob over goroutine names (kill/delay/wakeup/
            panic), channel names (chan_close/chan_fill) or node names
            (crash/restart/crash_restart).  ``None`` means "any victim
            except the main goroutine" (goroutine faults) or "one random
            victim" (node faults).
        at_step: fire once when the scheduler reaches this step.
        after_time: fire once when the virtual clock reaches this time.
        every: fire once per ``every`` scheduling steps (a recurring storm).
        probability: chance of actually firing when due (injector RNG).
        times: total firing budget; ``None`` = unlimited (recurring faults).
        value: action parameter — delay/jump seconds, fill payload, panic
            message.
        count: victims per firing (cancellation-storm width, channel fills).
    """

    action: str
    target: Optional[str] = None
    at_step: Optional[int] = None
    after_time: Optional[float] = None
    every: Optional[int] = None
    probability: float = 1.0
    times: Optional[int] = 1
    value: Any = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.at_step is None and self.after_time is None and self.every is None:
            raise ValueError(
                f"fault {self.action!r} needs a trigger: at_step, after_time "
                "or every")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"probability out of range: {self.probability}")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Fault":
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered collection of faults.

    Compose plans with ``+`` (faults concatenate, names join with ``+``);
    serialize with ``to_json``/``from_json``.  :meth:`fingerprint` is a
    stable content hash folded into the injector RNG seed, so editing a plan
    re-randomizes its chance draws while replaying an unedited plan is exact.
    """

    name: str
    faults: Tuple[Fault, ...] = field(default_factory=tuple)
    note: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(
            name=f"{self.name}+{other.name}",
            faults=self.faults + other.faults,
            note="; ".join(n for n in (self.note, other.note) if n),
        )

    def with_name(self, name: str) -> "FaultPlan":
        return replace(self, name=name)

    @staticmethod
    def combine(plans: Sequence["FaultPlan"], name: Optional[str] = None
                ) -> "FaultPlan":
        combined = FaultPlan(name="empty") if not plans else plans[0]
        for plan in plans[1:]:
            combined = combined + plan
        return combined if name is None else combined.with_name(name)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "note": self.note,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            name=data["name"],
            note=data.get("note", ""),
            faults=tuple(Fault.from_dict(f) for f in data.get("faults", [])),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> int:
        """Stable 64-bit content hash (independent of Python hash seeds)."""
        digest = hashlib.sha256(self.to_json().encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def cache_key(self) -> str:
        """Content-bearing identity for memo keys.  Unlike ``repr`` (name +
        fault count), this folds in the full fingerprint, so two plans that
        share a name but differ in any parameter — a ``crash_restart``
        delay, a target glob — can never be served each other's cached
        results."""
        return f"{self.name}#{self.fingerprint():016x}"

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        return f"<FaultPlan {self.name!r} faults={len(self.faults)}>"
