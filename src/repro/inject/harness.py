"""ChaosHarness: sweep fault plans × seeds over programs and score resilience.

The harness generalizes the study's "run it many times" methodology to
chaos: a **target** (a mini-app workload or a bug kernel) is run under every
(plan, seed) cell of a grid, each run fully deterministic, and the results
aggregate into a scorecard.  A target is *clean* under a plan when every
seed passes its own success predicate; kernels instead report their
manifestation rate, which is how ``bench_chaos_resilience`` shows that
perturbation amplifies buggy kernels while leaving fixed ones clean.
"""

from __future__ import annotations

import inspect
from collections import Counter
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..parallel import map_units
from ..runtime.runtime import RunResult, run
from ..study.tables import render
from .plan import FaultPlan
from .plans import default_suite

#: A target runner: (seed, plan-or-None) -> RunResult.  Runners may take a
#: third ``observe`` argument; the harness passes it when metrics were
#: requested (``ChaosHarness(observe=True)``) and the runner supports it.
Runner = Callable[[int, Optional[FaultPlan]], RunResult]
#: A success predicate over one run.
Predicate = Callable[[RunResult], bool]


def _default_ok(result: RunResult) -> bool:
    """An app workload passes when the run is clean *and* the workload's own
    invariant (returned from main) held."""
    return result.status == "ok" and bool(result.main_result)


@dataclass(frozen=True)
class ChaosTarget:
    """One program under chaos: how to run it, and what "healthy" means."""

    name: str
    runner: Runner
    ok: Predicate
    kind: str = "app"  # "app" | "kernel-buggy" | "kernel-fixed"

    @classmethod
    def from_program(cls, name: str, program: Callable[..., Any],
                     ok: Optional[Predicate] = None,
                     **run_kwargs: Any) -> "ChaosTarget":
        """Wrap a plain ``main(rt)`` program (mini-app workload)."""

        def runner(seed: int, plan: Optional[FaultPlan],
                   observe: Any = None) -> RunResult:
            return run(program, seed=seed, inject=plan, observe=observe,
                       **run_kwargs)

        return cls(name=name, runner=runner, ok=ok or _default_ok)

    @classmethod
    def from_kernel(cls, kernel, variant: str = "buggy") -> "ChaosTarget":
        """Wrap a bug kernel; "healthy" means the symptom did not manifest."""
        run_variant = kernel.run_buggy if variant == "buggy" else kernel.run_fixed

        def runner(seed: int, plan: Optional[FaultPlan],
                   observe: Any = None) -> RunResult:
            return run_variant(seed=seed, inject=plan, observe=observe)

        return cls(
            name=f"{kernel.meta.kernel_id}[{variant}]",
            runner=runner,
            ok=lambda result: not kernel.manifested(result),
            kind=f"kernel-{variant}",
        )


@dataclass
class ChaosCell:
    """Aggregated outcome of one target under one plan across a seed sweep."""

    target: str
    plan: str                      # "baseline" when no faults were injected
    runs: int = 0
    failures: List[int] = field(default_factory=list)  # failing seeds
    statuses: Counter = field(default_factory=Counter)
    faults_fired: int = 0
    steps: int = 0                 # scheduler steps summed over the sweep
    #: Observed aggregates (populated when the harness runs with
    #: ``observe=True``): context switches, peak runnable depth, blocked
    #: events and steps spent blocked, summed/maxed across seeds.
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Convergence verdicts ("recovered"/"diverged"/"stuck") for recovery
    #: targets; empty for targets that do not emit one.
    verdicts: Counter = field(default_factory=Counter)

    @property
    def clean(self) -> bool:
        return not self.failures

    @property
    def failure_rate(self) -> float:
        return len(self.failures) / self.runs if self.runs else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "plan": self.plan,
            "runs": self.runs,
            "failures": list(self.failures),
            "failure_rate": self.failure_rate,
            "statuses": dict(self.statuses),
            "faults_fired": self.faults_fired,
            "steps": self.steps,
            "metrics": dict(self.metrics),
            "verdicts": dict(self.verdicts),
            "clean": self.clean,
        }


def _observation_metrics(observation: Any) -> Dict[str, float]:
    """Per-seed metric snapshot (picklable), computed where the observer is."""
    registry = observation.metrics
    return {
        "switches": (registry.counter("sched.switches").value
                     if "sched.switches" in registry else 0),
        "blocked_events": (registry.counter("go.blocks").value
                           if "go.blocks" in registry else 0),
        "blocked_steps": observation.block_profile.total_steps,
        "peak_runnable": (registry.histogram("sched.runnable_depth").max or 0
                          if "sched.runnable_depth" in registry else 0),
    }


def _run_cell_seed(target: "ChaosTarget", plan: Optional[FaultPlan],
                   observing: bool, seed: int) -> Dict[str, Any]:
    """One (seed, plan) unit of a chaos cell, reduced to a picklable record.

    Everything a cell folds — status, the target's own pass/fail verdict,
    fault and step counts, observation metrics — is computed here, in
    whichever process ran the simulation, so parallel sweeps ship back flat
    data instead of live results.
    """
    from ..detect.convergence import recovery_verdict

    if observing:
        result = target.runner(seed, plan, True)
    else:
        result = target.runner(seed, plan)
    observation = getattr(result, "observation", None)
    return {
        "status": result.status,
        "ok": bool(target.ok(result)),
        "faults": len(result.injected),
        "steps": result.steps,
        "metrics": (None if observation is None
                    else _observation_metrics(observation)),
        "verdict": recovery_verdict(result),
    }


class ChaosHarness:
    """Run targets × plans × seeds; collect cells; render the scorecard.

    With ``observe=True`` every run carries a :class:`repro.observe.Observer`
    and each cell aggregates its metrics (context switches, peak runnable
    depth, blocked steps) — the per-cell view of *how* a plan stressed a
    target, not only whether it survived.

    ``jobs > 1`` fans each cell's seed sweep across worker processes
    (:mod:`repro.parallel`).  Serial and parallel sweeps fold the same
    per-seed records in the same seed order, so the resulting cells (and
    ``to_dict()`` output) are byte-identical.

    With ``memo=True`` (the default) per-seed records are cached across
    harness instances through :mod:`repro.parallel.memo`, keyed by the
    content-bearing ``(target name, plan cache_key, seed)`` identity (the
    plan's name plus its full fingerprint, so plans that differ in any
    parameter never share records) — a scorecard that revisits a cell
    pays only for seeds it has never run.
    Pass ``memo=False`` (or :func:`repro.parallel.memo.disable`) when
    timing cells or when a target's name does not pin down its behavior.
    """

    def __init__(self, seeds: Sequence[int] = tuple(range(10)),
                 observe: bool = False, jobs: int = 1, memo: bool = True):
        self.seeds = tuple(seeds)
        self.observe = observe
        self.jobs = jobs
        self.memo = memo
        self.cells: List[ChaosCell] = []

    # ------------------------------------------------------------------

    @staticmethod
    def _runner_takes_observe(runner: Runner) -> bool:
        try:
            return len(inspect.signature(runner).parameters) >= 3
        except (TypeError, ValueError):  # pragma: no cover - builtins
            return False

    def run_cell(self, target: ChaosTarget,
                 plan: Optional[FaultPlan]) -> ChaosCell:
        cell = ChaosCell(target=target.name,
                         plan=plan.name if plan is not None else "baseline")
        observing = self.observe and self._runner_takes_observe(target.runner)
        records = self._cell_records(target, plan, observing)
        for seed, record in zip(self.seeds, records):
            cell.runs += 1
            cell.statuses[record["status"]] += 1
            cell.faults_fired += record["faults"]
            cell.steps += record["steps"]
            if record["metrics"] is not None:
                self._fold_metrics(cell, record["metrics"])
            # .get(): memo records written before verdicts existed fold
            # cleanly (their cells simply have no verdict column).
            if record.get("verdict") is not None:
                cell.verdicts[record["verdict"]] += 1
            if not record["ok"]:
                cell.failures.append(seed)
        self.cells.append(cell)
        return cell

    def _cell_records(self, target: ChaosTarget, plan: Optional[FaultPlan],
                      observing: bool) -> List[Dict[str, Any]]:
        """Per-seed records for one cell: memo hits plus dispatched misses."""
        from ..parallel import memo as memo_mod

        units = [partial(_run_cell_seed, target, plan, observing, seed)
                 for seed in self.seeds]
        if not (self.memo and memo_mod.enabled):
            return map_units(units, jobs=self.jobs)
        # cache_key() (name + content fingerprint), NOT repr (name + fault
        # count): two same-named plans differing only in a parameter — a
        # crash_restart delay, a target glob — must never be served each
        # other's cached records.  The "chaos-v2" tag retires pre-fingerprint
        # records wholesale.
        plan_key = "baseline" if plan is None else plan.cache_key()
        keys = [("chaos-v2", target.name, plan_key, observing, seed)
                for seed in self.seeds]
        records: List[Optional[Dict[str, Any]]] = [memo_mod.memo.get(key)
                                                   for key in keys]
        misses = [i for i, record in enumerate(records) if record is None]
        if misses:
            executed = map_units([units[i] for i in misses], jobs=self.jobs)
            for i, record in zip(misses, executed):
                records[i] = record
                memo_mod.memo.put(keys[i], record)
        return records  # type: ignore[return-value]

    @staticmethod
    def _fold_metrics(cell: ChaosCell, seed_metrics: Dict[str, float]) -> None:
        metrics = cell.metrics
        metrics["switches"] = (metrics.get("switches", 0)
                               + seed_metrics["switches"])
        metrics["blocked_events"] = (metrics.get("blocked_events", 0)
                                     + seed_metrics["blocked_events"])
        metrics["blocked_steps"] = (metrics.get("blocked_steps", 0)
                                    + seed_metrics["blocked_steps"])
        metrics["peak_runnable"] = max(metrics.get("peak_runnable", 0),
                                       seed_metrics["peak_runnable"])

    def sweep(self, targets: Sequence[ChaosTarget],
              plans: Optional[Sequence[FaultPlan]] = None,
              include_baseline: bool = True) -> List[ChaosCell]:
        """The full grid.  ``plans=None`` uses the default perturbation suite."""
        suite = list(default_suite()) if plans is None else list(plans)
        out: List[ChaosCell] = []
        for target in targets:
            if include_baseline:
                out.append(self.run_cell(target, None))
            for plan in suite:
                out.append(self.run_cell(target, plan))
        return out

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def scorecard(self, cells: Optional[Sequence[ChaosCell]] = None,
                  title: str = "Chaos resilience scorecard") -> str:
        chosen = list(self.cells if cells is None else cells)
        with_metrics = any(cell.metrics for cell in chosen)
        with_verdicts = any(cell.verdicts for cell in chosen)
        rows = []
        for cell in chosen:
            status_text = " ".join(
                f"{status}:{count}" for status, count in sorted(cell.statuses.items())
            )
            row = [
                cell.target,
                cell.plan,
                cell.runs,
                cell.faults_fired,
                status_text,
                f"{len(cell.failures)}/{cell.runs}",
                "CLEAN" if cell.clean else "FAILED",
            ]
            if with_verdicts:
                row.extend([
                    cell.verdicts.get("recovered", 0),
                    cell.verdicts.get("diverged", 0),
                    cell.verdicts.get("stuck", 0),
                ])
            if with_metrics:
                row.extend([
                    cell.steps,
                    int(cell.metrics.get("switches", 0)),
                    int(cell.metrics.get("blocked_steps", 0)),
                    int(cell.metrics.get("peak_runnable", 0)),
                ])
            rows.append(row)
        headers = ["Target", "Plan", "Runs", "Faults", "Statuses",
                   "Failures", "Verdict"]
        if with_verdicts:
            headers.extend(["Recovered", "Diverged", "Stuck"])
        if with_metrics:
            headers.extend(["Steps", "CtxSw", "BlkSteps", "PeakRun"])
        return render(headers, rows, title=title)

    def to_dict(self, cells: Optional[Sequence[ChaosCell]] = None) -> Dict[str, Any]:
        chosen = list(self.cells if cells is None else cells)
        return {
            "seeds": list(self.seeds),
            "cells": [cell.to_dict() for cell in chosen],
            "clean": all(cell.clean for cell in chosen),
        }


# ----------------------------------------------------------------------
# Standard target sets
# ----------------------------------------------------------------------


def app_targets() -> List[ChaosTarget]:
    """The six hardened mini-app workloads (see :mod:`repro.inject.scenarios`)."""
    from . import scenarios

    return [
        ChaosTarget.from_program(name, program, **kwargs)
        for name, program, kwargs in scenarios.all_scenarios()
    ]


def net_app_targets() -> List[ChaosTarget]:
    """The multi-node cluster workloads (see
    :func:`repro.inject.scenarios.net_scenarios`), typically swept against
    network plans — partitions, slow links — rather than the perturbation
    suite."""
    from . import scenarios

    return [
        ChaosTarget.from_program(name, program, **kwargs)
        for name, program, kwargs in scenarios.net_scenarios()
    ]


def recovery_targets() -> List[ChaosTarget]:
    """The supervised crash-recovery cluster workloads (see
    :func:`repro.inject.scenarios.recovery_scenarios`), meant for crash
    plans — their main result is a convergence verdict, so their cells
    grow Recovered/Diverged/Stuck scorecard columns."""
    from . import scenarios

    return [
        ChaosTarget.from_program(name, program, **kwargs)
        for name, program, kwargs in scenarios.recovery_scenarios()
    ]


def kernel_targets(kernel_ids: Optional[Sequence[str]] = None,
                   variant: str = "buggy") -> List[ChaosTarget]:
    """Bug kernels as chaos targets (both corpora by default)."""
    from ..bugs.registry import all_kernels, get

    kernels = (all_kernels() if kernel_ids is None
               else [get(kid) for kid in kernel_ids])
    return [ChaosTarget.from_kernel(k, variant=variant) for k in kernels]


def _manifested_under(kernel, run_variant, plan, seed: int) -> bool:
    return bool(kernel.manifested(run_variant(seed=seed, inject=plan)))


def manifestation_rate(kernel, seeds: Sequence[int],
                       plan: Optional[FaultPlan] = None,
                       variant: str = "buggy", jobs: int = 1) -> float:
    """Fraction of seeds under which the kernel's symptom appears.

    ``jobs > 1`` runs the seeds across worker processes; the rate is
    identical to the serial sweep's.  Per-seed verdicts are memoized by
    ``(kernel, variant, plan, seed)``, so re-computing a rate over an
    overlapping seed range only runs the new seeds.
    """
    from ..parallel import memo as memo_mod

    run_variant = kernel.run_buggy if variant == "buggy" else kernel.run_fixed
    units = [partial(_manifested_under, kernel, run_variant, plan, seed)
             for seed in seeds]
    if not memo_mod.enabled:
        verdicts = map_units(units, jobs=jobs)
        return sum(verdicts) / len(seeds) if seeds else 0.0
    plan_key = "baseline" if plan is None else plan.cache_key()
    keys = [("rate-v2", kernel.meta.kernel_id, variant, plan_key, seed)
            for seed in seeds]
    verdicts: List[Optional[bool]] = [memo_mod.memo.get(key) for key in keys]
    misses = [i for i, verdict in enumerate(verdicts) if verdict is None]
    if misses:
        executed = map_units([units[i] for i in misses], jobs=jobs)
        for i, verdict in zip(misses, executed):
            verdicts[i] = verdict
            memo_mod.memo.put(keys[i], verdict)
    return sum(verdicts) / len(seeds) if seeds else 0.0
