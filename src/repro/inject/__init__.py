"""repro.inject — deterministic, seeded fault injection (chaos testing).

Build a :class:`FaultPlan` (or pick one from :mod:`repro.inject.plans`),
pass it to ``repro.run(program, seed=s, inject=plan)``, and the injector
perturbs the run at scheduling points: goroutine kills/delays, spurious
wakeups, panic injection, context-cancellation storms, clock jumps, channel
closes and buffer fills.  Everything is replayable from ``(seed, plan)``.

:class:`ChaosHarness` sweeps plans × seeds over mini-app workloads and bug
kernels and renders a resilience scorecard (also: ``repro chaos`` CLI).
"""

from .harness import (
    ChaosCell,
    ChaosHarness,
    ChaosTarget,
    app_targets,
    kernel_targets,
    manifestation_rate,
    net_app_targets,
    recovery_targets,
)
from .injector import FaultInjector, FaultRecord
from .plan import ACTIONS, Fault, FaultPlan
from . import plans

__all__ = [
    "ACTIONS",
    "ChaosCell",
    "ChaosHarness",
    "ChaosTarget",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "app_targets",
    "kernel_targets",
    "manifestation_rate",
    "net_app_targets",
    "plans",
    "recovery_targets",
]
