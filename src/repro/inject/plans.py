"""A standard library of fault plans.

Factories return fresh :class:`FaultPlan` values; compose them with ``+``.
The registry at the bottom backs the ``repro chaos --plan`` CLI flag and
``--list-plans``.

Two tiers:

* **Perturbation plans** (`wakeup_storm`, `delay_storm`, `clock_skew`,
  `perturb`) only add interleavings that the runtime already permits —
  spurious wakeups, scheduling delays, clock drift.  A *correct* program
  must stay correct under them; a buggy one manifests more often.  These
  make up :func:`default_suite`, the scorecard's baseline bar.
* **Destructive plans** (`kill_goroutine`, `panic_goroutine`,
  `close_channels`, `fill_channels`, `cancel_storm`) break invariants on
  purpose — partner goroutines die, connections drop, buffers back up.
  Only programs *hardened* for that specific failure (retry, reconnect,
  re-acquire) survive them.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .plan import Fault, FaultPlan

# ----------------------------------------------------------------------
# Perturbation plans: safe for correct programs
# ----------------------------------------------------------------------


def wakeup_storm(every: int = 7, probability: float = 0.5) -> FaultPlan:
    """Spuriously wake one blocked goroutine every few steps.

    Programs following the wait-loop discipline re-check their condition and
    re-block; programs that treat "woke up" as "condition holds" misbehave.
    """
    return FaultPlan(
        name="wakeup-storm",
        faults=(Fault("wakeup", every=every, probability=probability, times=None),),
        note="spurious wakeups for blocked goroutines",
    )


def delay_storm(every: int = 11, duration: float = 0.05,
                probability: float = 0.5, target: Optional[str] = None) -> FaultPlan:
    """Randomly park runnable goroutines, as on an overloaded scheduler.

    Widens timing windows: the classic way to make a 1-in-1000 race common.
    """
    return FaultPlan(
        name="delay-storm",
        faults=(Fault("delay", target=target, every=every, value=duration,
                      probability=probability, times=None),),
        note="random scheduling delays",
    )


def clock_skew(every: int = 13, delta: float = 0.02,
               probability: float = 0.5) -> FaultPlan:
    """Nudge the virtual clock forward at random points.

    Timeouts, tickers and leases fire earlier relative to work than the
    program expects — the load pattern behind many timeout-vs-result races.
    """
    return FaultPlan(
        name="clock-skew",
        faults=(Fault("clock_jump", every=every, value=delta,
                      probability=probability, times=None),),
        note="random forward clock drift",
    )


def perturb() -> FaultPlan:
    """The generic perturbation mix used by ``bench_chaos_resilience``."""
    return (wakeup_storm() + delay_storm() + clock_skew()).with_name("perturb")


# ----------------------------------------------------------------------
# Destructive plans: require hardening to survive
# ----------------------------------------------------------------------


def kill_goroutine(target: str, at_step: int = 50, times: int = 1) -> FaultPlan:
    """Kill goroutines matching ``target`` once the run reaches ``at_step``."""
    return FaultPlan(
        name=f"kill[{target}]",
        faults=(Fault("kill", target=target, at_step=at_step, times=times),),
        note="goroutine death mid-flight",
    )


def panic_goroutine(target: str, at_step: int = 50,
                    message: str = "chaos: injected panic") -> FaultPlan:
    """Inject a panic into a goroutine matching ``target``."""
    return FaultPlan(
        name=f"panic[{target}]",
        faults=(Fault("panic", target=target, at_step=at_step, value=message),),
        note="injected panic",
    )


def cancel_storm(every: int = 23, count: int = 2,
                 probability: float = 0.5) -> FaultPlan:
    """Cancel live contexts at random: load-shedding / client-gone chaos."""
    return FaultPlan(
        name="cancel-storm",
        faults=(Fault("cancel_ctx", every=every, count=count,
                      probability=probability, times=None),),
        note="context-cancellation storm",
    )


def close_channels(target: str, at_step: int = 50, times: int = 1,
                   count: int = 1) -> FaultPlan:
    """Close open channels matching ``target``: dropped connections/streams."""
    return FaultPlan(
        name=f"close[{target}]",
        faults=(Fault("chan_close", target=target, at_step=at_step,
                      times=times, count=count),),
        note="channel close injection",
    )


def fill_channels(target: str, at_step: int = 50, value: Any = None,
                  times: int = 1, count: int = 1) -> FaultPlan:
    """Stuff buffered channels matching ``target`` to capacity.

    Models the full-buffer condition behind the paper's buffered-channel
    blocking bugs: the next send blocks where the developer assumed it
    couldn't.
    """
    return FaultPlan(
        name=f"fill[{target}]",
        faults=(Fault("chan_fill", target=target, at_step=at_step, value=value,
                      times=times, count=count),),
        note="buffered-channel fill injection",
    )


def clock_jump(delta: float, after_time: float = 0.0) -> FaultPlan:
    """One large forward jump: lease/deadline expiry chaos."""
    return FaultPlan(
        name=f"jump[{delta:g}s]",
        faults=(Fault("clock_jump", after_time=after_time, value=delta),),
        note="single large clock jump",
    )


# ----------------------------------------------------------------------
# Network plans (repro.net fabrics; no-ops for single-process programs)
# ----------------------------------------------------------------------


def partition(target: Optional[str] = None, at_step: int = 200,
              heal_after: Optional[int] = 600) -> FaultPlan:
    """Cut nodes matching ``target`` (one random node when None) off from
    the rest, then heal.  The canonical distributed-systems fault: in-flight
    messages across the boundary are lost, replication stalls, and hardened
    apps must re-converge after the heal."""
    faults = [Fault("net_partition", target=target, at_step=at_step)]
    if heal_after is not None:
        faults.append(Fault("net_heal", at_step=at_step + heal_after))
    name = "partition" if target is None else f"partition[{target}]"
    return FaultPlan(
        name=name,
        faults=tuple(faults),
        note="network partition with heal",
    )


def flaky_links(drop: float = 0.05, duplicate: float = 0.02,
                reorder: float = 0.02, target: Optional[str] = None,
                at_step: int = 1) -> FaultPlan:
    """Degrade matching links: loss, duplication and reordering rates a
    lossy WAN would show.  Idempotent retry/dedup logic survives; anything
    assuming exactly-once in-order delivery does not."""
    return FaultPlan(
        name="flaky-links",
        faults=(
            Fault("net_drop", target=target, at_step=at_step, value=drop),
            Fault("net_dup", target=target, at_step=at_step, value=duplicate),
            Fault("net_reorder", target=target, at_step=at_step,
                  value=reorder),
        ),
        note="lossy/duplicating/reordering links",
    )


def slow_links(extra: float = 0.05, target: Optional[str] = None,
               at_step: int = 1) -> FaultPlan:
    """Add per-link delay: the cross-region latency / congested-path case
    that turns narrow timeout margins into DEADLINE_EXCEEDED storms."""
    return FaultPlan(
        name="slow-links",
        faults=(Fault("net_delay", target=target, at_step=at_step,
                      value=extra),),
        note="extra per-link delay",
    )


# ----------------------------------------------------------------------
# Crash-recovery plans (repro.net nodes with a lifecycle)
# ----------------------------------------------------------------------


def crash_node(target: Optional[str] = None, after_time: float = 0.5,
               times: int = 1) -> FaultPlan:
    """Crash-stop nodes matching ``target`` (one random node when None).

    Goroutines die, peers see connection resets, and un-fsynced disk
    writes are lost.  Without supervision (or a later ``restart_node``)
    the node stays down — the pure crash-stop failure model.  Crash plans
    trigger on virtual time, not steps, so they land inside a workload's
    chaos window regardless of how busy the schedule is."""
    name = "crash" if target is None else f"crash[{target}]"
    return FaultPlan(
        name=name,
        faults=(Fault("crash", target=target, after_time=after_time,
                      times=times),),
        note="node crash-stop",
    )


def restart_node(target: Optional[str] = None, after_time: float = 1.5,
                 times: int = 1) -> FaultPlan:
    """Restart crashed/stopped nodes matching ``target``.  Pairs with
    :func:`crash_node` when the restart timing should be plan-driven
    rather than supervision-driven."""
    name = "restart" if target is None else f"restart[{target}]"
    return FaultPlan(
        name=name,
        faults=(Fault("restart", target=target, after_time=after_time,
                      times=times),),
        note="node restart",
    )


def crash_restart(target: Optional[str] = None, after_time: float = 0.5,
                  delay: float = 0.25, times: int = 1) -> FaultPlan:
    """Crash a node, then restart it ``delay`` virtual seconds later.

    The canonical crash-recovery fault: state not fsynced at crash time
    is gone, recovery replays the WAL, peers must redial.  ``delay``
    rides in the fault's ``value`` so it serializes and fingerprints."""
    name = "crash-restart" if target is None else f"crash-restart[{target}]"
    return FaultPlan(
        name=name,
        faults=(Fault("crash_restart", target=target, after_time=after_time,
                      value=delay, times=times),),
        note="node crash with delayed restart",
    )


def crash_storm(times: int = 3, first: float = 0.4, gap: float = 0.6,
                delay: float = 0.25,
                target: Optional[str] = None) -> FaultPlan:
    """Rolling crash/restart pressure: ``times`` crashes, one every
    ``gap`` virtual seconds starting at ``first``, each machine back
    ``delay`` seconds later.  The rolling-failure load a supervised
    cluster must absorb without losing data or quorum."""
    faults = tuple(
        Fault("crash_restart", target=target,
              after_time=round(first + i * gap, 6), value=delay)
        for i in range(times)
    )
    return FaultPlan(
        name="crash-storm",
        faults=faults,
        note="rolling node crash/restart pressure",
    )


# ----------------------------------------------------------------------
# Suites and the registry
# ----------------------------------------------------------------------


def default_suite() -> List[FaultPlan]:
    """The scorecard's default bar: every hardened app must stay clean under
    each of these plans across the seed sweep."""
    return [wakeup_storm(), delay_storm(), clock_skew(), perturb()]


#: name -> zero-argument factory, for the CLI.
REGISTRY: Dict[str, Callable[[], FaultPlan]] = {
    "wakeup-storm": wakeup_storm,
    "delay-storm": delay_storm,
    "clock-skew": clock_skew,
    "perturb": perturb,
    "cancel-storm": cancel_storm,
    "partition": partition,
    "flaky-links": flaky_links,
    "slow-links": slow_links,
    "crash": crash_node,
    "restart": restart_node,
    "crash-restart": crash_restart,
    "crash-storm": crash_storm,
}


def get(name: str) -> FaultPlan:
    """Look up a registered plan by name (CLI ``--plan``)."""
    try:
        return REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown plan {name!r}; available: {', '.join(sorted(REGISTRY))}"
        ) from None
