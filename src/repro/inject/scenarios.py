"""Chaos scenarios: one self-checking workload per mini-app.

Each scenario is a ``main(rt)`` program that exercises its app's hardened
paths (retry with seeded backoff, reliable watches, lease re-acquisition,
redialing clients, restart supervision) and returns a truthy value exactly
when the workload's end-to-end invariant held.  The scorecard criterion is
therefore strict: a clean cell means the run terminated without leaks or
panics *and* the application-level result was correct under the injected
faults.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple


def minietcd_scenario(rt) -> bool:
    """Writer + reliable watch: every PUT is observed, even across watch
    teardown (the watch re-subscribes and resyncs by revision)."""
    from ..apps.minietcd import Node

    node = Node(rt)
    node.start()
    watch = node.reliable_watch("job/")
    keys = [f"job/{i}" for i in range(8)]

    def writer():
        for value, key in enumerate(keys):
            node.put(key, value)
            rt.sleep(0.05)

    rt.go(writer, name="etcd-writer")

    seen = set()
    deadline = rt.now() + 30.0
    while len(seen) < len(keys) and rt.now() < deadline:
        event, ok, got = watch.events.try_recv()
        if got and not ok:
            break  # output channel closed: the watch gave up entirely
        if got:
            seen.add(event.key)
        else:
            rt.sleep(0.05)
    watch.cancel()
    node.stop()
    rt.sleep(0.2)
    stored = all(node.get(key) is not None for key in keys)
    return seen == set(keys) and stored


def minikube_scenario(rt) -> bool:
    """Scheduling under leader election: pods all land on nodes and the
    lease changes hands cleanly (never two live leaders)."""
    from ..apps.minikube import (
        ApiServer, LeaderElector, LeaseLock, Node, Pod, PodPhase, Scheduler,
    )

    api = ApiServer(rt)
    api.add_node(Node("node-a", capacity=4))
    api.add_node(Node("node-b", capacity=4))
    scheduler = Scheduler(rt, api)
    scheduler.start()

    lock = LeaseLock(rt, ttl=0.5)
    electors = [LeaderElector(rt, lock, f"ctrl-{i}") for i in range(2)]
    for elector in electors:
        elector.start()

    for i in range(4):
        api.create_pod(Pod(f"p{i}"))
    healthy = True
    for _ in range(30):
        rt.sleep(0.1)
        if sum(1 for e in electors if e.leading) > 1 \
                and lock.current_holder() is not None:
            healthy = False  # two electors both believe they lead
    scheduled = all(p.phase != PodPhase.PENDING for p in api.pods())
    elected = sum(e.acquisitions.load() for e in electors) >= 1

    for elector in electors:
        elector.stop()
    scheduler.stop()
    api.close_watchers()
    rt.sleep(0.5)
    return healthy and scheduled and elected


def minigrpc_scenario(rt) -> bool:
    """Unary + streaming RPCs through the retrying, redialing client."""
    from ..apps.minigrpc import Listener, Server, dial

    listener = Listener(rt)
    server = Server(rt)
    server.register("echo", lambda payload: payload)

    def counter(n, send):
        for i in range(n):
            send(i)

    server.register_stream("range", counter)
    server.start(listener)

    client = dial(rt, listener)
    healthy = True
    for i in range(6):
        if client.call_with_retry("echo", i, timeout=2.0) != i:
            healthy = False
    if client.collect_stream_with_retry("range", 4) != [0, 1, 2, 3]:
        healthy = False
    client.close()
    server.graceful_stop(listener)
    return healthy


def minidocker_scenario(rt) -> bool:
    """Containers under a restart policy; the event bus stays coherent."""
    from ..apps.minidocker import Daemon

    daemon = Daemon(rt)
    daemon.start()
    daemon.images.pull("app", [("sha-1", 1)])
    sub = daemon.subscribe(buffer=32)
    daemon.run_with_restart("app", "serve", runtime_secs=0.3, max_restarts=2)
    daemon.run("app", "job", runtime_secs=0.2)
    daemon.wait_all()
    daemon.shutdown()

    kinds: List[str] = []
    while True:
        event, ok, got = sub.try_recv()
        if not got or not ok:
            break
        kinds.append(event.kind)
    # 4 starts (2 fresh + 2 restarts) and both restart notifications.
    return kinds.count("start") >= 3 and kinds.count("restart") == 2


def miniroach_scenario(rt) -> bool:
    """Concurrent transfers with conflict retries: money is conserved and
    every transfer eventually commits."""
    from ..apps.miniroach import MVCCStore, TxnCoordinator, WriteConflict

    store = MVCCStore(rt)
    coordinator = TxnCoordinator(rt, store, max_retries=16)

    def seed(txn):
        txn.put("acct/a", 100)
        txn.put("acct/b", 100)

    coordinator.run(seed)

    wg = rt.waitgroup("transfers")
    failures = rt.atomic_int(0, name="transfer-failures")

    def transfer(index: int):
        worker = TxnCoordinator(rt, store, max_retries=16)

        def body(txn):
            a = txn.get("acct/a")
            b = txn.get("acct/b")
            txn.put("acct/a", a - 5)
            txn.put("acct/b", b + 5)

        try:
            worker.run(body)
        except WriteConflict:
            failures.add(1)
        wg.done()

    for i in range(4):
        wg.add(1)
        rt.go(transfer, i, name=f"transfer-{i}")
    wg.wait()

    def audit(txn):
        return txn.get("acct/a") + txn.get("acct/b")

    return coordinator.run(audit) == 200 and failures.load() == 0


def miniboltdb_scenario(rt) -> bool:
    """Concurrent writers through the lock-polling update path."""
    from ..apps.miniboltdb import DB

    db = DB(rt)
    wg = rt.waitgroup("writers")
    committed = rt.atomic_int(0, name="bolt-commits")

    def writer(index: int):
        def body(tx):
            tx.put(f"k{index}", index)
            tx.put("count", (tx.get("count") or 0) + 1)

        for _ in range(3):
            if db.update_with_retry(body):
                committed.add(1)
                break
        wg.done()

    for i in range(5):
        wg.add(1)
        rt.go(writer, i, name=f"bolt-writer-{i}")
    wg.wait()

    final: Dict[str, Any] = {}

    def read(tx):
        final["count"] = tx.get("count")

    db.view(read)
    return committed.load() == 5 and final["count"] == 5


def all_scenarios() -> List[Tuple[str, Callable[..., Any], Dict[str, Any]]]:
    """(name, program, extra run kwargs) for the six hardened apps."""
    return [
        ("minietcd", minietcd_scenario, {}),
        ("minikube", minikube_scenario, {}),
        ("minigrpc", minigrpc_scenario, {}),
        ("minidocker", minidocker_scenario, {}),
        ("miniroach", miniroach_scenario, {}),
        ("miniboltdb", miniboltdb_scenario, {}),
    ]


# ----------------------------------------------------------------------
# Multi-node scenarios (repro.net fabrics)
# ----------------------------------------------------------------------


def net_etcd_scenario(rt) -> bool:
    """A 3-node minietcd cluster under network chaos.

    Puts go through the leader with unary retries; replication retries
    with seeded backoff until followers ack; a watch streams from the
    leader under a per-event deadline.  The invariant: every put lands,
    every member converges, and the watcher sees all six events — even
    when a follower is partitioned away mid-run and healed later.
    """
    from ..apps.minietcd.cluster import EtcdCluster
    from ..chan.cases import recv as recv_case
    from ..net.rpc import RpcError

    cluster = EtcdCluster(rt, size=3)
    client = cluster.client("client")
    watch_client = cluster.client("watchcli")

    events: List[Any] = []
    watch_done = rt.make_chan(1, name="watch-done")

    def watcher():
        try:
            for event in watch_client.watch("job/", count=6, timeout=20.0):
                events.append(event)
        except RpcError:
            pass
        watch_done.try_send(True)

    rt.go(watcher, name="cluster-watcher")

    lease = client.grant_lease(ttl=120.0)
    puts = 0
    for i in range(6):
        try:
            client.put(f"job/{i}", i, lease=lease if i == 0 else None,
                       attempts=10)
            puts += 1
        except RpcError:
            pass

    converged = cluster.await_convergence("job/", timeout=120.0)
    timer = rt.new_timer(60.0)
    rt.select(recv_case(watch_done), recv_case(timer.c))
    timer.stop()
    try:
        rows = len(client.range("job/", timeout=20.0))
    except RpcError:
        rows = -1
    cluster.stop()
    return puts == 6 and converged and len(events) == 6 and rows == 6


def net_grpc_scenario(rt) -> bool:
    """A two-server gRPC-style service with a failing-over client.

    Either server can answer; the client walks the address list with a
    per-call deadline and growing sleeps, so partitioning one server off
    the fabric reroutes traffic instead of failing it."""
    from ..net import NetError, Node, RpcClient, RpcError, RpcServer

    net = rt.network(name="grpcnet", default_latency=0.002)
    nodes = []
    addrs = []
    for name in ("srv1", "srv2"):
        node = Node(net, name)
        server = RpcServer(node, name="grpc")
        server.register("echo", lambda payload: payload)

        def counter(n, send):
            for i in range(n):
                send(i)

        server.register_streaming("range", counter)
        server.serve(node.listen("grpc"))
        nodes.append(node)
        addrs.append(node.addr("grpc"))
    cli = Node(net, "cli")

    def with_failover(use):
        """Run ``use(client)`` against whichever server is reachable."""
        for attempt in range(16):
            addr = addrs[attempt % len(addrs)]
            client = None
            try:
                client = RpcClient(cli, addr, name="fo")
                return use(client)
            except (NetError, RpcError):
                rt.sleep(0.05 * (attempt + 1))
            finally:
                if client is not None:
                    client.close()
        return None

    healthy = True
    for i in range(8):
        reply = with_failover(lambda c: c.call("echo", i, timeout=0.5))
        if reply != i:
            healthy = False
    frames = with_failover(
        lambda c: list(c.stream("range", 4, timeout=5.0)))
    if frames != [0, 1, 2, 3]:
        healthy = False

    cli.stop()
    for node in nodes:
        node.stop()
    return healthy


def net_scenarios() -> List[Tuple[str, Callable[..., Any], Dict[str, Any]]]:
    """(name, program, extra run kwargs) for the multi-node cluster apps.

    Kept separate from :func:`all_scenarios` (the single-process six) so
    existing scorecards keep their shape; the chaos benchmarks add one
    partition cell per entry here."""
    return [
        ("minietcd-cluster", net_etcd_scenario, {"max_steps": 400_000}),
        ("minigrpc-cluster", net_grpc_scenario, {"max_steps": 400_000}),
    ]


# ----------------------------------------------------------------------
# Crash-recovery scenarios (supervised clusters + convergence verdicts)
# ----------------------------------------------------------------------


def net_etcd_recovery_scenario(rt, size: int = 3, chaos_window: float = 2.0,
                               budget: float = 8.0) -> Dict[str, Any]:
    """A durable, electing minietcd cluster under crash faults.

    Every member WALs its puts; a supervisor restarts crashed machines
    (including the client's); the election watchdog re-elects when the
    leader dies; the failover client redials the current leader.  A
    writer keeps load on the cluster through a ``chaos_window`` of
    virtual time (the span fault plans aim their crashes into), then
    :func:`repro.detect.await_recovery` watches for the recovered state:
    every machine back up, replicas agreeing, writes being acked again.
    Returns the verdict dict the chaos scorecard folds into its
    Recovered/Diverged/Stuck columns.
    """
    from ..apps.minietcd.cluster import EtcdCluster
    from ..detect.convergence import await_recovery
    from ..net import RestartPolicy, Supervisor
    from ..net.rpc import RpcError

    cluster = EtcdCluster(rt, size=size, durable=True, elect=True,
                          fsync_latency=0.001)
    supervisor = Supervisor(rt, RestartPolicy.always(delay=0.1),
                            name="etcd-sup")
    for member in cluster.members:
        supervisor.watch(member.node)
    client = cluster.client("client", failover=True)
    supervisor.watch(client.node)

    acked = rt.atomic_int(0, name="recovery.acked")
    writing = {"on": True}
    wg = rt.waitgroup("recovery.writer")
    wg.add(1)

    def writer():
        try:
            i = 0
            while writing["on"]:
                try:
                    client.put(f"job/{i % 8}", i, attempts=6)
                    acked.add(1)
                except RpcError:
                    pass
                rt.sleep(0.05)
                i += 1
        finally:
            wg.done()

    rt.go(writer, name="recovery-writer")

    # Ride out the chaos window first: the verdict is about the end
    # state, so the watch must not declare "recovered" before the plan
    # has had its virtual-time span to crash things in.
    rt.sleep(chaos_window)
    report = await_recovery(
        rt,
        consistent=lambda: (
            all(not m.node.stopped for m in cluster.members)
            and cluster.converged("job/")),
        progress=lambda: acked.load(),
        budget=budget, poll=0.1)

    writing["on"] = False
    wg.wait()
    supervisor.stop()
    cluster.stop()
    return {
        "verdict": report.verdict,
        "recovery_s": report.recovery_s,
        "acked": acked.load(),
        "restarts": supervisor.total_restarts,
    }


def net_grpc_recovery_scenario(rt, chaos_window: float = 2.0,
                               budget: float = 6.0) -> Dict[str, Any]:
    """The two-server failover service under crash faults.

    Both servers carry an ``on_restart`` hook that rebinds the listener
    and re-registers handlers in the fresh incarnation's boot goroutine;
    a backoff-capped supervisor brings crashed machines back.  Recovery
    means both servers answer again and the failing-over client is making
    progress.
    """
    from ..detect.convergence import await_recovery
    from ..net import (
        NetError, Node, RestartPolicy, RpcClient, RpcError, RpcServer,
        Supervisor,
    )

    net = rt.network(name="grpcnet", default_latency=0.002)

    def serve(node):
        server = RpcServer(node, name="grpc")
        server.register("echo", lambda payload: payload)

        def counter(n, send):
            for i in range(n):
                send(i)

        server.register_streaming("range", counter)
        server.serve(node.listen("grpc"))

    nodes = []
    addrs = []
    for name in ("srv1", "srv2"):
        node = Node(net, name)
        node.on_restart = serve
        serve(node)
        nodes.append(node)
        addrs.append(node.addr("grpc"))
    cli = Node(net, "cli")

    supervisor = Supervisor(
        rt, RestartPolicy.backoff_capped(max_restarts=16, delay=0.05),
        name="grpc-sup")
    for node in nodes:
        supervisor.watch(node)
    supervisor.watch(cli)

    acked = rt.atomic_int(0, name="grpc.acked")
    calling = {"on": True}
    wg = rt.waitgroup("grpc.caller")
    wg.add(1)

    def caller():
        try:
            i = 0
            while calling["on"]:
                for attempt in range(6):
                    addr = addrs[(i + attempt) % len(addrs)]
                    client = None
                    try:
                        client = RpcClient(cli, addr, name="fo")
                        if client.call("echo", i, timeout=0.5) == i:
                            acked.add(1)
                        break
                    except (NetError, RpcError):
                        rt.sleep(0.05 * (attempt + 1))
                    finally:
                        if client is not None:
                            client.close()
                rt.sleep(0.05)
                i += 1
        finally:
            wg.done()

    rt.go(caller, name="grpc-caller")

    rt.sleep(chaos_window)
    report = await_recovery(
        rt,
        consistent=lambda: all(not n.stopped for n in nodes + [cli]),
        progress=lambda: acked.load(),
        budget=budget, poll=0.1)

    calling["on"] = False
    wg.wait()
    supervisor.stop()
    cli.stop()
    for node in nodes:
        node.stop()
    return {
        "verdict": report.verdict,
        "recovery_s": report.recovery_s,
        "acked": acked.load(),
        "restarts": supervisor.total_restarts,
    }


def recovered_ok(result) -> bool:
    """The recovery scenarios' pass bar: a clean run whose convergence
    verdict is ``recovered``."""
    return (result.status == "ok"
            and isinstance(result.main_result, dict)
            and result.main_result.get("verdict") == "recovered")


def recovery_scenarios() -> List[Tuple[str, Callable[..., Any],
                                       Dict[str, Any]]]:
    """(name, program, extra run kwargs) for the supervised crash-recovery
    workloads.  Their pass predicate is :func:`recovered_ok`, so a cell is
    clean only when every seed ends in the ``recovered`` verdict."""
    return [
        ("minietcd-recovery", net_etcd_recovery_scenario,
         {"ok": recovered_ok, "max_steps": 600_000}),
        ("minigrpc-recovery", net_grpc_recovery_scenario,
         {"ok": recovered_ok, "max_steps": 600_000}),
    ]
