"""The fault injector: executes a :class:`FaultPlan` at scheduling points.

The injector is pulsed by the scheduler once per loop iteration — i.e. at
exactly the points where scheduling decisions already happen — and never
from goroutine context.  All of its randomness (probability gates, victim
choice) comes from one RNG seeded from ``(run seed, plan fingerprint)``, so
a chaos run is a pure function of ``(program, seed, plan)`` and any failure
it uncovers replays exactly.

Fault semantics (see :data:`repro.inject.plan.ACTIONS`):

* ``kill``/``panic`` model goroutines dying mid-flight — the situation the
  paper's blocking bugs are least prepared for (peers block forever on a
  channel nobody will ever service).
* ``delay``/``wakeup`` perturb timing the way loaded schedulers do, making
  rare interleavings (timeout-fires-first, slow-consumer) common.
* ``cancel_ctx`` is a context-cancellation storm: every in-flight request
  may be cancelled at any moment, as under deployment-scale load shedding.
* ``clock_jump`` skews virtual time forward, expiring leases/timeouts early.
* ``chan_close``/``chan_fill`` model infrastructure failure: connections
  dropping and buffers backing up.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ..runtime.errors import GoPanic
from ..runtime.goroutine import GState
from ..runtime.trace import EventKind
from .plan import Fault, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime
    from ..runtime.scheduler import Scheduler


@dataclass(frozen=True)
class FaultRecord:
    """One fault that actually fired, for reproducers and scorecards."""

    step: int
    time: float
    action: str
    plan: str
    fault_index: int
    victim: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "step": self.step,
            "time": self.time,
            "action": self.action,
            "plan": self.plan,
            "fault_index": self.fault_index,
            "victim": self.victim,
            "detail": dict(self.detail),
        }

    def __repr__(self) -> str:
        return (f"<Fault {self.action} -> {self.victim} "
                f"@step {self.step} t={self.time:g}>")


def _derive_rng(seed: int, plan: FaultPlan) -> random.Random:
    """One RNG per (seed, plan): independent of the scheduler's RNG so the
    base schedule for a seed is unchanged by merely *attaching* a plan whose
    faults never fire."""
    return random.Random(plan.fingerprint() * 1_000_003 + seed)


class FaultInjector:
    """Executes one plan against one run.  Single-use: attach, run, read log."""

    #: Default parameters when a fault omits ``value``.
    DEFAULT_DELAY = 0.05
    DEFAULT_JUMP = 0.25

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = seed
        self.rng = _derive_rng(seed, plan)
        self.log: List[FaultRecord] = []
        self._rt: Optional["Runtime"] = None
        # Per-fault trigger bookkeeping.
        self._remaining = [fault.times for fault in plan.faults]  # None = inf
        self._last_epoch = [-1] * len(plan.faults)

    # ------------------------------------------------------------------
    # Observer protocol (same shape as the detectors)
    # ------------------------------------------------------------------

    def attach(self, rt: "Runtime") -> None:
        self._rt = rt
        rt.sched.injector = self
        # Arm sentinel timers so the clock can reach `after_time` triggers
        # even when no program timer is pending.
        for fault in self.plan.faults:
            if fault.after_time is not None:
                rt.sched.clock.call_at(fault.after_time, lambda: None)

    # ------------------------------------------------------------------
    # Scheduler-side pulse
    # ------------------------------------------------------------------

    def pulse(self, sched: "Scheduler") -> bool:
        """Fire every due fault.  Returns True when anything fired."""
        acted = False
        for index, fault in enumerate(self.plan.faults):
            if not self._due(index, fault, sched):
                continue
            if fault.probability < 1.0 and self.rng.random() >= fault.probability:
                # The occurrence happened but the coin said no.
                self._consume(index, fault)
                continue
            if self._fire(index, fault, sched):
                self._consume(index, fault)
                acted = True
        return acted

    # ------------------------------------------------------------------
    # Trigger logic
    # ------------------------------------------------------------------

    def _due(self, index: int, fault: Fault, sched: "Scheduler") -> bool:
        remaining = self._remaining[index]
        if remaining is not None and remaining <= 0:
            return False
        if fault.every is not None:
            epoch = sched.steps // fault.every
            if epoch <= self._last_epoch[index]:
                return False
            self._last_epoch[index] = epoch
            return True
        if fault.at_step is not None and sched.steps < fault.at_step:
            return False
        if fault.after_time is not None and sched.clock.now < fault.after_time:
            return False
        return True

    def _consume(self, index: int, fault: Fault) -> None:
        if self._remaining[index] is not None:
            self._remaining[index] -= 1

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------

    def _fire(self, index: int, fault: Fault, sched: "Scheduler") -> bool:
        action = fault.action
        if action in ("kill", "delay", "wakeup", "panic"):
            return self._fire_goroutine_fault(index, fault, sched)
        if action == "cancel_ctx":
            return self._fire_cancel_storm(index, fault, sched)
        if action == "clock_jump":
            return self._fire_clock_jump(index, fault, sched)
        if action in ("chan_close", "chan_fill"):
            return self._fire_channel_fault(index, fault, sched)
        if action in ("crash", "restart", "crash_restart"):
            return self._fire_node_fault(index, fault, sched)
        if action.startswith("net_"):
            return self._fire_net_fault(index, fault, sched)
        raise AssertionError(f"unhandled action {action}")  # pragma: no cover

    def _matches_goroutine(self, fault: Fault, g) -> bool:
        if fault.target is None:
            # Never pick main implicitly: killing/panicking main just ends
            # the run and hides what the chaos was meant to exercise.
            return g.name != "main"
        return fnmatchcase(g.name or "", fault.target)

    def _fire_goroutine_fault(self, index: int, fault: Fault,
                              sched: "Scheduler") -> bool:
        states = {
            "kill": (GState.RUNNABLE, GState.BLOCKED),
            "panic": (GState.RUNNABLE, GState.BLOCKED),
            "delay": (GState.RUNNABLE,),
            "wakeup": (GState.BLOCKED,),
        }[fault.action]
        candidates = [g for g in sched.goroutines
                      if g.state in states and self._matches_goroutine(fault, g)]
        if fault.action == "delay":
            candidates = [g for g in candidates if g in sched._runnable]
        if not candidates:
            return False
        victims = (candidates if len(candidates) <= fault.count
                   else self.rng.sample(candidates, fault.count))
        fired = False
        for g in victims:
            if fault.action == "kill":
                done = sched.inject_kill(g)
            elif fault.action == "delay":
                done = sched.inject_delay(
                    g, fault.value if fault.value is not None else self.DEFAULT_DELAY)
            elif fault.action == "wakeup":
                done = sched.inject_wakeup(g)
            else:
                message = fault.value if fault.value is not None else "chaos: injected panic"
                done = sched.inject_panic(g, GoPanic(message))
            if done:
                self._record(index, fault, sched, victim=f"g{g.gid}:{g.name}")
                fired = True
        return fired

    def _fire_cancel_storm(self, index: int, fault: Fault,
                           sched: "Scheduler") -> bool:
        rt = self._rt
        if rt is None:
            return False
        live = [ctx for ctx in rt._cancel_contexts if ctx.err() is None]
        if not live:
            return False
        victims = (live if len(live) <= fault.count
                   else self.rng.sample(live, fault.count))
        for ctx in victims:
            ctx.cancel()
            self._record(index, fault, sched, victim=repr(ctx))
        return True

    def _fire_clock_jump(self, index: int, fault: Fault,
                         sched: "Scheduler") -> bool:
        delta = fault.value if fault.value is not None else self.DEFAULT_JUMP
        fired = sched.clock.advance(delta)
        self._record(index, fault, sched, victim=f"clock+{delta:g}s",
                     detail={"timers_fired": len(fired)})
        sched.fire_timers(fired)
        return True

    def _fire_channel_fault(self, index: int, fault: Fault,
                            sched: "Scheduler") -> bool:
        rt = self._rt
        if rt is None:
            return False

        def matches(ch) -> bool:
            return fault.target is None or fnmatchcase(ch.name or "", fault.target)

        if fault.action == "chan_close":
            candidates = [ch for ch in rt._channels
                          if not ch.closed and matches(ch)]
        else:
            candidates = [ch for ch in rt._channels
                          if not ch.closed and ch.capacity > 0
                          and len(ch) < ch.capacity and matches(ch)]
        if not candidates:
            return False
        victims = (candidates if len(candidates) <= fault.count
                   else self.rng.sample(candidates, fault.count))
        for ch in victims:
            if fault.action == "chan_close":
                ch.close()
                self._record(index, fault, sched, victim=f"chan:{ch.name}")
            else:
                stuffed = 0
                while len(ch._buf) < ch.capacity:
                    ch._buf.append((ch._next_seq(), fault.value))
                    stuffed += 1
                self._record(index, fault, sched, victim=f"chan:{ch.name}",
                             detail={"stuffed": stuffed})
        return True

    #: Virtual seconds between crash and restart when ``crash_restart``
    #: omits ``value``.
    DEFAULT_RESTART_DELAY = 0.25

    @staticmethod
    def _matches_node(fault: Fault, name: str) -> bool:
        """Node-fault target match: the node name itself, or the
        ``"<node>/*"`` machine glob the kill action established."""
        target = fault.target
        if target is None:
            return True
        return (fnmatchcase(name, target)
                or (target.endswith("/*") and fnmatchcase(name, target[:-2])))

    def _fire_node_fault(self, index: int, fault: Fault,
                         sched: "Scheduler") -> bool:
        """crash / restart / crash_restart against registered fabric nodes.

        A crash is crash-stop plus disk semantics: the node's goroutines
        die, peers see connection resets, and un-fsynced WAL records are
        discarded.  ``crash_restart`` additionally arms a virtual-clock
        timer that calls ``node.restart()`` after ``value`` seconds —
        recovery then runs in the node's fresh boot goroutine.  Victim
        choice (when ``target`` is None) comes from the injector RNG, so
        the whole lifecycle replays from ``(seed, plan)``.
        """
        rt = self._rt
        if rt is None or not rt._networks:
            return False
        nodes = [node for net in rt._networks
                 for node in net.nodes.values()
                 if self._matches_node(fault, node.name)]
        if fault.action == "restart":
            candidates = [n for n in nodes if n.stopped]
        else:
            candidates = [n for n in nodes if not n.stopped]
        if not candidates:
            return False
        if len(candidates) <= fault.count:
            victims = candidates
        else:
            victims = self.rng.sample(candidates, fault.count)
        fired = False
        for node in victims:
            if fault.action == "restart":
                if node.restart():
                    self._record(index, fault, sched,
                                 victim=f"node:{node.name}",
                                 detail={"incarnation": node.incarnation})
                    fired = True
                continue
            lost = node.crash()
            if lost is None:
                continue
            detail: Dict[str, Any] = {"lost_writes": lost}
            if fault.action == "crash_restart":
                delay = (fault.value if fault.value is not None
                         else self.DEFAULT_RESTART_DELAY)
                detail["restart_after"] = delay
                # The timer fires in scheduler context; restart() defers
                # recovery to the node's boot goroutine.  A supervisor may
                # have revived the node first — restart() is then a no-op.
                sched.clock.call_after(delay, node.restart)
            self._record(index, fault, sched, victim=f"node:{node.name}",
                         detail=detail)
            fired = True
        return fired

    #: Defaults for network faults omitting ``value``.
    DEFAULT_NET_RATE = 0.1
    DEFAULT_NET_DELAY = 0.05

    #: net_* rate actions -> Network.set_fault_rate kinds.
    _NET_RATE_KINDS = {
        "net_drop": "drop",
        "net_dup": "duplicate",
        "net_reorder": "reorder",
        "net_delay": "delay",
    }

    def _fire_net_fault(self, index: int, fault: Fault,
                        sched: "Scheduler") -> bool:
        rt = self._rt
        if rt is None or not rt._networks:
            return False
        fired = False
        for net in rt._networks:
            if fault.action == "net_partition":
                groups = self._partition_groups(fault, net)
                if groups is None:
                    continue
                net.partition(*groups)
                self._record(index, fault, sched, victim=f"net:{net.name}",
                             detail={"groups": [sorted(g) for g in groups]})
            elif fault.action == "net_heal":
                if not net.partitioned:
                    continue
                net.heal()
                self._record(index, fault, sched, victim=f"net:{net.name}")
            else:
                kind = self._NET_RATE_KINDS[fault.action]
                pattern = fault.target or "*"
                default = (self.DEFAULT_NET_DELAY if kind == "delay"
                           else self.DEFAULT_NET_RATE)
                value = fault.value if fault.value is not None else default
                net.set_fault_rate(kind, pattern, value)
                self._record(index, fault, sched,
                             victim=f"net:{net.name}[{pattern}]",
                             detail={"kind": kind, "value": value})
            fired = True
        return fired

    def _partition_groups(self, fault: Fault, net) -> Optional[List[List[str]]]:
        """Resolve a net_partition fault to concrete node-name groups."""
        value = fault.value
        if (isinstance(value, (list, tuple)) and value
                and isinstance(value[0], (list, tuple))):
            return [list(group) for group in value]
        names = sorted(net.nodes)
        if len(names) < 2:
            return None
        if fault.target is not None:
            isolated = [n for n in names if fnmatchcase(n, fault.target)]
        else:
            isolated = [self.rng.choice(names)]
        rest = [n for n in names if n not in isolated]
        if not isolated or not rest:
            return None
        return [isolated, rest]

    # ------------------------------------------------------------------

    def _record(self, index: int, fault: Fault, sched: "Scheduler",
                victim: str, detail: Optional[Dict[str, Any]] = None) -> None:
        record = FaultRecord(
            step=sched.steps,
            time=sched.clock.now,
            action=fault.action,
            plan=self.plan.name,
            fault_index=index,
            victim=victim,
            detail=detail or {},
        )
        self.log.append(record)
        sched.emit(EventKind.INJECT, gid=0,
                   info={"action": fault.action, "victim": victim,
                         "plan": self.plan.name, "fault": index})

    @property
    def fired(self) -> int:
        return len(self.log)

    def __repr__(self) -> str:
        return (f"<FaultInjector plan={self.plan.name!r} seed={self.seed} "
                f"fired={len(self.log)}>")
